"""WRED queue model for the misconfigured-queue testbed scenario.

Section 6.4: "A WRED queue drops packets with probability p when the
queue length is above a configurable threshold w.  We misconfigure WRED
queues on switches, setting p = 1% and w = 0 (so, the link works
normally if the queue is empty)."

The hardware testbed observes this as a load-dependent loss rate: a
packet is dropped with probability ``p`` only when it arrives to a
non-empty queue.  We reproduce that two ways:

* :func:`effective_drop_rate` - the analytic substitute used by the
  flow-level simulator: for an M/M/1-like queue at utilization ``rho``,
  the probability of arriving to a busy queue is ``rho``, so the
  effective loss rate is ``p * rho`` (plus the exact occupancy law for
  ``w > 0``).
* :class:`WredQueue` - a discrete-time queue simulation used by tests to
  validate the analytic substitute against an actual queue sample path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class WredConfig:
    """WRED parameters: drop probability ``p`` above queue threshold ``w``."""

    drop_probability: float = 0.01
    queue_threshold: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise SimulationError("drop_probability must be a probability")
        if self.queue_threshold < 0:
            raise SimulationError("queue_threshold must be >= 0")


def effective_drop_rate(config: WredConfig, utilization: float) -> float:
    """Analytic effective loss rate of a misconfigured WRED queue.

    For an M/M/1 queue at utilization ``rho``, the stationary probability
    that an arriving packet sees more than ``w`` packets in the system is
    ``rho^(w+1)`` (PASTA).  The WRED rule then drops it with probability
    ``p``, giving an effective rate ``p * rho^(w+1)``.  With the paper's
    misconfiguration (w=0) this is simply ``p * rho``.
    """
    if not 0.0 <= utilization < 1.0:
        raise SimulationError("utilization must be in [0, 1)")
    return config.drop_probability * utilization ** (config.queue_threshold + 1)


class WredQueue:
    """Discrete-time Geo/Geo/1 queue with a WRED drop rule.

    Each time slot: with probability ``arrival_rate`` a packet arrives;
    if the queue (including the packet in service) is longer than the
    WRED threshold, the arrival is dropped with probability ``p``,
    otherwise enqueued.  The head packet then departs with probability
    ``service_prob``.  Utilization is ``arrival_rate / service_prob``.

    With small slot probabilities (the default) the chain approximates
    a continuous-time M/M/1 queue, where the probability an arrival
    finds the server busy is the utilization (PASTA) - which is what
    the analytic :func:`effective_drop_rate` substitute assumes.
    """

    def __init__(
        self,
        config: WredConfig,
        arrival_rate: float,
        service_prob: float = 0.05,
    ) -> None:
        if not 0.0 < service_prob <= 1.0:
            raise SimulationError("service_prob must be in (0, 1]")
        if not 0.0 <= arrival_rate < service_prob:
            raise SimulationError(
                "arrival_rate must be in [0, service_prob) for stability"
            )
        self._config = config
        self._arrival_rate = arrival_rate
        self._service_prob = service_prob
        self.queue_length = 0
        self.arrived = 0
        self.dropped = 0

    @property
    def utilization(self) -> float:
        return self._arrival_rate / self._service_prob

    def step(self, rng: np.random.Generator) -> None:
        """Advance the queue by one time slot."""
        if rng.random() < self._arrival_rate:
            self.arrived += 1
            if (
                self.queue_length > self._config.queue_threshold
                and rng.random() < self._config.drop_probability
            ):
                self.dropped += 1
            else:
                self.queue_length += 1
        if self.queue_length > 0 and rng.random() < self._service_prob:
            self.queue_length -= 1

    def run(self, n_slots: int, rng: np.random.Generator) -> float:
        """Run ``n_slots`` slots and return the measured drop rate."""
        for _ in range(n_slots):
            self.step(rng)
        if self.arrived == 0:
            return 0.0
        return self.dropped / self.arrived
