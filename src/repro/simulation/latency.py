"""Flow RTT model for the link-flap scenario (sections 6.4 and 7.5).

"We pull out a cable manually and quickly put it back in to emulate link
flaps.  In our setup, link flaps caused the latency of the flows
transiting the link to spike, but did not produce any significant
increase in retransmissions (i.e., the link was buffering packets)."

Inference then uses the paper's "per-flow" analysis: a flow is bad if
its RTT exceeds a threshold (10 ms in section 7.5).  The model below
produces RTT samples with a lognormal baseline, occasional congestion
spikes on healthy paths (false-positive pressure), and near-certain
spikes for flows crossing a flapping link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence

import numpy as np

from ..errors import SimulationError
from ..topology.base import Topology

#: Section 7.5 classification threshold.
RTT_BAD_THRESHOLD_MS = 10.0


@dataclass(frozen=True)
class LatencyModel:
    """RTT generator parameters.

    ``base_rtt_ms``/``base_sigma`` shape the healthy lognormal RTT;
    ``congestion_spike_prob`` is the chance any healthy flow exceeds the
    bad threshold anyway (queueing noise); ``flap_spike_prob`` is the
    chance a flow crossing a flapping link spikes; spike RTTs are drawn
    uniformly in ``[spike_low_ms, spike_high_ms]``.
    """

    base_rtt_ms: float = 0.2
    base_sigma: float = 0.35
    congestion_spike_prob: float = 0.001
    flap_spike_prob: float = 0.9
    spike_low_ms: float = 15.0
    spike_high_ms: float = 120.0

    def __post_init__(self) -> None:
        if self.base_rtt_ms <= 0 or self.base_sigma <= 0:
            raise SimulationError("base RTT parameters must be positive")
        for name in ("congestion_spike_prob", "flap_spike_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} must be a probability")
        if not 0 < self.spike_low_ms <= self.spike_high_ms:
            raise SimulationError("spike RTT range is inverted")

    def sample_rtts(
        self,
        topology: Topology,
        paths: Sequence[Sequence[int]],
        flapped_links: FrozenSet[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample one RTT (ms) per flow given each flow's actual path."""
        n = len(paths)
        crosses = np.zeros(n, dtype=bool)
        if flapped_links:
            for i, nodes in enumerate(paths):
                for u, v in zip(nodes, nodes[1:]):
                    if topology.link_id(u, v) in flapped_links:
                        crosses[i] = True
                        break
        return self.sample_rtts_masked(crosses, rng)

    def sample_rtts_masked(
        self, crosses: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample RTTs given a precomputed flap-crossing mask.

        The columnar simulator resolves crossings per interned path id
        (one lookup per distinct path, not per flow) and feeds the mask
        here; the RNG stream is identical to :meth:`sample_rtts`.
        """
        n = len(crosses)
        mu = np.log(self.base_rtt_ms)
        rtts = rng.lognormal(mean=mu, sigma=self.base_sigma, size=n)
        spike_prob = np.where(
            crosses, self.flap_spike_prob, self.congestion_spike_prob
        )
        spiking = rng.random(n) < spike_prob
        n_spikes = int(spiking.sum())
        if n_spikes:
            rtts[spiking] = rng.uniform(
                self.spike_low_ms, self.spike_high_ms, size=n_spikes
            )
        return rtts


def rtt_is_bad(rtt_ms: float, threshold_ms: float = RTT_BAD_THRESHOLD_MS) -> bool:
    """Per-flow analysis classification (section 3.2): bad iff RTT > threshold."""
    return rtt_ms > threshold_ms
