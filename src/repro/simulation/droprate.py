"""Per-link drop-rate assignment.

Section 6.3: "Like [54], we set drop rates on all non-failed links
between 0 - 0.01% chosen independently and uniformly at random to model
occasional drops on good links."  Section 7.1: failed links get a drop
rate "chosen uniformly at random between 0.1% and 1%".
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from ..errors import SimulationError
from ..topology.base import Topology

#: Paper defaults (fractions, not percentages).
GOOD_LINK_MAX_RATE = 1e-4
FAILED_LINK_MIN_RATE = 1e-3
FAILED_LINK_MAX_RATE = 1e-2


class DropRatePlan:
    """Ground-truth per-link packet drop probabilities."""

    def __init__(self, topology: Topology, rates: np.ndarray) -> None:
        rates = np.asarray(rates, dtype=np.float64)
        if rates.shape != (topology.n_links,):
            raise SimulationError(
                f"expected {topology.n_links} rates, got shape {rates.shape}"
            )
        if np.any(rates < 0.0) or np.any(rates > 1.0):
            raise SimulationError("drop rates must be probabilities")
        self._topo = topology
        self._rates = rates
        # Per-plan memo of path drop probabilities for the scalar API.
        # A plan is immutable (``with_rates`` returns a fresh plan), so
        # the cache is valid for the plan's lifetime - i.e. per
        # injection.  The columnar simulator computes all path
        # probabilities in one vectorized pass instead
        # (:func:`repro.simulation.flowsim._all_path_drop_probs`, which
        # is asserted bit-identical to this scalar fold); the memo
        # serves scalar callers, which may price the same path many
        # times per trace.
        self._path_prob_cache: Dict[Tuple[int, ...], float] = {}

    @property
    def rates(self) -> np.ndarray:
        """Read-only view of per-link drop probabilities."""
        view = self._rates.view()
        view.flags.writeable = False
        return view

    def rate(self, link: int) -> float:
        return float(self._rates[link])

    def with_rates(self, overrides: Dict[int, float]) -> "DropRatePlan":
        """A copy with some links' rates replaced."""
        rates = self._rates.copy()
        for link, rate in overrides.items():
            if not 0 <= link < len(rates):
                raise SimulationError(f"no link with id {link}")
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"rate for link {link} not a probability")
            rates[link] = rate
        return DropRatePlan(self._topo, rates)

    def path_drop_probability(self, nodes: Iterable[int]) -> float:
        """Drop probability of a node-sequence path: 1 - prod(1 - p_l).

        Repeated link traversals (probe bounce paths) multiply twice, as
        a real bounced packet crosses the link twice.  Memoized per
        path for the plan's lifetime.
        """
        key = tuple(nodes)
        cached = self._path_prob_cache.get(key)
        if cached is not None:
            return cached
        survive = 1.0
        for u, v in zip(key, key[1:]):
            survive *= 1.0 - self._rates[self._topo.link_id(u, v)]
        prob = 1.0 - survive
        self._path_prob_cache[key] = prob
        return prob


def good_link_rates(
    topology: Topology,
    rng: np.random.Generator,
    max_rate: float = GOOD_LINK_MAX_RATE,
) -> DropRatePlan:
    """Baseline plan: every link gets a benign rate in [0, max_rate]."""
    if not 0.0 <= max_rate <= 1.0:
        raise SimulationError("max_rate must be a probability")
    rates = rng.uniform(0.0, max_rate, size=topology.n_links)
    return DropRatePlan(topology, rates)


def fail_links(
    plan: DropRatePlan,
    links: Iterable[int],
    rng: np.random.Generator,
    min_rate: float = FAILED_LINK_MIN_RATE,
    max_rate: float = FAILED_LINK_MAX_RATE,
) -> DropRatePlan:
    """Mark links as failed with drop rates in [min_rate, max_rate]."""
    if not 0.0 <= min_rate <= max_rate <= 1.0:
        raise SimulationError("need 0 <= min_rate <= max_rate <= 1")
    overrides = {
        link: float(rng.uniform(min_rate, max_rate)) for link in links
    }
    return plan.with_rates(overrides)
