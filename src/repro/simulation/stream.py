"""Chunked scenario replay: a long trace as a stream of timestamped
:class:`~repro.types.FlowBatch` chunks.

The batch pipeline builds one monitoring interval and localizes once;
the stream driver emits the same columnar flows as a sequence of
chunks, the unit the sliding-window monitor folds in.  The columnar
RNG-stream discipline continues: one ``default_rng(seed)`` drives the
injection schedule, the traffic matrix, and every chunk's flow
generation and simulation in a fixed order, so a stream is fully
reproducible from ``(topology, scenario, seed, shape)``.

Mid-stream changes come from two places:

* the scenario's :meth:`~repro.simulation.failures.FailureScenario
  .inject_schedule` (e.g. the gray-drift scenario's per-chunk drop-rate
  plans), and
* the driver-level ``onset_chunk``/``clear_chunk`` window, which
  replaces the injection with its *healthy twin* (failed links' rates
  zeroed, ground truth emptied, same analysis mode) outside the
  incident - so detection latency and hypothesis churn are measurable
  against a known onset.

Arrival times are a deterministic per-chunk ramp (no extra RNG draws):
chunk ``i`` spans ``[i * chunk_seconds, (i+1) * chunk_seconds)`` with
flows spread uniformly across it in row order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from ..errors import SimulationError
from ..routing.ecmp import EcmpRouting
from ..topology.base import Topology
from ..traffic.flows import SpecBatch, generate_passive_flow_batch
from ..traffic.probes import a1_probe_batch
from ..types import FlowBatch, GroundTruth
from .failures import FailureScenario, Injection


@dataclass(frozen=True)
class StreamChunk:
    """One cycle's worth of simulated flows.

    ``batch`` carries a ``t_start`` column; ``injection`` is the fault
    state that was live while the chunk's flows ran (the per-cycle
    ground truth incident reports compare against).
    """

    index: int
    t_start: float
    t_end: float
    batch: FlowBatch
    injection: Injection


def healthy_twin(injection: Injection) -> Injection:
    """The no-incident version of an injection.

    Failed/flapped links' drop rates go to zero and the ground truth
    empties, but the latency model and analysis mode stay, so telemetry
    is homogeneous across a window that straddles the incident onset.
    """
    affected = set(injection.ground_truth.drop_rates) | set(
        injection.flapped_links
    )
    plan = injection.plan.with_rates({link: 0.0 for link in affected})
    return Injection(
        ground_truth=GroundTruth(),
        plan=plan,
        flapped_links=frozenset(),
        latency_model=injection.latency_model,
        analysis=injection.analysis,
    )


def replay_stream(
    topology: Topology,
    routing: EcmpRouting,
    scenario: FailureScenario,
    seed: int,
    n_chunks: int,
    flows_per_chunk: int = 500,
    probes_per_chunk: int = 100,
    chunk_seconds: float = 1.0,
    traffic: str = "uniform",
    onset_chunk: int = 0,
    clear_chunk: Optional[int] = None,
    packets_per_probe: int = 40,
    mean_flow_bytes: float = 200_000.0,
) -> Iterator[StreamChunk]:
    """Generate a scenario replay as a lazy stream of chunks.

    The incident is live for chunks ``[onset_chunk, clear_chunk)``
    (``clear_chunk=None`` keeps it live to the end); outside that
    window each chunk simulates under the injection's healthy twin.
    """
    from ..eval.scenarios import make_matrix
    from .flowsim import FlowLevelSimulator

    if n_chunks < 1:
        raise SimulationError("a stream needs at least one chunk")
    if not 0 <= onset_chunk <= n_chunks:
        raise SimulationError("onset_chunk must be within the stream")
    if clear_chunk is not None and clear_chunk < onset_chunk:
        raise SimulationError("clear_chunk cannot precede onset_chunk")
    if chunk_seconds <= 0:
        raise SimulationError("chunk_seconds must be positive")

    rng = np.random.default_rng(seed)
    schedule: List[Injection] = scenario.inject_schedule(
        topology, rng, n_chunks
    )
    space = routing.path_space()
    matrix = make_matrix(topology, traffic, rng)
    simulator = FlowLevelSimulator(topology)

    for i in range(n_chunks):
        injection = schedule[i]
        live = i >= onset_chunk and (clear_chunk is None or i < clear_chunk)
        if not live:
            injection = healthy_twin(injection)
        batches: List[SpecBatch] = []
        if flows_per_chunk > 0:
            batches.append(
                generate_passive_flow_batch(
                    routing, matrix, flows_per_chunk, rng, space,
                    mean_bytes=mean_flow_bytes,
                )
            )
        if probes_per_chunk > 0:
            batches.append(
                a1_probe_batch(
                    topology, routing, probes_per_chunk, rng, space,
                    packets_per_probe=packets_per_probe,
                )
            )
        specs = (
            SpecBatch.concat(batches) if batches else SpecBatch.empty(space)
        )
        batch = simulator.simulate_batch(specs, injection, rng)
        t0 = i * chunk_seconds
        n = len(batch)
        t_start = t0 + (
            np.arange(n, dtype=np.float64) / max(1, n)
        ) * chunk_seconds
        yield StreamChunk(
            index=i,
            t_start=t0,
            t_end=t0 + chunk_seconds,
            batch=batch.with_t_start(t_start),
            injection=injection,
        )
