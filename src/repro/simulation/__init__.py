"""Simulation substrate: drop-rate plans, failures, queues, latency, simulator."""

from .droprate import (
    FAILED_LINK_MAX_RATE,
    FAILED_LINK_MIN_RATE,
    GOOD_LINK_MAX_RATE,
    DropRatePlan,
    fail_links,
    good_link_rates,
)
from .failures import (
    PER_FLOW,
    PER_PACKET,
    FailureScenario,
    GrayDrift,
    Injection,
    LinkFlap,
    NoFailure,
    QueueMisconfig,
    SilentDeviceFailure,
    SilentLinkDrops,
)
from .flowsim import FlowLevelSimulator, empirical_link_loss
from .latency import RTT_BAD_THRESHOLD_MS, LatencyModel, rtt_is_bad
from .queueing import WredConfig, WredQueue, effective_drop_rate
from .stream import StreamChunk, healthy_twin, replay_stream

__all__ = [
    "DropRatePlan",
    "good_link_rates",
    "fail_links",
    "GOOD_LINK_MAX_RATE",
    "FAILED_LINK_MIN_RATE",
    "FAILED_LINK_MAX_RATE",
    "FailureScenario",
    "GrayDrift",
    "Injection",
    "SilentLinkDrops",
    "SilentDeviceFailure",
    "QueueMisconfig",
    "LinkFlap",
    "NoFailure",
    "PER_PACKET",
    "PER_FLOW",
    "FlowLevelSimulator",
    "empirical_link_loss",
    "LatencyModel",
    "rtt_is_bad",
    "RTT_BAD_THRESHOLD_MS",
    "WredConfig",
    "WredQueue",
    "effective_drop_rate",
    "StreamChunk",
    "healthy_twin",
    "replay_stream",
]
