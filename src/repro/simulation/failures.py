"""Failure scenario injection (section 6.4).

Each scenario produces an :class:`Injection`: ground truth, the per-link
drop-rate plan the simulator should apply, any flapping links, and the
latency model / analysis mode the telemetry layer should use.

Scenarios
---------
* :class:`SilentLinkDrops` - "a link drops a small fraction of packets
  without updating switch counters."
* :class:`SilentDeviceFailure` - "an error in a device component (e.g.,
  memory, line card) causes silent packet drops ... it affects many or
  all links on the device."  Section 7.2 fails f% in [25%, 100%] of a
  device's links.
* :class:`QueueMisconfig` - the testbed's misconfigured WRED queue
  (p=1%, w=0); modeled as a utilization-dependent effective drop rate
  (see :mod:`repro.simulation.queueing`).
* :class:`LinkFlap` - the testbed's pulled cable: RTT spikes without
  retransmissions; diagnosed with the per-flow analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Type

import numpy as np

from ..errors import SimulationError
from ..topology.base import Topology
from ..types import GroundTruth
from .droprate import (
    FAILED_LINK_MAX_RATE,
    FAILED_LINK_MIN_RATE,
    DropRatePlan,
    fail_links,
    good_link_rates,
)
from .latency import LatencyModel
from .queueing import WredConfig, effective_drop_rate

#: Analysis modes (paper section 3.2): per-packet uses retransmission
#: counts; per-flow uses a single RTT-threshold bit per flow.
PER_PACKET = "per_packet"
PER_FLOW = "per_flow"


@dataclass(frozen=True)
class Injection:
    """Everything the simulator and telemetry need about injected faults."""

    ground_truth: GroundTruth
    plan: DropRatePlan
    flapped_links: FrozenSet[int] = frozenset()
    latency_model: Optional[LatencyModel] = None
    analysis: str = PER_PACKET


class FailureScenario:
    """Base class: a recipe that injects faults into a topology."""

    def inject(self, topology: Topology, rng: np.random.Generator) -> Injection:
        raise NotImplementedError

    def inject_schedule(
        self, topology: Topology, rng: np.random.Generator, n_chunks: int
    ) -> List[Injection]:
        """Per-chunk injections for a streamed replay of this scenario.

        The default schedule holds one injection steady for the whole
        stream - the batch scenarios are time-invariant.  Time-varying
        scenarios (e.g. :class:`GrayDrift`) override this to change the
        plan mid-stream.  Exactly the RNG draws of one :meth:`inject`
        call are consumed, keeping the stream's RNG cursor aligned with
        the batch pipeline's.
        """
        if n_chunks < 1:
            raise SimulationError("a schedule needs at least one chunk")
        return [self.inject(topology, rng)] * n_chunks


def _pick_fabric_links(
    topology: Topology, n: int, rng: np.random.Generator
) -> Tuple[int, ...]:
    candidates = topology.switch_switch_links()
    if n > len(candidates):
        raise SimulationError(
            f"cannot fail {n} links; topology has {len(candidates)} fabric links"
        )
    chosen = rng.choice(len(candidates), size=n, replace=False)
    return tuple(sorted(candidates[i] for i in chosen))


@dataclass(frozen=True)
class SilentLinkDrops(FailureScenario):
    """Fail ``n_failures`` fabric links with silent drops."""

    n_failures: int = 1
    min_rate: float = FAILED_LINK_MIN_RATE
    max_rate: float = FAILED_LINK_MAX_RATE

    def __post_init__(self) -> None:
        if self.n_failures < 0:
            raise SimulationError("n_failures must be non-negative")

    def inject(self, topology: Topology, rng: np.random.Generator) -> Injection:
        plan = good_link_rates(topology, rng)
        failed = _pick_fabric_links(topology, self.n_failures, rng)
        plan = fail_links(plan, failed, rng, self.min_rate, self.max_rate)
        truth = GroundTruth(
            failed_links=frozenset(failed),
            drop_rates={link: plan.rate(link) for link in failed},
        )
        return Injection(ground_truth=truth, plan=plan)


@dataclass(frozen=True)
class SilentDeviceFailure(FailureScenario):
    """Fail ``n_devices`` switches by failing a fraction of their links.

    "We simulate a device failure by failing f% of a faulty device's
    links ... varying f across traces from 25% to 100%." (section 7.2)
    """

    n_devices: int = 1
    min_link_fraction: float = 0.25
    max_link_fraction: float = 1.0
    min_rate: float = FAILED_LINK_MIN_RATE
    max_rate: float = FAILED_LINK_MAX_RATE

    def __post_init__(self) -> None:
        if self.n_devices < 0:
            raise SimulationError("n_devices must be non-negative")
        if not 0.0 < self.min_link_fraction <= self.max_link_fraction <= 1.0:
            raise SimulationError("link fraction range must be in (0, 1]")

    def inject(self, topology: Topology, rng: np.random.Generator) -> Injection:
        switches = list(topology.switches)
        if self.n_devices > len(switches):
            raise SimulationError("more failed devices than switches")
        plan = good_link_rates(topology, rng)
        picked = rng.choice(len(switches), size=self.n_devices, replace=False)
        failed_devices = []
        affected_links = []
        for idx in picked:
            device = switches[idx]
            links = list(topology.device_links(device))
            fraction = rng.uniform(self.min_link_fraction, self.max_link_fraction)
            n_fail = max(1, int(round(fraction * len(links))))
            chosen = rng.choice(len(links), size=min(n_fail, len(links)), replace=False)
            failed_devices.append(topology.device_component(device))
            affected_links.extend(links[i] for i in chosen)
        plan = fail_links(plan, affected_links, rng, self.min_rate, self.max_rate)
        truth = GroundTruth(
            failed_devices=frozenset(failed_devices),
            drop_rates={link: plan.rate(link) for link in affected_links},
        )
        return Injection(ground_truth=truth, plan=plan)


@dataclass(frozen=True)
class QueueMisconfig(FailureScenario):
    """Misconfigured WRED queue on ``n_links`` fabric links.

    The effective drop rate seen by flows is utilization-dependent:
    ``p * rho^(w+1)`` (see :func:`effective_drop_rate`).  ``utilization``
    approximates the testbed's offered load on the affected port.
    """

    n_links: int = 1
    wred: WredConfig = field(default_factory=WredConfig)
    utilization: float = 0.6

    def inject(self, topology: Topology, rng: np.random.Generator) -> Injection:
        plan = good_link_rates(topology, rng)
        failed = _pick_fabric_links(topology, self.n_links, rng)
        rate = effective_drop_rate(self.wred, self.utilization)
        plan = plan.with_rates({link: rate for link in failed})
        truth = GroundTruth(
            failed_links=frozenset(failed),
            drop_rates={link: rate for link in failed},
        )
        return Injection(ground_truth=truth, plan=plan)


@dataclass(frozen=True)
class LinkFlap(FailureScenario):
    """Pulled-cable link flap: latency spikes, no extra retransmissions."""

    n_links: int = 1
    latency_model: LatencyModel = field(default_factory=LatencyModel)

    def inject(self, topology: Topology, rng: np.random.Generator) -> Injection:
        plan = good_link_rates(topology, rng)
        flapped = _pick_fabric_links(topology, self.n_links, rng)
        truth = GroundTruth(failed_links=frozenset(flapped))
        return Injection(
            ground_truth=truth,
            plan=plan,
            flapped_links=frozenset(flapped),
            latency_model=self.latency_model,
            analysis=PER_FLOW,
        )


@dataclass(frozen=True)
class GrayDrift(FailureScenario):
    """Gray failure: link drop rates drift upward mid-stream.

    ``n_links`` fabric links start at a benign ``start_rate`` and drift
    linearly to ``end_rate`` over the stream.  A link joins the ground
    truth only once its current rate reaches the paper's failed-link
    floor (``FAILED_LINK_MIN_RATE``), so early chunks look healthy and
    detection latency is meaningful.  The batch :meth:`inject` returns
    the fully-drifted endpoint (the scenario a post-hoc trace would
    capture).
    """

    n_links: int = 1
    start_rate: float = 0.0
    end_rate: float = FAILED_LINK_MAX_RATE

    def __post_init__(self) -> None:
        if self.n_links < 0:
            raise SimulationError("n_links must be non-negative")
        if not 0.0 <= self.start_rate <= self.end_rate <= 1.0:
            raise SimulationError("need 0 <= start_rate <= end_rate <= 1")

    def _drifted(
        self, base: DropRatePlan, drifting: Tuple[int, ...], frac: float
    ) -> Injection:
        rate = self.start_rate + frac * (self.end_rate - self.start_rate)
        plan = base.with_rates({link: rate for link in drifting})
        failed = tuple(l for l in drifting if rate >= FAILED_LINK_MIN_RATE)
        truth = GroundTruth(
            failed_links=frozenset(failed),
            drop_rates={link: rate for link in failed},
        )
        return Injection(ground_truth=truth, plan=plan)

    def inject(self, topology: Topology, rng: np.random.Generator) -> Injection:
        plan = good_link_rates(topology, rng)
        drifting = _pick_fabric_links(topology, self.n_links, rng)
        return self._drifted(plan, drifting, 1.0)

    def inject_schedule(
        self, topology: Topology, rng: np.random.Generator, n_chunks: int
    ) -> List[Injection]:
        if n_chunks < 1:
            raise SimulationError("a schedule needs at least one chunk")
        plan = good_link_rates(topology, rng)
        drifting = _pick_fabric_links(topology, self.n_links, rng)
        denom = max(1, n_chunks - 1)
        return [
            self._drifted(plan, drifting, i / denom) for i in range(n_chunks)
        ]


@dataclass(frozen=True)
class NoFailure(FailureScenario):
    """Healthy network (used for false-positive measurement)."""

    def inject(self, topology: Topology, rng: np.random.Generator) -> Injection:
        plan = good_link_rates(topology, rng)
        return Injection(ground_truth=GroundTruth(), plan=plan)


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------

#: Registered failure scenarios, keyed by the names experiment specs and
#: the CLI (``repro-flock list --scenarios``) use.
_REGISTRY: Dict[str, Type[FailureScenario]] = {}


def register_scenario(name: str, cls: Type[FailureScenario]) -> None:
    """Register a scenario class under ``name``; replaces any entry."""
    _REGISTRY[name] = cls


def get_scenario(name: str) -> Type[FailureScenario]:
    """Look up a registered scenario class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(scenario_names())}"
        ) from None


def make_scenario(name: str, **params) -> FailureScenario:
    """Construct a registered scenario with constructor parameters."""
    cls = get_scenario(name)
    try:
        return cls(**params)
    except TypeError as exc:
        raise SimulationError(
            f"cannot construct scenario {name!r} with parameters {params}: {exc}"
        ) from None


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def scenario_description(name: str) -> str:
    """First docstring line of a registered scenario class."""
    doc = get_scenario(name).__doc__ or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


register_scenario("silent-link-drops", SilentLinkDrops)
register_scenario("silent-device-failure", SilentDeviceFailure)
register_scenario("queue-misconfig", QueueMisconfig)
register_scenario("link-flap", LinkFlap)
register_scenario("no-failure", NoFailure)
register_scenario("gray-drift", GrayDrift)
