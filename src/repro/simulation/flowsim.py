"""Flow-level network simulator.

This is the paper's scaling simulator, built as a first-class substrate:
"NS3 was too slow for large scale simulations.  Hence, we use a flow
level simulator (similar to [11]), that drops each packet as per preset
drop probabilities on links but does not model queuing or TCP."
(section 6.3)

For every flow spec the simulator picks one actual path uniformly from
the ECMP set (the routing model of Eq. 1), computes the path's drop
probability from the per-link plan, draws the number of bad packets from
a binomial, and (when a latency model is present) samples an RTT.  Flows
are grouped by shared path set so the binomial draws vectorize.

The native unit of work is the columnar :meth:`FlowLevelSimulator
.simulate_batch`: path sets arrive interned (a
:class:`~repro.traffic.flows.SpecBatch`), grouping is an ``np.unique``
over set ids, per-path drop probabilities are memoized per injection by
interned path id, and the result is a struct-of-arrays
:class:`~repro.types.FlowBatch` - no per-record Python anywhere on the
hot path.  :meth:`FlowLevelSimulator.simulate` is the object-API
adapter: it columnarizes the specs, runs the same batch kernel (the RNG
stream is identical), and materializes :class:`~repro.types.FlowRecord`
objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..routing.paths import PathSpace, first_seen_ids
from ..topology.base import Topology
from ..traffic.flows import FlowSpec, SpecBatch
from ..types import FlowBatch, FlowRecord
from .failures import Injection


class FlowLevelSimulator:
    """Simulates flow specs against an injected failure scenario."""

    def __init__(self, topology: Topology) -> None:
        self._topo = topology

    def simulate_batch(
        self,
        specs: SpecBatch,
        injection: Injection,
        rng: np.random.Generator,
        rng_mode: str = "grouped",
    ) -> FlowBatch:
        """Run a columnar spec batch and return a columnar trace.

        Flows group by interned path-set id (first-seen order, matching
        the object pipeline's grouping and hence its RNG stream); each
        group draws one vectorized ECMP choice and one vectorized
        binomial.  Path drop probabilities are computed once per
        distinct path id per injection.

        ``rng_mode`` versions the RNG stream contract:

        * ``"grouped"`` (default) draws per path-set group - the
          historical, bit-identical stream every pinned trace depends
          on.  At paper scale (~366K groups) the per-group generator
          call overhead dominates trace generation.
        * ``"vectorized"`` draws whole-batch: one uniform array prices
          every ECMP choice and one binomial call prices every flow.
          Group-rejection sampling (``Generator.integers``) and
          variable-size binomial batching make this stream impossible
          to reproduce group-wise, so it is a *different, versioned*
          stream - deterministic per seed, same marginal distributions,
          different draws.
        """
        if rng_mode not in ("grouped", "vectorized"):
            raise ValueError(
                f"rng_mode must be 'grouped' or 'vectorized', got {rng_mode!r}"
            )
        space = specs.space
        plan = injection.plan
        n = len(specs)
        packets = specs.packets
        bad = np.zeros(n, dtype=np.int64)
        chosen = np.zeros(n, dtype=np.int64)

        if n and rng_mode == "vectorized":
            bad, chosen = self._simulate_flows_vectorized(
                specs, plan, rng
            )
        elif n:
            sids, order, offsets = _first_seen_groups(specs.path_set)
            surv_by_pid = _path_survivals(space, plan)
            rates = plan.rates
            for g, sid in enumerate(sids.tolist()):
                idx = order[offsets[g]:offsets[g + 1]]
                if space.set_is_factored(sid):
                    # Factored pair set: drop probability composes from
                    # the endpoint-link survivals and the shared
                    # switch-segment survivals; only the *chosen* member
                    # paths are ever materialized.
                    fset = space.set_factored(sid)
                    middles = space.set_path_ids(fset.switch_sid)
                    drop_probs = 1.0 - (
                        (1.0 - rates[fset.src_link])
                        * surv_by_pid[middles]
                        * (1.0 - rates[fset.dst_link])
                    )
                    choice = rng.integers(0, len(middles), size=len(idx))
                    bad[idx] = rng.binomial(packets[idx], drop_probs[choice])
                    chosen[idx] = space.member_pids(sid, choice)
                else:
                    set_pids = space.set_path_ids(sid)
                    drop_probs = 1.0 - surv_by_pid[set_pids]
                    choice = rng.integers(0, len(set_pids), size=len(idx))
                    bad[idx] = rng.binomial(packets[idx], drop_probs[choice])
                    chosen[idx] = set_pids[choice]

        if injection.latency_model is not None:
            crosses = space.paths_cross_links(chosen, injection.flapped_links)
            rtts = injection.latency_model.sample_rtts_masked(crosses, rng)
        else:
            rtts = np.zeros(n)

        return FlowBatch(
            space=space,
            src=specs.src,
            dst=specs.dst,
            packets=packets,
            bad=bad,
            rtt_ms=rtts,
            is_probe=specs.is_probe,
            path_set=specs.path_set,
            chosen_path=chosen,
        )

    def _simulate_flows_vectorized(
        self,
        specs: SpecBatch,
        plan,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Whole-batch draws: (bad, chosen) for every flow at once.

        All randomness collapses into two generator calls - one uniform
        array for the ECMP choices and one vectorized binomial for the
        drops - so the per-group Python loop that remains only gathers
        group metadata and materializes the chosen member paths of
        factored sets (interning work the grouped mode pays too).
        """
        space = specs.space
        rates = plan.rates
        surv_by_pid = _path_survivals(space, plan)
        n = len(specs)
        sids, gids = first_seen_ids(specs.path_set)
        n_groups = len(sids)
        sid_list = sids.tolist()
        sizes = np.empty(n_groups, dtype=np.int64)
        factored = np.zeros(n_groups, dtype=bool)
        src_link = np.zeros(n_groups, dtype=np.int64)
        dst_link = np.zeros(n_groups, dtype=np.int64)
        switch_sid = np.zeros(n_groups, dtype=np.int64)
        for g, sid in enumerate(sid_list):
            sizes[g] = space.set_size(sid)
            if space.set_is_factored(sid):
                fset = space.set_factored(sid)
                factored[g] = True
                src_link[g] = fset.src_link
                dst_link[g] = fset.dst_link
                switch_sid[g] = fset.switch_sid

        # One uniform per flow prices its ECMP choice: floor(u * k) is
        # uniform over [0, k) (clipped against the u == 1.0 corner).
        k = sizes[gids]
        choice = np.minimum((rng.random(n) * k).astype(np.int64), k - 1)
        p = np.empty(n)
        chosen = np.empty(n, dtype=np.int64)
        fac_f = factored[gids]
        if np.any(fac_f):
            # Factored flows: the chosen *middle* segment prices the
            # drop; a CSR over the few unique switch sids gathers it.
            usw = np.unique(switch_sid[factored])
            sw_lists = [space.set_path_ids(int(s)) for s in usw]
            sw_off = np.zeros(len(usw) + 1, dtype=np.int64)
            np.cumsum([len(a) for a in sw_lists], out=sw_off[1:])
            sw_flat = np.concatenate(sw_lists)
            sw_rank = np.searchsorted(usw, switch_sid)
            fg = gids[fac_f]
            mid = sw_flat[sw_off[sw_rank[fg]] + choice[fac_f]]
            p[fac_f] = 1.0 - (
                (1.0 - rates[src_link[fg]])
                * surv_by_pid[mid]
                * (1.0 - rates[dst_link[fg]])
            )
        plain_f = ~fac_f
        if np.any(plain_f):
            plain_groups = np.nonzero(~factored)[0]
            pl_lists = [space.set_path_ids(sid_list[g]) for g in plain_groups]
            pl_off = np.zeros(len(pl_lists) + 1, dtype=np.int64)
            np.cumsum([len(a) for a in pl_lists], out=pl_off[1:])
            pl_flat = np.concatenate(pl_lists)
            pl_rank = np.cumsum(~factored) - 1
            pid_plain = pl_flat[
                pl_off[pl_rank[gids[plain_f]]] + choice[plain_f]
            ]
            p[plain_f] = 1.0 - surv_by_pid[pid_plain]
            chosen[plain_f] = pid_plain

        bad = rng.binomial(specs.packets, p)

        if np.any(fac_f):
            # Factored chosen paths still intern lazily per group, but
            # with every draw already made above.
            order = np.argsort(gids, kind="stable")
            counts = np.bincount(gids, minlength=n_groups)
            offsets = np.zeros(n_groups + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            for g in np.nonzero(factored)[0].tolist():
                idx = order[offsets[g]:offsets[g + 1]]
                chosen[idx] = space.member_pids(sid_list[g], choice[idx])
        return bad.astype(np.int64), chosen

    def simulate(
        self,
        specs: Sequence[FlowSpec],
        injection: Injection,
        rng: np.random.Generator,
        space: Optional[PathSpace] = None,
    ) -> List[FlowRecord]:
        """Run object specs and return one :class:`FlowRecord` per flow.

        Adapter over :meth:`simulate_batch`; results are bit-identical
        to the historical per-record implementation at fixed seeds.
        """
        if not specs:
            return []
        if space is None:
            from ..routing.ecmp import EcmpRouting

            space = PathSpace(self._topo, EcmpRouting(self._topo))
        batch = self.simulate_batch(
            SpecBatch.from_specs(specs, space), injection, rng
        )
        return batch.records()


def _path_survivals(space: PathSpace, plan) -> np.ndarray:
    """Survival probability of every interned path, one vectorized pass.

    ``np.multiply.reduceat`` folds each CSR segment left to right, so
    ``1 - survival`` is bit-identical to the scalar
    :meth:`~repro.simulation.droprate.DropRatePlan.path_drop_probability`
    loop over the same hop order.  Hop-less paths survive with
    probability exactly 1.
    """
    flat_links, link_off = space.link_csr()
    n_paths = len(link_off) - 1
    surv = np.ones(n_paths)
    if n_paths == 0 or len(flat_links) == 0:
        return surv
    seg = 1.0 - plan.rates[flat_links]
    # Fold only non-empty segments: their starts are strictly
    # increasing and in bounds, and skipped (hop-less) paths occupy
    # zero width between them, so each fold covers exactly one path's
    # hops.
    nonempty = np.diff(link_off) > 0
    if np.any(nonempty):
        surv[nonempty] = np.multiply.reduceat(seg, link_off[:-1][nonempty])
    return surv


def _all_path_drop_probs(space: PathSpace, plan) -> np.ndarray:
    """Drop probability of every interned path (1 - survival)."""
    surv = _path_survivals(space, plan)
    probs = 1.0 - surv
    return probs


def _first_seen_groups(
    values: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group equal values, numbering groups in first-appearance order.

    Returns ``(group_values, order, offsets)``: ``order`` is a
    permutation of row indices sorted by (group, original position), so
    ``order[offsets[g]:offsets[g + 1]]`` selects group ``g``'s rows in
    original order - the same iteration the object pipeline's
    insertion-ordered dict grouping produced.
    """
    group_values, group_ids = first_seen_ids(values)
    order = np.argsort(group_ids, kind="stable")
    counts = np.bincount(group_ids, minlength=len(group_values))
    offsets = np.zeros(len(group_values) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return group_values, order, offsets


def empirical_link_loss(
    topology: Topology, records: Sequence[FlowRecord]
) -> Dict[int, Tuple[int, int]]:
    """Aggregate (bad, total) packets per link from ground-truth paths.

    A simulator-fidelity diagnostic: with many flows, a link's empirical
    loss share converges toward its planned drop rate.  Bad packets of a
    flow are attributed fractionally is not possible without per-packet
    data, so this attributes a flow's packets to every link on its path
    (the standard tomography load matrix).
    """
    totals: Dict[int, Tuple[int, int]] = {}
    for record in records:
        for u, v in zip(record.path, record.path[1:]):
            link = topology.link_id(u, v)
            bad, total = totals.get(link, (0, 0))
            totals[link] = (bad + record.bad_packets, total + record.packets_sent)
    return totals
