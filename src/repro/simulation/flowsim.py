"""Flow-level network simulator.

This is the paper's scaling simulator, built as a first-class substrate:
"NS3 was too slow for large scale simulations.  Hence, we use a flow
level simulator (similar to [11]), that drops each packet as per preset
drop probabilities on links but does not model queuing or TCP."
(section 6.3)

For every flow spec the simulator picks one actual path uniformly from
the ECMP set (the routing model of Eq. 1), computes the path's drop
probability from the per-link plan, draws the number of bad packets from
a binomial, and (when a latency model is present) samples an RTT.  Flows
are grouped by shared path set so the binomial draws vectorize.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..topology.base import Topology
from ..traffic.flows import FlowSpec
from ..types import FlowRecord
from .failures import Injection


class FlowLevelSimulator:
    """Simulates flow specs against an injected failure scenario."""

    def __init__(self, topology: Topology) -> None:
        self._topo = topology

    def simulate(
        self,
        specs: Sequence[FlowSpec],
        injection: Injection,
        rng: np.random.Generator,
    ) -> List[FlowRecord]:
        """Run all specs and return one :class:`FlowRecord` per flow."""
        if not specs:
            return []
        plan = injection.plan

        # Group flows by their (shared, interned) path set so that path
        # drop probabilities are computed once per distinct set.
        groups: Dict[Tuple[Tuple[int, ...], ...], List[int]] = {}
        for i, spec in enumerate(specs):
            groups.setdefault(spec.paths, []).append(i)

        n = len(specs)
        packets = np.fromiter(
            (spec.packets for spec in specs), dtype=np.int64, count=n
        )
        bad = np.zeros(n, dtype=np.int64)
        chosen_paths: List[Optional[Tuple[int, ...]]] = [None] * n

        for paths, indices in groups.items():
            drop_probs = np.asarray(
                [plan.path_drop_probability(path) for path in paths]
            )
            idx = np.asarray(indices, dtype=np.int64)
            choice = rng.integers(0, len(paths), size=len(idx))
            probs = drop_probs[choice]
            bad[idx] = rng.binomial(packets[idx], probs)
            for local, flow_idx in enumerate(indices):
                chosen_paths[flow_idx] = paths[choice[local]]

        if injection.latency_model is not None:
            rtts = injection.latency_model.sample_rtts(
                self._topo, chosen_paths, injection.flapped_links, rng
            )
        else:
            rtts = np.zeros(n)

        records: List[FlowRecord] = []
        for i, spec in enumerate(specs):
            path = chosen_paths[i]
            if path is None:  # pragma: no cover - defensive
                raise SimulationError("flow was not assigned a path")
            records.append(
                FlowRecord(
                    src=spec.src,
                    dst=spec.dst,
                    packets_sent=int(packets[i]),
                    bad_packets=int(bad[i]),
                    path=path,
                    rtt_ms=float(rtts[i]),
                    is_probe=spec.is_probe,
                )
            )
        return records


def empirical_link_loss(
    topology: Topology, records: Sequence[FlowRecord]
) -> Dict[int, Tuple[int, int]]:
    """Aggregate (bad, total) packets per link from ground-truth paths.

    A simulator-fidelity diagnostic: with many flows, a link's empirical
    loss share converges toward its planned drop rate.  Bad packets of a
    flow are attributed fractionally is not possible without per-packet
    data, so this attributes a flow's packets to every link on its path
    (the standard tomography load matrix).
    """
    totals: Dict[int, Tuple[int, int]] = {}
    for record in records:
        for u, v in zip(record.path, record.path[1:]):
            link = topology.link_id(u, v)
            bad, total = totals.get(link, (0, 0))
            totals[link] = (bad + record.bad_packets, total + record.packets_sent)
    return totals
