"""Command-line experiment runner: ``repro-flock`` / ``python -m repro``.

Examples::

    repro-flock list
    repro-flock run fig2 --preset ci
    repro-flock run fig2 --preset ci --jobs 4
    repro-flock run fig4c --preset paper --seed 3
    repro-flock run all --preset ci --jobs 8 --executor process
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Dict, Optional

from .errors import ReproError
from .eval import experiments
from .eval.reporting import print_result
from .eval.runner import EXECUTORS, RunnerConfig

#: Experiment registry: name -> callable(preset, seed) -> ExperimentResult.
EXPERIMENTS: Dict[str, Callable] = {
    "fig2": experiments.fig2_tradeoff,
    "fig2c": experiments.fig2c_device_failures,
    "fig3": experiments.fig3_snr,
    "fig4a": experiments.fig4a_queue_misconfig,
    "fig4b": experiments.fig4b_link_flap,
    "fig4c": experiments.fig4c_runtime,
    "fig4d": experiments.fig4d_scheme_runtime,
    "fig5": experiments.fig5_irregular,
    "fig5c": experiments.fig5c_passive_hard,
    "table1": experiments.table1_robustness,
    "fig8a": experiments.fig8a_sensitivity,
    "fig8b": experiments.fig8b_priors,
    "scan-rate": experiments.scan_rate,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-flock",
        description="Flock (CoNEXT 2023) reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all", "fig6"])
    run.add_argument("--preset", choices=experiments.PRESETS, default="ci")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel workers for scheme evaluation (default: serial)",
    )
    run.add_argument(
        "--executor", choices=EXECUTORS, default=None,
        help="execution backend; defaults to 'process' when --jobs > 1",
    )

    dataset = sub.add_parser(
        "dataset", help="generate the six-scenario telemetry dataset"
    )
    dataset.add_argument("output_dir")
    dataset.add_argument("--seed", type=int, default=2023)
    dataset.add_argument("--flows", type=int, default=4000)
    dataset.add_argument("--probes", type=int, default=600)
    return parser


def _run_one(
    name: str, preset: str, seed, runner: Optional[RunnerConfig] = None
) -> None:
    if name == "fig6":
        print_result(experiments.fig6_worked_example())
        return
    func = EXPERIMENTS[name]
    kwargs = {"preset": preset}
    if seed is not None:
        kwargs["seed"] = seed
    # Timing-focused experiments (fig4c, scan-rate) take no runner; only
    # pass one where the driver supports parallel evaluation.
    if runner is not None and "runner" in inspect.signature(func).parameters:
        kwargs["runner"] = runner
    print_result(func(**kwargs))


def _runner_from_args(args) -> Optional[RunnerConfig]:
    if args.jobs is None and args.executor is None:
        return None
    return RunnerConfig.resolve(jobs=args.jobs, executor=args.executor)


def main(argv=None) -> int:
    try:
        return _main(argv)
    except ReproError as exc:
        print(f"repro-flock: error: {exc}", file=sys.stderr)
        return 2


def _main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "dataset":
        from .eval.dataset import generate_suite

        paths = generate_suite(
            args.output_dir, seed=args.seed,
            n_passive=args.flows, n_probes=args.probes,
        )
        for path in paths:
            print(path)
        return 0
    if args.command == "list":
        for name in sorted(EXPERIMENTS) + ["fig6"]:
            print(name)
        return 0
    runner = _runner_from_args(args)
    if args.experiment == "all":
        for name in sorted(EXPERIMENTS) + ["fig6"]:
            _run_one(name, args.preset, args.seed, runner)
        return 0
    _run_one(args.experiment, args.preset, args.seed, runner)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
