"""Command-line experiment runner: ``repro-flock`` / ``python -m repro``.

Examples::

    repro-flock list
    repro-flock run fig2 --preset ci
    repro-flock run fig2 --preset ci --jobs 4
    repro-flock run fig4c --preset paper --seed 3
    repro-flock run all --preset ci --jobs 8 --executor process

Distributed (sharded) evaluation splits an experiment's trace batches
into contiguous index ranges so each range can run as a separate OS
process or on a separate machine, returning only serialized results::

    repro-flock run fig2 --preset ci --shards 2 --shard-index 0 --out s0.json
    repro-flock run fig2 --preset ci --shards 2 --shard-index 1 --out s1.json
    repro-flock merge s0.json s1.json --out fig2.json

``merge`` reassembles the full :class:`ExperimentResult`; its metrics
are bit-identical to a serial ``run`` with the same preset and seed.
``--shards`` composes with ``--jobs``/``--executor`` (parallelism
*within* a shard).  ``table1`` cannot be sharded: its calibration step
chooses parameters from its own evaluation results, so each shard
would pick a different operating point from partial data.

Cost model: every worker (and the merge) re-runs the experiment driver,
so trace *generation* is repeated per process - only problem building
and inference are divided.  Sharding pays off when inference dominates,
which holds for the accuracy experiments at paper scale; it cannot help
drivers that evaluate one trace per grid call (``fig4d``), where a
worker may cover no traces at all (the CLI warns when that happens).
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, Optional

from .errors import ExperimentError, ReproError
from .eval import experiments
from .eval.reporting import print_result, save_result
from .eval.runner import EXECUTORS, RunnerConfig
from .eval.shard import ShardRecorder, ShardReplayer, ShardSpec, merge_payloads

#: Experiment registry: name -> callable(preset, seed) -> ExperimentResult.
EXPERIMENTS: Dict[str, Callable] = {
    "fig2": experiments.fig2_tradeoff,
    "fig2c": experiments.fig2c_device_failures,
    "fig3": experiments.fig3_snr,
    "fig4a": experiments.fig4a_queue_misconfig,
    "fig4b": experiments.fig4b_link_flap,
    "fig4c": experiments.fig4c_runtime,
    "fig4d": experiments.fig4d_scheme_runtime,
    "fig5": experiments.fig5_irregular,
    "fig5c": experiments.fig5c_passive_hard,
    "table1": experiments.table1_robustness,
    "fig8a": experiments.fig8a_sensitivity,
    "fig8b": experiments.fig8b_priors,
    "scan-rate": experiments.scan_rate,
}

#: Experiments whose grid-call sequence depends on their own evaluation
#: results; sharding them would let each shard choose different
#: parameters from partial data (see module docstring).
UNSHARDABLE = frozenset({"table1"})


def shardable_experiments() -> list:
    """Experiment names that support ``--shards`` / ``merge``."""
    return sorted(
        name
        for name, func in EXPERIMENTS.items()
        if name not in UNSHARDABLE
        and "runner" in inspect.signature(func).parameters
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-flock",
        description="Flock (PACMNET 2023) reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all", "fig6"])
    run.add_argument("--preset", choices=experiments.PRESETS, default="ci")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel workers for scheme evaluation (default: serial)",
    )
    run.add_argument(
        "--executor", choices=EXECUTORS, default=None,
        help="execution backend; defaults to 'process' when --jobs > 1",
    )
    run.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="act as one worker of an N-way sharded run "
             "(requires --shard-index and --out)",
    )
    run.add_argument(
        "--shard-index", type=int, default=None, metavar="I",
        help="which shard [0, N) this worker executes",
    )
    run.add_argument(
        "--out", default=None, metavar="PATH",
        help="where to write this shard's serialized results",
    )

    merge = sub.add_parser(
        "merge", help="merge shard outputs into the full experiment result"
    )
    merge.add_argument("shard_files", nargs="+", metavar="SHARD")
    merge.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the merged ExperimentResult as JSON",
    )

    dataset = sub.add_parser(
        "dataset", help="generate the six-scenario telemetry dataset"
    )
    dataset.add_argument("output_dir")
    dataset.add_argument("--seed", type=int, default=2023)
    dataset.add_argument("--flows", type=int, default=4000)
    dataset.add_argument("--probes", type=int, default=600)
    return parser


def _call_experiment(
    name: str, preset: str, seed, runner: Optional[RunnerConfig] = None
):
    func = EXPERIMENTS[name]
    kwargs = {"preset": preset}
    if seed is not None:
        kwargs["seed"] = seed
    # Timing-focused experiments (fig4c, scan-rate) take no runner; only
    # pass one where the driver supports parallel evaluation.
    if runner is not None and "runner" in inspect.signature(func).parameters:
        kwargs["runner"] = runner
    return func(**kwargs)


def _run_one(
    name: str, preset: str, seed, runner: Optional[RunnerConfig] = None
) -> None:
    if name == "fig6":
        print_result(experiments.fig6_worked_example())
        return
    print_result(_call_experiment(name, preset, seed, runner))


def _runner_from_args(args) -> Optional[RunnerConfig]:
    if args.jobs is None and args.executor is None:
        return None
    return RunnerConfig.resolve(jobs=args.jobs, executor=args.executor)


def _run_shard(args) -> int:
    """Act as one shard worker: execute our trace ranges, write results."""
    if args.shard_index is None or args.out is None:
        raise ExperimentError("--shards requires --shard-index and --out")
    name = args.experiment
    if name not in shardable_experiments():
        raise ExperimentError(
            f"experiment {name!r} cannot be sharded; shardable experiments: "
            f"{', '.join(shardable_experiments())}"
        )
    spec = ShardSpec(args.shard_index, args.shards)
    recorder = ShardRecorder(spec)
    base = _runner_from_args(args) or RunnerConfig()
    # The returned (partial) result is discarded: only the recorded wire
    # units matter, and `merge` rebuilds the full result from them.
    _call_experiment(name, args.preset, args.seed, replace(base, shard=recorder))
    payload = recorder.payload(
        experiment=name, preset=args.preset, seed=args.seed
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as handle:
        json.dump(payload, handle)
    units = sum(len(call["units"]) for call in payload["calls"])
    print(
        f"shard {spec.index + 1}/{spec.count} of {name} ({args.preset}): "
        f"{units} trace unit(s) over {len(payload['calls'])} grid call(s) "
        f"-> {out}"
    )
    if units == 0:
        print(
            f"warning: this shard covered no traces (every grid call in "
            f"{name} has fewer than {spec.count} traces); it still paid "
            "full trace-generation cost - use fewer shards",
            file=sys.stderr,
        )
    return 0


def _merge(args) -> int:
    """Reassemble a full ExperimentResult from shard files."""
    payloads = []
    for path in args.shard_files:
        try:
            with Path(path).open() as handle:
                payloads.append(json.load(handle))
        except (OSError, ValueError) as exc:
            # ValueError covers both JSONDecodeError and the
            # UnicodeDecodeError a transfer-corrupted file raises.
            raise ExperimentError(f"cannot read shard file {path}: {exc}")
    calls, meta = merge_payloads(payloads)
    name = meta.get("experiment")
    if name not in shardable_experiments():
        raise ExperimentError(
            f"shard files name experiment {name!r}, which is unknown or "
            "not shardable"
        )
    replayer = ShardReplayer(calls)
    runner = RunnerConfig(shard=replayer)
    result = _call_experiment(name, meta.get("preset", "ci"), meta.get("seed"), runner)
    replayer.assert_exhausted()
    print_result(result)
    if args.out:
        print(f"\nwrote merged result to {save_result(result, args.out)}")
    return 0


def main(argv=None) -> int:
    try:
        return _main(argv)
    except ReproError as exc:
        print(f"repro-flock: error: {exc}", file=sys.stderr)
        return 2


def _main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "dataset":
        from .eval.dataset import generate_suite

        paths = generate_suite(
            args.output_dir, seed=args.seed,
            n_passive=args.flows, n_probes=args.probes,
        )
        for path in paths:
            print(path)
        return 0
    if args.command == "list":
        for name in sorted(EXPERIMENTS) + ["fig6"]:
            print(name)
        return 0
    if args.command == "merge":
        return _merge(args)
    if args.shards is not None:
        return _run_shard(args)
    if args.shard_index is not None or args.out is not None:
        raise ExperimentError("--shard-index/--out are only valid with --shards")
    runner = _runner_from_args(args)
    if args.experiment == "all":
        for name in sorted(EXPERIMENTS) + ["fig6"]:
            _run_one(name, args.preset, args.seed, runner)
        return 0
    _run_one(args.experiment, args.preset, args.seed, runner)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
