"""Command-line experiment runner: ``repro-flock`` / ``python -m repro``.

Examples::

    repro-flock list
    repro-flock list --schemes --scenarios
    repro-flock run fig2 --preset ci
    repro-flock run fig2 --preset ci --jobs 4
    repro-flock run fig2 --scheme flock --set n_traces=4
    repro-flock run fig4c --preset paper --seed 3
    repro-flock run all --preset ci --jobs 8 --executor process
    repro-flock stream gray-drift --preset ci --window 4 --cycle 12

Experiments, schemes, and failure scenarios all resolve through
registries (:mod:`repro.eval.spec`, :mod:`repro.eval.schemes`,
:mod:`repro.simulation.failures`); ``list`` enumerates them.  ``run``
accepts ``--scheme NAME`` to evaluate a single registry scheme on an
experiment's workload and repeatable ``--set key=val`` overrides that
are passed to the experiment's spec builder (unknown keys fail loudly).

Distributed (sharded) evaluation splits an experiment's trace batches
into contiguous index ranges so each range can run as a separate OS
process or on a separate machine, returning only serialized results::

    repro-flock run fig2 --preset ci --shards 2 --shard-index 0 --out s0.json
    repro-flock run fig2 --preset ci --shards 2 --shard-index 1 --out s1.json
    repro-flock merge s0.json s1.json --out fig2.json

``merge`` reassembles the full :class:`ExperimentResult`; its metrics
are bit-identical to a serial ``run`` with the same preset, seed, and
overrides.  ``--shards`` composes with ``--jobs``/``--executor``
(parallelism *within* a shard).  ``table1`` runs as two phases:
``table1-calibrate`` sweeps the parameter grid (itself shardable), and
``table1-eval`` - pointed at the calibrate result via
``--set calibration=PATH``, or recomputing it per worker otherwise -
evaluates the chosen operating points and shard-merges bit-identically.
The combined ``table1`` experiment refuses ``--shards`` because its
build-time calibration dominates and would be repeated per worker.

Queue-backed fleet evaluation replaces static index assignment with a
SQLite broker of leased work units - workers can start at any time, on
any machine sharing the broker file, and a crashed worker's units are
re-leased when their lease expires::

    repro-flock fleet submit fig2.db fig2 --preset ci --unit-traces 4
    repro-flock fleet work fig2.db        # x N processes / machines
    repro-flock fleet status fig2.db
    repro-flock fleet collect fig2.db --out fig2.json

``fleet collect`` folds the stored results through the same replay
path as ``merge``, so its metrics are also bit-identical to serial.

Cost model (shards and fleet alike): every worker (and the
merge/collect) re-runs the experiment's spec builder, and each worker
pays trace generation for every grid point it touches - only problem
building and inference are divided.  Distribution pays off when
inference dominates, which holds for the accuracy experiments at paper
scale; it cannot help experiments that evaluate one trace per grid
call (``fig4d``), where a shard worker may cover no traces at all (the
CLI warns when that happens).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

from .errors import ExperimentError, ReproError
from .eval import experiments
from .eval.reporting import print_result, save_result
from .eval.runner import EXECUTORS, RunnerConfig
from .eval.schemes import get_scheme, scheme_names
from .eval.shard import ShardRecorder, ShardReplayer, ShardSpec, merge_payloads
from .eval.spec import (
    default_experiment_names,
    experiment_names,
    get_experiment,
    run_experiment,
    shardable_experiment_names,
)
from .simulation.failures import scenario_description, scenario_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-flock",
        description="Flock (PACMNET 2023) reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lister = sub.add_parser(
        "list", help="list registered experiments, schemes, and scenarios"
    )
    lister.add_argument(
        "--experiments", action="store_true", help="list experiments"
    )
    lister.add_argument("--schemes", action="store_true", help="list schemes")
    lister.add_argument(
        "--scenarios", action="store_true", help="list failure scenarios"
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help="a registered experiment name (see 'list'), or 'all'",
    )
    run.add_argument("--preset", choices=experiments.PRESETS, default="ci")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument(
        "--scheme", default=None, metavar="NAME",
        help="evaluate only this registry scheme on the experiment's workload",
    )
    run.add_argument(
        "--set", action="append", dest="overrides", default=[],
        metavar="KEY=VAL",
        help="override a spec-builder knob (repeatable); unknown keys fail",
    )
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel workers for scheme evaluation (default: serial)",
    )
    run.add_argument(
        "--kernel-backend", default=None, metavar="NAME",
        help="localization kernel backend (numpy, collapsed, numba); "
             "default: $REPRO_KERNEL_BACKEND or numpy",
    )
    run.add_argument(
        "--executor", choices=EXECUTORS, default=None,
        help="execution backend; defaults to 'process' when --jobs > 1",
    )
    run.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="act as one worker of an N-way sharded run "
             "(requires --shard-index and --out)",
    )
    run.add_argument(
        "--shard-index", type=int, default=None, metavar="I",
        help="which shard [0, N) this worker executes",
    )
    run.add_argument(
        "--out", default=None, metavar="PATH",
        help="where to write this shard's serialized results",
    )

    merge = sub.add_parser(
        "merge", help="merge shard outputs into the full experiment result"
    )
    merge.add_argument("shard_files", nargs="+", metavar="SHARD")
    merge.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the merged ExperimentResult as JSON",
    )

    fleet = sub.add_parser(
        "fleet",
        help="queue-backed distributed evaluation (SQLite work-unit broker)",
    )
    fsub = fleet.add_subparsers(dest="fleet_command", required=True)

    fsubmit = fsub.add_parser(
        "submit", help="decompose an experiment into work units in a broker"
    )
    fsubmit.add_argument("broker", help="path for the new broker database")
    fsubmit.add_argument("experiment", help="a shardable experiment name")
    fsubmit.add_argument("--preset", choices=experiments.PRESETS, default="ci")
    fsubmit.add_argument("--seed", type=int, default=None)
    fsubmit.add_argument(
        "--scheme", default=None, metavar="NAME",
        help="evaluate only this registry scheme on the experiment's workload",
    )
    fsubmit.add_argument(
        "--set", action="append", dest="overrides", default=[],
        metavar="KEY=VAL",
        help="override a spec-builder knob (repeatable); unknown keys fail",
    )
    fsubmit.add_argument(
        "--unit-traces", type=int, default=1, metavar="T",
        help="traces per work unit (default: 1; larger units amortize "
             "per-unit overhead, smaller units retry more cheaply)",
    )
    fsubmit.add_argument(
        "--lease-seconds", type=float, default=60.0, metavar="S",
        help="how long a claimed unit stays leased before it is "
             "re-queued (default: 60)",
    )
    fsubmit.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="claims per unit before it is marked failed (default: 3)",
    )
    fsubmit.add_argument(
        "--name", default=None, metavar="NAME",
        help="experiment name inside the broker (default: the registry "
             "experiment name); one broker holds many named experiments",
    )
    fsubmit.add_argument(
        "--priority", type=int, default=0, metavar="P",
        help="scheduling priority; workers drain higher priorities first "
             "(default: 0)",
    )
    fsubmit.add_argument(
        "--if-exists", choices=("fail", "resume"), default="fail",
        help="what a re-run against an existing experiment name does: "
             "'fail' (default; never silently double-enqueue) or "
             "'resume' (finish an interrupted submission with the same "
             "plan; a different plan still fails)",
    )

    fwork = fsub.add_parser(
        "work", help="pull and execute work units until the broker drains"
    )
    fwork.add_argument("broker", help="path to an existing broker database")
    fwork.add_argument(
        "--experiment", default=None, metavar="NAME",
        help="drain only this experiment (default: all, by priority)",
    )
    fwork.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="stable worker identity (default: hostname-pid)",
    )
    fwork.add_argument(
        "--max-units", type=int, default=None, metavar="N",
        help="process at most N units, then exit (default: drain)",
    )
    fwork.add_argument(
        "--no-wait", action="store_true",
        help="exit when nothing is claimable instead of waiting out "
             "other workers' leases",
    )
    fwork.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel scheme evaluation within each unit",
    )
    fwork.add_argument(
        "--executor", choices=EXECUTORS, default=None,
        help="execution backend; defaults to 'process' when --jobs > 1",
    )
    fwork.add_argument(
        "--kernel-backend", default=None, metavar="NAME",
        help="localization kernel backend (numpy, collapsed, numba)",
    )
    fwork.add_argument(
        "--heartbeat-seconds", type=float, default=None, metavar="S",
        help="mid-unit lease renewal interval (default: a third of the "
             "broker's lease; <= 0 disables heartbeats)",
    )

    fstatus = fsub.add_parser(
        "status", help="show a broker's unit-lifecycle counts"
    )
    fstatus.add_argument("broker", help="path to an existing broker database")
    fstatus.add_argument(
        "--units", action="store_true", help="also list every unit's row"
    )
    fstatus.add_argument(
        "--experiment", default=None, metavar="NAME",
        help="show only this experiment (default: all)",
    )
    fstatus.add_argument(
        "--json", action="store_true",
        help="emit the full status (per-experiment counts, ETA, unit "
             "errors) as one JSON object for external monitors",
    )

    fretry = fsub.add_parser(
        "retry", help="re-queue permanently-failed units after a fix"
    )
    fretry.add_argument("broker", help="path to an existing broker database")
    fretry.add_argument(
        "--experiment", default=None, metavar="NAME",
        help="re-queue only this experiment's failed units (default: all)",
    )

    fcollect = fsub.add_parser(
        "collect", help="fold a finished fleet into the experiment result"
    )
    fcollect.add_argument("broker", help="path to an existing broker database")
    fcollect.add_argument(
        "--experiment", default=None, metavar="NAME",
        help="which experiment to collect (default: the broker's sole "
             "experiment; required when it holds several)",
    )
    fcollect.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the collected ExperimentResult as JSON",
    )

    dataset = sub.add_parser(
        "dataset", help="generate the six-scenario telemetry dataset"
    )
    dataset.add_argument("output_dir")
    dataset.add_argument("--seed", type=int, default=2023)
    dataset.add_argument("--flows", type=int, default=4000)
    dataset.add_argument("--probes", type=int, default=600)

    stream = sub.add_parser(
        "stream",
        help="replay a scenario as a chunk stream and monitor it live",
    )
    stream.add_argument(
        "scenario", nargs="?", default=None,
        help="a registered failure scenario (see 'list'); omitted "
             "when resuming from a checkpoint",
    )
    stream.add_argument("--preset", choices=experiments.PRESETS, default="ci")
    stream.add_argument("--seed", type=int, default=61)
    stream.add_argument(
        "--window", type=int, default=4, metavar="N",
        help="sliding window size in chunks (default: 4)",
    )
    stream.add_argument(
        "--cycle", "--cycles", type=int, default=12, dest="cycles",
        metavar="M", help="number of monitor cycles to run (default: 12)",
    )
    stream.add_argument(
        "--flows", type=int, default=500, metavar="F",
        help="passive flows per chunk (default: 500)",
    )
    stream.add_argument(
        "--probes", type=int, default=100, metavar="P",
        help="probes per chunk (default: 100)",
    )
    stream.add_argument(
        "--scheme", default="flock", metavar="NAME",
        help="registry scheme to localize with (default: flock)",
    )
    stream.add_argument(
        "--onset", type=int, default=None, metavar="C",
        help="chunk index the incident turns on at (default: cycles // 3)",
    )
    stream.add_argument(
        "--clear", type=int, default=None, metavar="C",
        help="chunk index the incident clears at (default: never)",
    )
    stream.add_argument(
        "--no-warm", action="store_true",
        help="cold-localize every cycle instead of warm-starting",
    )
    stream.add_argument(
        "--kernel-backend", default=None, metavar="NAME",
        help="localization kernel backend (numpy, collapsed, numba)",
    )
    stream.add_argument(
        "--cycle-budget", type=float, default=None, metavar="S",
        help="per-cycle wall-clock budget in seconds; over-budget "
             "cycles degrade gracefully (warm greedy fallback, then "
             "carrying the previous hypothesis) instead of falling "
             "behind the stream",
    )
    stream.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a resumable checkpoint to PATH as cycles complete "
             "(atomic write, checksummed)",
    )
    stream.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint cadence in cycles (default: every cycle)",
    )
    stream.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume a crashed run from a checkpoint file; the "
             "scenario and stream parameters come from the checkpoint "
             "and the remaining cycles reproduce the uninterrupted "
             "run bit for bit",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection soak against the fleet "
             "(virtual clock; asserts bit-identical collection)",
    )
    chaos.add_argument(
        "--experiment", default="fig2", metavar="NAME",
        help="a shardable experiment to soak (default: fig2)",
    )
    chaos.add_argument(
        "--preset", choices=experiments.PRESETS, default="tiny"
    )
    chaos.add_argument(
        "--seeds", type=int, default=3, metavar="N",
        help="number of consecutive chaos seeds to soak (default: 3)",
    )
    chaos.add_argument(
        "--base-seed", type=int, default=0, metavar="S",
        help="first chaos seed (default: 0)",
    )
    chaos.add_argument(
        "--profile", choices=("light", "default", "heavy"),
        default="default",
        help="fault-probability profile (default: default)",
    )
    chaos.add_argument(
        "--workers", type=int, default=3, metavar="N",
        help="virtual workers per soak (default: 3)",
    )
    chaos.add_argument(
        "--unit-traces", type=int, default=2, metavar="T",
        help="traces per work unit (default: 2)",
    )
    chaos.add_argument(
        "--lease-seconds", type=float, default=30.0, metavar="S",
        help="virtual lease length (default: 30)",
    )
    chaos.add_argument(
        "--max-attempts", type=int, default=10, metavar="N",
        help="claims per unit before failed (default: 10; chaos burns "
             "attempts on purpose)",
    )
    chaos.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="keep broker files here (default: a temp dir)",
    )
    return parser


def _apply_kernel_backend(args) -> None:
    """Export ``--kernel-backend`` for this process and its workers.

    The engines resolve their backend per state from the
    ``REPRO_KERNEL_BACKEND`` environment variable (explicit constructor
    args win), so one env export covers serial runs, thread/process
    executors, and fleet workers alike.  Unknown or unavailable
    backends fail here, before any work starts.
    """
    name = getattr(args, "kernel_backend", None)
    if name is None:
        return
    from .core import kernels

    if name not in kernels.backend_names():
        raise ExperimentError(
            f"unknown kernel backend {name!r}; registered: "
            + ", ".join(kernels.backend_names())
        )
    kernels.resolve_backend(name)
    os.environ[kernels.ENV_VAR] = name


def parse_overrides(pairs: List[str]) -> Dict[str, object]:
    """Parse repeated ``--set key=val`` flags into builder overrides.

    Values parse as Python literals (``4``, ``0.5``, ``[4, 8]``) and
    fall back to the raw string (``--set calibration=cal.json``).
    """
    overrides: Dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ExperimentError(
                f"--set expects KEY=VAL, got {pair!r}"
            )
        try:
            value = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            value = raw
        overrides[key] = value
    return overrides


def _run_one(name: str, args, runner: Optional[RunnerConfig] = None) -> None:
    print_result(
        run_experiment(
            name,
            preset=args.preset,
            seed=args.seed,
            runner=runner,
            scheme=args.scheme,
            overrides=parse_overrides(args.overrides),
        )
    )


def _runner_from_args(args) -> Optional[RunnerConfig]:
    if args.jobs is None and args.executor is None:
        return None
    return RunnerConfig.resolve(jobs=args.jobs, executor=args.executor)


def _run_shard(args) -> int:
    """Act as one shard worker: execute our trace ranges, write results."""
    if args.shard_index is None or args.out is None:
        raise ExperimentError("--shards requires --shard-index and --out")
    name = args.experiment
    entry = get_experiment(name)
    if not entry.shardable:
        raise ExperimentError(
            f"experiment {name!r} cannot be sharded; shardable experiments: "
            f"{', '.join(shardable_experiment_names())}"
        )
    spec = ShardSpec(args.shard_index, args.shards)
    recorder = ShardRecorder(spec)
    base = _runner_from_args(args) or RunnerConfig()
    overrides = parse_overrides(args.overrides)
    # The returned (partial) result is discarded: only the recorded wire
    # units matter, and `merge` rebuilds the full result from them.
    run_experiment(
        name,
        preset=args.preset,
        seed=args.seed,
        runner=replace(base, shard=recorder),
        scheme=args.scheme,
        overrides=overrides,
    )
    payload = recorder.payload(
        experiment=name,
        preset=args.preset,
        seed=args.seed,
        scheme=args.scheme,
        overrides=overrides,
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as handle:
        json.dump(payload, handle)
    units = sum(len(call["units"]) for call in payload["calls"])
    print(
        f"shard {spec.index + 1}/{spec.count} of {name} ({args.preset}): "
        f"{units} trace unit(s) over {len(payload['calls'])} grid call(s) "
        f"-> {out}"
    )
    if units == 0:
        print(
            f"warning: this shard covered no traces (every grid call in "
            f"{name} has fewer than {spec.count} traces); it still paid "
            "full trace-generation cost - use fewer shards",
            file=sys.stderr,
        )
    return 0


def _merge(args) -> int:
    """Reassemble a full ExperimentResult from shard files."""
    seen: Dict[Path, str] = {}
    for raw in args.shard_files:
        resolved = Path(raw).resolve()
        if resolved in seen:
            raise ExperimentError(
                f"duplicate shard file {raw!r}"
                + (
                    f" (same file as {seen[resolved]!r})"
                    if seen[resolved] != raw
                    else ""
                )
                + "; each shard file must be listed once"
            )
        seen[resolved] = raw
    payloads = []
    for path in args.shard_files:
        try:
            with Path(path).open() as handle:
                payloads.append(json.load(handle))
        except (OSError, ValueError) as exc:
            # ValueError covers both JSONDecodeError and the
            # UnicodeDecodeError a transfer-corrupted file raises.
            raise ExperimentError(f"cannot read shard file {path}: {exc}")
    calls, meta = merge_payloads(payloads)
    name = meta.get("experiment")
    if name not in shardable_experiment_names():
        raise ExperimentError(
            f"shard files name experiment {name!r}, which is unknown or "
            "not shardable"
        )
    replayer = ShardReplayer(calls)
    result = run_experiment(
        name,
        preset=meta.get("preset", "ci"),
        seed=meta.get("seed"),
        runner=RunnerConfig(shard=replayer),
        scheme=meta.get("scheme"),
        overrides=meta.get("overrides") or {},
    )
    replayer.assert_exhausted()
    print_result(result)
    if args.out:
        print(f"\nwrote merged result to {save_result(result, args.out)}")
    return 0


def _error_headline(error: str) -> str:
    """The exception line of a stored unit error (errors are full
    tracebacks since broker v2; status lines want one line)."""
    lines = [line for line in error.strip().splitlines() if line.strip()]
    return lines[-1] if lines else error


def _fleet(args) -> int:
    """Dispatch the ``fleet`` subcommands (submit/work/status/collect)."""
    from .eval import fleet

    if args.fleet_command == "submit":
        report = fleet.submit(
            args.broker,
            args.experiment,
            preset=args.preset,
            seed=args.seed,
            scheme=args.scheme,
            overrides=parse_overrides(args.overrides),
            unit_traces=args.unit_traces,
            lease_seconds=args.lease_seconds,
            max_attempts=args.max_attempts,
            name=args.name,
            priority=args.priority,
            if_exists=args.if_exists,
        )
        verb = "resumed" if report.resumed else "submitted"
        named = (
            f" as {report.name!r}" if report.name != report.experiment else ""
        )
        print(
            f"{verb} {report.experiment} ({report.preset}){named}: "
            f"{report.n_units} work unit(s) over {report.n_calls} grid "
            f"call(s) -> {report.path}"
            + (
                f" ({report.n_enqueued} newly enqueued)"
                if report.resumed else ""
            )
        )
        return 0
    if args.fleet_command == "work":
        if args.max_units is not None and args.max_units < 1:
            raise ExperimentError(
                f"--max-units must be >= 1, got {args.max_units}"
            )
        report = fleet.work(
            args.broker,
            worker_id=args.worker_id,
            runner=_runner_from_args(args),
            max_units=args.max_units,
            wait=not args.no_wait,
            experiment=args.experiment,
            heartbeat_seconds=args.heartbeat_seconds,
        )
        line = (
            f"worker {report.worker}: {report.completed} unit(s) completed, "
            f"{report.failed} failed, {report.stale} stale"
        )
        if report.renewed:
            line += f", {report.renewed} lease renewal(s)"
        if report.io_retries:
            line += f", {report.io_retries} I/O retr(ies)"
        print(line)
        return 0
    if args.fleet_command == "status":
        state = fleet.status(
            args.broker, detail=args.units, experiment=args.experiment
        )
        if args.json:
            print(json.dumps(state, indent=2))
            return 0
        for exp in state["experiments"]:
            counts = exp["counts"]
            total = sum(counts.values())
            scheme = f", scheme {exp['scheme']}" if exp.get("scheme") else ""
            prio = f", priority {exp['priority']}" if exp["priority"] else ""
            journal = "" if exp["state"] == "ready" else f" [{exp['state']}]"
            named = (
                f"{exp['name']}: " if exp["name"] != exp["experiment"] else ""
            )
            print(
                f"{named}{exp['experiment']} "
                f"({exp['preset']}{scheme}{prio}){journal}: "
                f"{total} unit(s): "
                + ", ".join(f"{v} {k}" for k, v in counts.items())
            )
            progress = exp["progress"]
            if progress["total"]:
                pct = 100.0 * progress["done"] / progress["total"]
                line = (
                    f"progress {progress['done']}/{progress['total']} "
                    f"unit(s) ({pct:.0f}%)"
                )
                if progress["rate_per_s"] is not None:
                    line += f", {progress['rate_per_s']:.2f} unit/s"
                    if progress["remaining"]:
                        line += f", ETA ~{progress['eta_s']:.0f}s"
                print(line)
            for unit_id, error in exp["errors"]:
                print(f"  unit {unit_id} failed: {_error_headline(error)}")
        if args.units:
            for row in state["units"]:
                holder = f" worker={row['worker']}" if row["worker"] else ""
                line = (
                    f"  unit {row['id']}: call {row['call_index']} traces "
                    f"[{row['start']}, {row['stop']}) {row['status']} "
                    f"attempts={row['attempts']}{holder}"
                )
                if row["error"]:
                    line += f" error={_error_headline(row['error'])}"
                print(line)
        return 0
    if args.fleet_command == "retry":
        requeued = fleet.retry(args.broker, experiment=args.experiment)
        print(f"re-queued {requeued} failed unit(s)")
        return 0
    if args.fleet_command == "collect":
        result = fleet.collect(args.broker, experiment=args.experiment)
        print_result(result)
        if args.out:
            print(f"\nwrote collected result to {save_result(result, args.out)}")
        return 0
    raise ExperimentError(f"unknown fleet command {args.fleet_command!r}")


def _chaos(args) -> int:
    """Seeded fault-injection soaks: fleet under chaos vs. serial."""
    import tempfile

    from .errors import ChaosError
    from .eval import chaos

    spec = chaos.PROFILES[args.profile]
    seeds = range(args.base_seed, args.base_seed + args.seeds)
    print(
        f"chaos soak: {args.experiment} ({args.preset}), "
        f"{args.seeds} seed(s) from {args.base_seed}, "
        f"profile {args.profile}, {args.workers} virtual worker(s)"
    )

    def _soak(workdir):
        reports = chaos.run_chaos_suite(
            experiment=args.experiment,
            preset=args.preset,
            seeds=seeds,
            spec=spec,
            workdir=workdir,
            n_workers=args.workers,
            unit_traces=args.unit_traces,
            lease_seconds=args.lease_seconds,
            max_attempts=args.max_attempts,
            strict=False,
            echo=lambda line: print(f"  {line}"),
        )
        from .eval.spec import run_experiment

        serial_lo = run_experiment(args.experiment, preset=args.preset).rows
        for seed in seeds:
            serial_hi = run_experiment(
                args.experiment, preset=args.preset, seed=101 + seed,
            ).rows
            report = chaos.run_multi_soak(
                experiment=args.experiment,
                preset=args.preset,
                seed=seed,
                spec=spec,
                workdir=workdir,
                n_workers=args.workers,
                unit_traces=args.unit_traces,
                lease_seconds=args.lease_seconds,
                max_attempts=args.max_attempts,
                serial_rows_pair=(serial_lo, serial_hi),
                strict=False,
            )
            print(f"  {report.summary()}")
            reports.append(report)
        for seed in seeds:
            report = chaos.run_stream_soak(
                preset=args.preset,
                seed=seed,
                spec=spec,
                workdir=workdir,
                strict=False,
            )
            print(f"  {report.summary()}")
            reports.append(report)
        return reports

    if args.workdir is not None:
        reports = _soak(args.workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
            reports = _soak(workdir)
    faults = sum(sum(r.events.values()) for r in reports)
    ok = sum(1 for r in reports if r.ok)
    print(
        f"{ok}/{len(reports)} soak(s) drained bit-identical to serial "
        f"under {faults} injected fault(s)"
    )
    if ok != len(reports):
        raise ChaosError(
            f"{len(reports) - ok} of {len(reports)} chaos soak(s) failed"
        )
    return 0


def _list(args) -> int:
    sections = []
    if args.experiments:
        sections.append("experiments")
    if args.schemes:
        sections.append("schemes")
    if args.scenarios:
        sections.append("scenarios")
    if not sections:
        sections = ["experiments", "schemes", "scenarios"]
    width = 20
    if "experiments" in sections:
        print("experiments:")
        for name in experiment_names():
            entry = get_experiment(name)
            flags = []
            if not entry.shardable:
                flags.append("not shardable")
            if not entry.include_in_all:
                flags.append("not in 'run all'")
            suffix = f"  [{'; '.join(flags)}]" if flags else ""
            print(f"  {name:<{width}} {entry.description}{suffix}")
    if "schemes" in sections:
        if "experiments" in sections:
            print()
        print("schemes:")
        for name in scheme_names():
            entry = get_scheme(name)
            print(
                f"  {name:<{width}} {entry.description} "
                f"(default input: {entry.default_spec})"
            )
    if "scenarios" in sections:
        if len(sections) > 1:
            print()
        print("scenarios:")
        for name in scenario_names():
            print(f"  {name:<{width}} {scenario_description(name)}")
    return 0


def _stream(args) -> int:
    """Replay a chunked incident and print per-cycle detections."""
    from .errors import CheckpointError
    from .eval.serialize import decode_stream_checkpoint
    from .eval.stream import StreamMonitor, incident_latencies
    from .routing.ecmp import EcmpRouting
    from .simulation.failures import make_scenario
    from .simulation.stream import replay_stream

    def generate(meta, seed):
        scenario = make_scenario(meta["scenario"])
        topology = experiments.standard_topology(meta["preset"])
        routing = EcmpRouting(topology)
        chunks = replay_stream(
            topology,
            routing,
            scenario,
            seed=seed,
            n_chunks=meta["cycles"],
            flows_per_chunk=meta["flows"],
            probes_per_chunk=meta["probes"],
            onset_chunk=meta["onset"],
            clear_chunk=meta["clear"],
        )
        return topology, list(chunks)

    if args.resume is not None:
        try:
            with open(args.resume, "r", encoding="utf-8") as handle:
                payload = decode_stream_checkpoint(handle.read())
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {args.resume}: {exc}"
            ) from None
        meta = payload["meta"]
        for key in ("scenario", "preset", "cycles", "flows", "probes",
                    "onset", "clear"):
            if key not in meta:
                raise CheckpointError(
                    f"checkpoint {args.resume} has no {key!r} in its "
                    "stream metadata; it was not written by "
                    "'repro-flock stream --checkpoint'"
                )
        config = payload.get("config", {})
        topology, chunks = generate(meta, seed=config.get("seed", 0))
        monitor = StreamMonitor.from_checkpoint(
            payload,
            topology,
            chunks,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint or args.resume,
        )
        chunks = [c for c in chunks if c.index >= monitor.cursor]
        scenario_name = meta["scenario"]
        preset = meta["preset"]
        n_cycles = meta["cycles"]
        print(
            f"resuming {scenario_name} on {preset} fabric from "
            f"{args.resume} at cycle {monitor.cursor} "
            f"({monitor.cycles} cycle(s) already done, "
            f"{len(chunks)} remaining)"
        )
    else:
        if args.scenario is None:
            raise CheckpointError(
                "stream needs a scenario (or --resume PATH)"
            )
        onset = args.onset if args.onset is not None else args.cycles // 3
        meta = {
            "scenario": args.scenario,
            "preset": args.preset,
            "cycles": args.cycles,
            "flows": args.flows,
            "probes": args.probes,
            "onset": onset,
            "clear": args.clear,
        }
        topology, chunks = generate(meta, seed=args.seed)
        monitor = StreamMonitor(
            topology,
            scheme=args.scheme,
            window=args.window,
            warm=not args.no_warm,
            seed=args.seed,
            cycle_budget=args.cycle_budget,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint,
            checkpoint_meta=meta,
        )
        scenario_name = args.scenario
        preset = args.preset
        n_cycles = args.cycles
        mode = "warm" if monitor.warm else "cold"
        budget = (
            f", budget {args.cycle_budget * 1e3:.0f}ms/cycle"
            if args.cycle_budget is not None else ""
        )
        checkpointing = (
            f", checkpointing to {args.checkpoint}"
            if args.checkpoint else ""
        )
        print(
            f"streaming {scenario_name} on {preset} fabric "
            f"({topology.n_links} links): {n_cycles} cycles, "
            f"window {args.window}, scheme {monitor.setup.name} "
            f"({mode}){budget}{checkpointing}"
        )
    reports = []
    for chunk in chunks:
        report = monitor.step(chunk)
        reports.append(report)
        names = sorted(
            topology.component_name(c) for c in report.prediction.components
        )
        mark = "*" if report.detected else (" " if not report.truth else "!")
        ms = (report.build_seconds + report.localize_seconds) * 1e3
        degraded = (
            f"  degraded({report.degrade_reason})" if report.degrade_reason
            else ""
        )
        print(
            f"  cycle {report.cycle:>3} [{mark}] flows={report.raw_flows:>6} "
            f"window={report.grouped_flows:>7} churn={report.churn} "
            f"{ms:7.1f}ms  predicted: "
            f"{', '.join(names) if names else '-'}{degraded}"
        )
    if monitor.cycle_budget is not None:
        print(
            f"{monitor.degraded_cycles} degraded cycle(s) of "
            f"{monitor.cycles} under the "
            f"{monitor.cycle_budget * 1e3:.0f}ms budget"
        )
    for inc in incident_latencies(reports):
        if inc["detected_cycle"] is None:
            print(
                f"incident @ cycle {inc['onset_cycle']}: NOT detected "
                f"(cleared at {inc['clear_cycle']})"
            )
        else:
            print(
                f"incident @ cycle {inc['onset_cycle']}: detected at cycle "
                f"{inc['detected_cycle']} "
                f"(latency {inc['latency_cycles']} cycle(s), "
                f"{inc['latency_seconds']:.1f}s)"
            )
    return 0


def main(argv=None) -> int:
    try:
        return _main(argv)
    except ReproError as exc:
        print(f"repro-flock: error: {exc}", file=sys.stderr)
        return 2


def _main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    _apply_kernel_backend(args)
    if args.command == "dataset":
        from .eval.dataset import generate_suite

        paths = generate_suite(
            args.output_dir, seed=args.seed,
            n_passive=args.flows, n_probes=args.probes,
        )
        for path in paths:
            print(path)
        return 0
    if args.command == "list":
        return _list(args)
    if args.command == "merge":
        return _merge(args)
    if args.command == "fleet":
        return _fleet(args)
    if args.command == "stream":
        return _stream(args)
    if args.command == "chaos":
        return _chaos(args)
    if args.experiment == "all":
        # Per-experiment flags don't compose with 'all': overrides are
        # validated against one builder's knobs, and probe-only
        # experiments reject --scheme - failing upfront beats dying
        # halfway through with partial output.
        if args.scheme is not None or args.overrides or args.shards is not None:
            raise ExperimentError(
                "--scheme/--set/--shards require a single experiment, not 'all'"
            )
    else:
        get_experiment(args.experiment)  # fail fast on unknown names
    if args.scheme is not None:
        get_scheme(args.scheme)
    if args.shards is not None:
        return _run_shard(args)
    if args.shard_index is not None or args.out is not None:
        raise ExperimentError("--shard-index/--out are only valid with --shards")
    runner = _runner_from_args(args)
    if args.experiment == "all":
        # The table1 phase experiments are excluded: the combined
        # table1 already runs both phases, and each phase would redo
        # the full calibrate-grid sweep.
        for name in default_experiment_names():
            _run_one(name, args, runner)
        return 0
    _run_one(args.experiment, args, runner)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
