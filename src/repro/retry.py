"""Shared retry policy: bounded exponential backoff with jitter.

Transient faults - ``sqlite3.OperationalError: database is locked``
under multi-process broker contention, a claim poll racing a reap, an
NFS hiccup - should cost a short, bounded wait, not a dead worker.
:class:`RetryPolicy` is the one knob for that behavior: the fleet
worker wraps every broker operation (claim, renew, complete, fail,
counts) in :meth:`RetryPolicy.call`, and the chaos harness
(:mod:`repro.eval.chaos`) injects exactly the faults this policy is
expected to absorb.

Design points:

* **Deterministic jitter.**  The jitter stream comes from a seeded
  ``random.Random``, so a chaos soak that injects locked-database
  faults replays the same backoff schedule for the same seed.  Pass
  ``rng=None`` (default) for an unseeded production stream.
* **Injectable sleep.**  ``call`` takes the sleep function, so a
  virtual-clock harness advances simulated time instead of blocking.
* **Bounded.**  After ``attempts`` tries the last exception propagates
  unchanged; the policy never converts an error, only delays it.
"""

from __future__ import annotations

import random
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple, Type

from .errors import ReproError

#: Exception types worth retrying by default: SQLite's transient
#: "database is locked" / "database table is locked" both surface as
#: OperationalError.  Programming errors (IntegrityError etc.) and
#: :class:`ReproError` never retry.
DEFAULT_TRANSIENT: Tuple[Type[BaseException], ...] = (sqlite3.OperationalError,)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter over a bounded attempt budget.

    ``delay(k)`` for attempt ``k`` (0-based) is
    ``min(base_delay * multiplier**k, max_delay)`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    """

    attempts: int = 6
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    transient: Tuple[Type[BaseException], ...] = DEFAULT_TRANSIENT
    seed: Optional[int] = field(default=None)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ReproError(f"retry attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ReproError(
                f"retry multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError(
                f"retry jitter must be in [0, 1), got {self.jitter}"
            )

    def make_rng(self) -> random.Random:
        """A fresh jitter stream (seeded when the policy is seeded)."""
        return random.Random(self.seed)

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The backoff delays between attempts (``attempts - 1`` of them)."""
        rng = rng if rng is not None else self.make_rng()
        for k in range(self.attempts - 1):
            raw = min(self.base_delay * self.multiplier ** k, self.max_delay)
            scale = 1.0 if self.jitter == 0 else rng.uniform(
                1.0 - self.jitter, 1.0 + self.jitter
            )
            yield raw * scale

    def is_transient(self, exc: BaseException) -> bool:
        return isinstance(exc, self.transient) and not isinstance(
            exc, ReproError
        )

    def call(
        self,
        fn: Callable,
        *args,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        **kwargs,
    ):
        """Invoke ``fn`` with retries on transient exceptions.

        ``on_retry(attempt, exc)`` observes every absorbed fault (the
        worker counts them); the final failure propagates unchanged.
        A caller-supplied ``rng`` lets one jitter stream span many
        calls (a worker's whole run) instead of restarting per call.
        """
        rng = rng if rng is not None else self.make_rng()
        delays = self.delays(rng)
        for attempt in range(self.attempts):
            try:
                return fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - filtered below
                if attempt == self.attempts - 1 or not self.is_transient(exc):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(next(delays))
        raise AssertionError("unreachable")  # pragma: no cover


#: The fleet worker's default stance toward broker I/O: ~6 tries over a
#: couple of seconds absorbs WAL-mode lock contention without masking a
#: genuinely wedged database for long.
DEFAULT_BROKER_RETRY = RetryPolicy()

__all__ = ["DEFAULT_BROKER_RETRY", "DEFAULT_TRANSIENT", "RetryPolicy"]
