"""007 baseline (Arzani et al., NSDI 2018) - Algorithm 1 voting.

007's analysis agent assigns blame by voting: every flow that saw at
least one retransmission, with its path known from an active traceroute,
adds a vote of ``1/h`` to each of the ``h`` links on its path.  Links
are then ranked by total votes and the top-scoring links are blamed.

007 consumes only exact-path flagged flows (input type A2 in the paper)
and has a single hyperparameter - here the fraction ``tau`` of the
maximum score a link must reach to be reported, which is what the
paper's calibration sweeps (section 5.2: "007 has 1 [parameter]").

007 is link-level: it never predicts device components, and it ignores
path-uncertain passive flows ("NetBouncer and 007 cannot trivially
ingest the passive telemetry as they do not model path uncertainty").
"""

from __future__ import annotations

from typing import Dict

from ..errors import InferenceError
from ..types import Prediction
from .base import exact_flow_view


class Vote007:
    """007-style link voting."""

    name = "007"

    def __init__(self, threshold: float = 0.7) -> None:
        if not 0.0 < threshold <= 1.0:
            raise InferenceError("threshold must be in (0, 1]")
        self._threshold = threshold

    @property
    def threshold(self) -> float:
        return self._threshold

    def localize(self, problem) -> Prediction:
        votes: Dict[int, float] = {}
        for flow in exact_flow_view(problem):
            if flow.bad_packets < 1:
                continue
            links = [c for c in flow.components if c < problem.n_links]
            if not links:
                continue
            share = flow.weight / len(links)
            for link in links:
                votes[link] = votes.get(link, 0.0) + share
        if not votes:
            return Prediction.empty()
        max_score = max(votes.values())
        if max_score <= 0.0:
            return Prediction.empty()
        cutoff = self._threshold * max_score
        predicted = frozenset(
            link for link, score in votes.items() if score >= cutoff
        )
        return Prediction(components=predicted, scores=votes)
