"""007 baseline (Arzani et al., NSDI 2018) - Algorithm 1 voting.

007's analysis agent assigns blame by voting: every flow that saw at
least one retransmission, with its path known from an active traceroute,
adds a vote of ``1/h`` to each of the ``h`` links on its path.  Links
are then ranked by total votes and the top-scoring links are blamed.

007 consumes only exact-path flagged flows (input type A2 in the paper)
and has a single hyperparameter - here the fraction ``tau`` of the
maximum score a link must reach to be reported, which is what the
paper's calibration sweeps (section 5.2: "007 has 1 [parameter]").

007 is link-level: it never predicts device components, and it ignores
path-uncertain passive flows ("NetBouncer and 007 cannot trivially
ingest the passive telemetry as they do not model path uncertainty").
"""

from __future__ import annotations

import numpy as np

from ..errors import InferenceError
from ..types import Prediction
from .base import exact_flow_components


class Vote007:
    """007-style link voting, tallied as whole-array passes.

    Votes accumulate per link in flow order (``np.bincount`` over the
    flow-major expansion), which is the same float addition sequence
    the historical per-flow dict loop performed - tallies are
    bit-identical to it.
    """

    name = "007"

    def __init__(self, threshold: float = 0.7) -> None:
        if not 0.0 < threshold <= 1.0:
            raise InferenceError("threshold must be in (0, 1]")
        self._threshold = threshold

    @property
    def threshold(self) -> float:
        return self._threshold

    def localize(self, problem) -> Prediction:
        flows, comps, off = exact_flow_components(problem)
        if len(flows) == 0:
            return Prediction.empty()
        local = np.repeat(
            np.arange(len(flows), dtype=np.int64), np.diff(off)
        )
        link_rows = comps < problem.n_links
        link_local = local[link_rows]
        link_comp = comps[link_rows]
        links_per_flow = np.bincount(link_local, minlength=len(flows))
        flagged = (problem.bad_packets[flows] >= 1) & (links_per_flow > 0)
        if not flagged.any():
            return Prediction.empty()
        share = np.zeros(len(flows))
        share[flagged] = (
            problem.weights[flows[flagged]] / links_per_flow[flagged]
        )
        use = flagged[link_local]
        votes = np.bincount(
            link_comp[use], weights=share[link_local[use]],
            minlength=problem.n_links,
        )
        max_score = float(votes.max()) if len(votes) else 0.0
        if max_score <= 0.0:
            return Prediction.empty()
        cutoff = self._threshold * max_score
        voted = np.nonzero(votes > 0.0)[0]
        scores = {int(l): float(votes[l]) for l in voted.tolist()}
        predicted = frozenset(
            int(l) for l in voted.tolist() if votes[l] >= cutoff
        )
        return Prediction(components=predicted, scores=scores)
