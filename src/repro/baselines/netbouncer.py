"""NetBouncer baseline (Tan et al., NSDI 2019) - Figure 5 of that paper.

NetBouncer solves for per-link *success* probabilities ``x_l`` from
per-path success ratios ``y_p`` by minimizing the regularized least
squares objective

    sum_p (y_p - prod_{l in p} x_l)^2  +  lam * sum_l x_l (1 - x_l)

via coordinate descent: fixing all other coordinates, the objective is a
quadratic in ``x_l`` with the closed-form minimizer

    x_l = ( sum_p y_p q_p - lam/2 ) / ( sum_p q_p^2 - lam ),
    q_p = prod_{l' in p, l' != l} x_{l'}

clipped to [0, 1].  The ``x(1-x)`` term pushes coordinates toward {0,1},
which is NetBouncer's noise-suppression trick.

A link is reported failed when its estimated drop rate ``1 - x_l``
exceeds ``drop_threshold``; a device is reported failed when at least a
``device_frac`` fraction of its observed links failed (the paper
calibrates "NetBouncer's threshold for the number of problematic flows
crossing a device" for the device-failure experiment).  Those three
knobs match the paper's "NetBouncer has 3 [parameters]".

Like 007, NetBouncer consumes exact-path flows only.

Implementation notes: flows aggregate into per-link-path success ratios
with whole-array passes over the problem CSRs; each coordinate-descent
step computes all of a link's path products with one masked
``np.multiply.reduceat`` (excluded coordinates read as an exact 1.0
factor), and the per-link boundary scan of the concave case prices both
endpoints vectorized.  Scalar accumulations are reproduced with
``cumsum`` folds, so estimates match the historical per-path Python
loops bit for bit.  The device rule walks the component indexes
(``comp -> paths``, ``comp -> flows``, endpoint columns) instead of the
object views, so compressed problems never expand.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.problem import _expand_slices
from ..errors import InferenceError
from ..types import Prediction
from .base import exact_flow_components


def _seq_sum(terms: np.ndarray, init: float) -> float:
    """Left-to-right ``init + t1 + t2 + ...`` (the scalar-loop order)."""
    if len(terms) == 0:
        return init
    return float(np.cumsum(np.concatenate(([init], terms)))[-1])


class NetBouncer:
    """NetBouncer's regularized least-squares link estimator."""

    name = "netbouncer"

    def __init__(
        self,
        regularization: float = 0.005,
        drop_threshold: float = 3e-3,
        device_frac: float = 0.5,
        max_sweeps: int = 50,
        tol: float = 1e-9,
    ) -> None:
        if regularization < 0.0:
            raise InferenceError("regularization must be non-negative")
        if not 0.0 < drop_threshold < 1.0:
            raise InferenceError("drop_threshold must be in (0, 1)")
        if not 0.0 < device_frac <= 1.0:
            raise InferenceError("device_frac must be in (0, 1]")
        if max_sweeps < 1:
            raise InferenceError("max_sweeps must be >= 1")
        self._lam = regularization
        self._drop_threshold = drop_threshold
        self._device_frac = device_frac
        self._max_sweeps = max_sweeps
        self._tol = tol

    # ------------------------------------------------------------------
    def _aggregate(self, problem):
        """Group exact flows into per-(link-)path success ratios.

        Returns (paths as link tuples in first-seen order, y array).
        Flows of one problem set share their components, so grouping
        runs per distinct set and only merges sets whose link tuples
        coincide.
        """
        flows, comps, off = exact_flow_components(problem)
        if len(flows) == 0:
            return [], np.empty(0)
        sent = problem.packets_sent[flows]
        bad = problem.bad_packets[flows]
        wt = problem.weights[flows]
        local = np.repeat(np.arange(len(flows), dtype=np.int64), np.diff(off))
        link_rows = comps < problem.n_links
        l_local = local[link_rows]
        l_comp = comps[link_rows]
        lcounts = np.bincount(l_local, minlength=len(flows))
        loff = np.zeros(len(flows) + 1, dtype=np.int64)
        np.cumsum(lcounts, out=loff[1:])

        valid = (lcounts > 0) & (sent > 0)
        sets = problem._set_of_flow[flows]
        group_of_set: Dict[int, int] = {}
        group_index: Dict[Tuple[int, ...], int] = {}
        paths: List[Tuple[int, ...]] = []
        group_ids = np.full(len(flows), -1, dtype=np.int64)
        l_comp_list = l_comp.tolist()
        for i in np.nonzero(valid)[0].tolist():
            sid = int(sets[i])
            gid = group_of_set.get(sid)
            if gid is None:
                links = tuple(l_comp_list[loff[i]:loff[i + 1]])
                gid = group_index.get(links)
                if gid is None:
                    gid = len(paths)
                    group_index[links] = gid
                    paths.append(links)
                group_of_set[sid] = gid
            group_ids[i] = gid

        sel = group_ids >= 0
        good = np.bincount(
            group_ids[sel],
            weights=(wt * (sent - bad))[sel],
            minlength=len(paths),
        )
        total = np.bincount(
            group_ids[sel], weights=(wt * sent)[sel], minlength=len(paths)
        )
        return paths, good / total

    # ------------------------------------------------------------------
    def localize(self, problem) -> Prediction:
        paths, y = self._aggregate(problem)
        if not paths:
            return Prediction.empty()

        links = sorted({link for path in paths for link in path})
        link_index = {link: i for i, link in enumerate(links)}
        # Path -> link-index CSR (member order preserved).
        plen = np.fromiter(
            (len(p) for p in paths), dtype=np.int64, count=len(paths)
        )
        plo = np.zeros(len(paths) + 1, dtype=np.int64)
        np.cumsum(plen, out=plo[1:])
        pl_flat = np.fromiter(
            (link_index[l] for path in paths for l in path),
            dtype=np.int64,
            count=int(plo[-1]),
        )
        # link index -> member paths (ascending), via a stable sort.
        path_of = np.repeat(np.arange(len(paths), dtype=np.int64), plen)
        order = np.argsort(pl_flat, kind="stable")
        pol_vals = path_of[order]
        pol_bounds = np.searchsorted(
            pl_flat[order], np.arange(len(links) + 1, dtype=np.int64)
        )

        x = np.ones(len(links))
        lam = self._lam
        for _ in range(self._max_sweeps):
            max_move = 0.0
            for li in range(len(links)):
                members = pol_vals[pol_bounds[li]:pol_bounds[li + 1]]
                if not len(members):
                    continue
                seg_lens = plen[members]
                idx = _expand_slices(plo[members], seg_lens)
                flat = pl_flat[idx]
                vals = x[flat]
                # The excluded coordinate reads as an exact 1.0 factor,
                # so the left-to-right fold equals the skip-one loop.
                vals[flat == li] = 1.0
                starts = np.zeros(len(members), dtype=np.int64)
                np.cumsum(seg_lens[:-1], out=starts[1:])
                q = np.multiply.reduceat(vals, starts)
                ym = y[members]
                num = _seq_sum(ym * q, -lam / 2.0)
                den = _seq_sum(q * q, -lam)
                if den > 1e-12:
                    new = min(1.0, max(0.0, num / den))
                elif den < -1e-12:
                    # Regularizer dominates: the quadratic is concave, so
                    # the minimum is at a boundary; pick the better one.
                    new = self._boundary_min(ym, q)
                else:
                    continue
                max_move = max(max_move, abs(new - x[li]))
                x[li] = new
            if max_move < self._tol:
                break

        drop = 1.0 - x
        failed_links = frozenset(
            links[i] for i in range(len(links)) if drop[i] > self._drop_threshold
        )

        predicted = set(failed_links)
        predicted |= self._failed_devices(problem, failed_links)
        scores = {links[i]: float(drop[i]) for i in range(len(links))}
        return Prediction(components=frozenset(predicted), scores=scores)

    def _boundary_min(self, ym: np.ndarray, q: np.ndarray) -> float:
        """Evaluate the per-coordinate objective at x_l in {0, 1}."""
        best_val = None
        best_x = 1.0
        for candidate in (0.0, 1.0):
            resid = ym - candidate * q
            val = _seq_sum(
                resid * resid, 0.0
            ) + self._lam * candidate * (1.0 - candidate)
            if best_val is None or val < best_val:
                best_val = val
                best_x = candidate
        return best_x

    def _failed_devices(self, problem, failed_links: frozenset) -> set:
        """Blame a device when enough of its observed links failed.

        A device's observed links are the links co-occurring with it on
        any path: its kernel paths' link comps plus the endpoint links
        of every set containing it (endpoint comps sit on all member
        paths, including the device-bearing ones).
        """
        out: set = set()
        n_links = problem.n_links
        for device in problem.observed_components:
            if device < n_links:
                continue
            dev_pids = problem.comp_path_ids(device)
            lens = np.diff(problem.path_off)[dev_pids]
            pcomps = problem.path_comps[
                _expand_slices(problem.path_off[dev_pids], lens)
            ]
            flows = problem.comp_flows(device)
            aff_sets = np.unique(problem._set_of_flow[flows])
            e_lens = np.diff(problem._set_eoff)[aff_sets]
            e_links = problem._set_ecomps[
                _expand_slices(problem._set_eoff[aff_sets], e_lens)
            ]
            observed = set(pcomps[pcomps < n_links].tolist())
            observed.update(e_links.tolist())
            if not observed:
                continue
            failed_here = observed & failed_links
            if len(failed_here) / len(observed) >= self._device_frac:
                out.add(device)
        return out
