"""NetBouncer baseline (Tan et al., NSDI 2019) - Figure 5 of that paper.

NetBouncer solves for per-link *success* probabilities ``x_l`` from
per-path success ratios ``y_p`` by minimizing the regularized least
squares objective

    sum_p (y_p - prod_{l in p} x_l)^2  +  lam * sum_l x_l (1 - x_l)

via coordinate descent: fixing all other coordinates, the objective is a
quadratic in ``x_l`` with the closed-form minimizer

    x_l = ( sum_p y_p q_p - lam/2 ) / ( sum_p q_p^2 - lam ),
    q_p = prod_{l' in p, l' != l} x_{l'}

clipped to [0, 1].  The ``x(1-x)`` term pushes coordinates toward {0,1},
which is NetBouncer's noise-suppression trick.

A link is reported failed when its estimated drop rate ``1 - x_l``
exceeds ``drop_threshold``; a device is reported failed when at least a
``device_frac`` fraction of its observed links failed (the paper
calibrates "NetBouncer's threshold for the number of problematic flows
crossing a device" for the device-failure experiment).  Those three
knobs match the paper's "NetBouncer has 3 [parameters]".

Like 007, NetBouncer consumes exact-path flows only.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import InferenceError
from ..types import Prediction
from .base import exact_flow_view


class NetBouncer:
    """NetBouncer's regularized least-squares link estimator."""

    name = "netbouncer"

    def __init__(
        self,
        regularization: float = 0.005,
        drop_threshold: float = 3e-3,
        device_frac: float = 0.5,
        max_sweeps: int = 50,
        tol: float = 1e-9,
    ) -> None:
        if regularization < 0.0:
            raise InferenceError("regularization must be non-negative")
        if not 0.0 < drop_threshold < 1.0:
            raise InferenceError("drop_threshold must be in (0, 1)")
        if not 0.0 < device_frac <= 1.0:
            raise InferenceError("device_frac must be in (0, 1]")
        if max_sweeps < 1:
            raise InferenceError("max_sweeps must be >= 1")
        self._lam = regularization
        self._drop_threshold = drop_threshold
        self._device_frac = device_frac
        self._max_sweeps = max_sweeps
        self._tol = tol

    # ------------------------------------------------------------------
    def localize(self, problem) -> Prediction:
        # Aggregate exact flows into per-(link-)path success ratios; the
        # path's device components are remembered for the device rule.
        path_stats: Dict[Tuple[int, ...], List[int]] = {}
        for flow in exact_flow_view(problem):
            links = tuple(c for c in flow.components if c < problem.n_links)
            if not links or flow.packets_sent == 0:
                continue
            entry = path_stats.setdefault(links, [0, 0])
            entry[0] += flow.weight * (flow.packets_sent - flow.bad_packets)
            entry[1] += flow.weight * flow.packets_sent
        if not path_stats:
            return Prediction.empty()

        paths = list(path_stats)
        y = np.asarray(
            [good / total for good, total in (path_stats[p] for p in paths)]
        )
        links = sorted({link for path in paths for link in path})
        link_index = {link: i for i, link in enumerate(links)}
        paths_idx = [
            np.asarray([link_index[l] for l in path], dtype=np.int64)
            for path in paths
        ]
        paths_of_link: Dict[int, List[int]] = {i: [] for i in range(len(links))}
        for p, idxs in enumerate(paths_idx):
            for i in idxs:
                paths_of_link[int(i)].append(p)

        x = np.ones(len(links))
        lam = self._lam
        for _ in range(self._max_sweeps):
            max_move = 0.0
            for li in range(len(links)):
                member_paths = paths_of_link[li]
                if not member_paths:
                    continue
                num = -lam / 2.0
                den = -lam
                for p in member_paths:
                    idxs = paths_idx[p]
                    q = 1.0
                    for j in idxs:
                        if int(j) != li:
                            q *= x[j]
                    num += y[p] * q
                    den += q * q
                if den > 1e-12:
                    new = min(1.0, max(0.0, num / den))
                elif den < -1e-12:
                    # Regularizer dominates: the quadratic is concave, so
                    # the minimum is at a boundary; pick the better one.
                    new = self._boundary_min(li, paths_idx, paths_of_link, y, x)
                else:
                    continue
                max_move = max(max_move, abs(new - x[li]))
                x[li] = new
            if max_move < self._tol:
                break

        drop = 1.0 - x
        failed_links = frozenset(
            links[i] for i in range(len(links)) if drop[i] > self._drop_threshold
        )

        # Device rule: blame a device when enough of its observed links
        # failed.  Observed links per device come from the problem's
        # component indexes.
        predicted = set(failed_links)
        for device, flows in problem.flows_by_comp.items():
            if device < problem.n_links:
                continue
            observed_links: set = set()
            for flow in flows:
                for pid in problem.flow_paths[flow]:
                    comps = problem.path_table.components(pid)
                    if device in comps:
                        observed_links.update(
                            c for c in comps if c < problem.n_links
                        )
            if not observed_links:
                continue
            failed_here = observed_links & failed_links
            if len(failed_here) / len(observed_links) >= self._device_frac:
                predicted.add(device)

        scores = {links[i]: float(drop[i]) for i in range(len(links))}
        return Prediction(components=frozenset(predicted), scores=scores)

    def _boundary_min(self, li, paths_idx, paths_of_link, y, x) -> float:
        """Evaluate the per-coordinate objective at x_l in {0, 1}."""
        best_val = None
        best_x = 1.0
        for candidate in (0.0, 1.0):
            val = 0.0
            for p in paths_of_link[li]:
                idxs = paths_idx[p]
                q = 1.0
                for j in idxs:
                    if int(j) != li:
                        q *= x[j]
                resid = y[p] - candidate * q
                val += resid * resid
            val += self._lam * candidate * (1.0 - candidate)
            if best_val is None or val < best_val:
                best_val = val
                best_x = candidate
        return best_x
