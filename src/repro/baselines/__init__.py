"""Baseline fault-localization schemes: 007, NetBouncer, Sherlock."""

from .b007 import Vote007
from .base import ExactFlow, exact_flow_view
from .netbouncer import NetBouncer
from .sherlock import SherlockFerret

__all__ = ["Vote007", "NetBouncer", "SherlockFerret", "ExactFlow", "exact_flow_view"]
