"""Sherlock's "Ferret" inference (Bahl et al., SIGCOMM 2007), on
Flock's PGM, with and without JLE acceleration.

For a fair comparison the paper runs Ferret "on the same PGM as Flock"
(section 6.1): the algorithm exhaustively scores every hypothesis with
at most ``K`` concurrent failures and returns the maximum-likelihood
one.  That is ``O(n^K)`` hypotheses; Sherlock prices each one by
updating only the flows the flipped links intersect, giving
``O(n^K D T)`` overall (section 4.1 / appendix C).

Algorithm 3 of the paper shows JLE shaving another factor of ``n``: a
recursion carries a Δ array that prices all ``n`` single-link
extensions of the current branch at once, so flips are only needed down
to depth ``K-1`` - the bottom level is read straight out of the array.
That is ``O(n^(K-1))`` flips at ``O(D T)`` each.  Flips are involutive
in both JLE engines, so the recursion explores by flip/descend/unflip
without copying state.

Both variants accept ``engine="fast"`` (vectorized substrate, default)
or ``engine="reference"`` (pure-Python dict engines), matching Flock's
two engines so runtime comparisons share constant factors.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InferenceError
from ..types import Prediction
from ..core.kernels import resolve_backend
from ..core.flock_fast import (
    VectorArrays,
    VectorJleState,
    addition_upper_bounds,
)
from ..core.jle import JleState
from ..core.model import LikelihoodModel
from ..core.params import DEFAULT_PER_PACKET, FlockParams
from ..core.problem import InferenceProblem

_ENGINES = ("fast", "reference")


class SherlockFerret:
    """Exhaustive <=K-failure MLE search (optionally JLE-accelerated).

    Parameters
    ----------
    params:
        PGM hyperparameters (shared with Flock).
    max_failures:
        ``K``; Sherlock "can not detect K > 2 failures" in practice but
        the implementation accepts any K.
    use_jle:
        When True, run Algorithm 3 (JLE-accelerated recursion); when
        False, price every hypothesis individually.
    candidates:
        Optional restriction of the component universe (used by tests;
        experiments use every observed component, as Sherlock would).
    """

    name = "sherlock"

    def __init__(
        self,
        params: FlockParams = DEFAULT_PER_PACKET,
        max_failures: int = 2,
        use_jle: bool = False,
        engine: str = "fast",
        candidates: Optional[Sequence[int]] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        if max_failures < 1:
            raise InferenceError("max_failures must be >= 1")
        if engine not in _ENGINES:
            raise InferenceError(f"engine must be one of {_ENGINES}")
        self._params = params
        self._k = max_failures
        self._use_jle = use_jle
        self._engine = engine
        self._candidates = tuple(candidates) if candidates is not None else None
        if kernel_backend is not None:
            resolve_backend(kernel_backend)
        self._kernel_backend = kernel_backend

    def _candidate_list(self, problem: InferenceProblem) -> Tuple[int, ...]:
        if self._candidates is not None:
            return self._candidates
        return tuple(problem.observed_components)

    def localize(self, problem: InferenceProblem) -> Prediction:
        candidates = self._candidate_list(problem)
        if not candidates:
            return Prediction.empty()
        if self._use_jle:
            return self._localize_jle(problem, candidates)
        return self._localize_plain(problem, candidates)

    # ------------------------------------------------------------------
    # Plain Ferret: price every hypothesis independently.
    # ------------------------------------------------------------------
    def _localize_plain(
        self, problem: InferenceProblem, candidates: Tuple[int, ...]
    ) -> Prediction:
        if self._engine == "fast":
            arrays = VectorArrays(problem, self._params, self._kernel_backend)
            price = arrays.hypothesis_ll
        else:
            model = LikelihoodModel(problem, self._params)
            price = model.log_likelihood
        best_h: Tuple[int, ...] = ()
        best_ll = 0.0  # the empty hypothesis scores 0 by normalization
        scanned = 1
        for size in range(1, self._k + 1):
            for hypothesis in combinations(candidates, size):
                scanned += 1
                ll = price(hypothesis)
                if ll > best_ll:
                    best_ll = ll
                    best_h = hypothesis
        return Prediction(
            components=frozenset(best_h),
            log_likelihood=best_ll,
            hypotheses_scanned=scanned,
        )

    # ------------------------------------------------------------------
    # Algorithm 3: ExploreBranch with a JLE Δ array.
    # ------------------------------------------------------------------
    def _localize_jle(
        self, problem: InferenceProblem, candidates: Tuple[int, ...]
    ) -> Prediction:
        if self._engine == "fast":
            state = VectorJleState(problem, self._params, self._kernel_backend)
        else:
            state = JleState(problem, self._params)
        cand = np.asarray(candidates, dtype=np.int64)
        best_h: List[Tuple[int, ...]] = [()]
        best_ll = [0.0]
        scanned = [1]

        # Branch-and-bound pruning on the shared upper-bound array:
        # adding comp to *any* hypothesis gains at most ub[comp] (data
        # bound max(0, s) per flow, plus the prior and a float-rounding
        # slack), so a branch whose optimistic extension cannot strictly
        # beat the incumbent is skipped without flipping.
        ubpos = np.maximum(addition_upper_bounds(problem, self._params), 0.0)
        ubpos_cand = ubpos[cand]
        suffix_max = np.zeros(len(cand) + 1)
        if len(cand):
            suffix_max[:-1] = np.maximum.accumulate(ubpos_cand[::-1])[::-1]

        def consider_leaves(start: int) -> None:
            """Price all extensions H + {cand[i]}, i >= start, via Δ."""
            remaining = cand[start:]
            if len(remaining) == 0:
                return
            if state.ll + suffix_max[start] <= best_ll[0]:
                return
            gains = state.addition_gains(remaining)
            scanned[0] += len(remaining)
            idx = int(np.argmax(gains))
            leaf_ll = state.ll + float(gains[idx])
            if leaf_ll > best_ll[0]:
                best_ll[0] = leaf_ll
                best_h[0] = tuple(sorted(state.hypothesis)) + (
                    int(remaining[idx]),
                )

        def explore(start: int) -> None:
            if state.ll > best_ll[0]:
                best_ll[0] = state.ll
                best_h[0] = tuple(sorted(state.hypothesis))
            if len(state.hypothesis) == self._k - 1:
                # The Δ array already prices every leaf below this
                # branch - no flips needed at the bottom level.
                consider_leaves(start)
                return
            budget = self._k - len(state.hypothesis)
            for i in range(start, len(cand)):
                if state.ll + budget * suffix_max[i] <= best_ll[0]:
                    # suffix_max is non-increasing, so no later branch
                    # of this loop can improve either.
                    break
                if (
                    state.ll + ubpos_cand[i] + (budget - 1) * suffix_max[i + 1]
                    <= best_ll[0]
                ):
                    continue
                comp = int(cand[i])
                scanned[0] += 1
                state.flip(comp)
                explore(i + 1)
                state.flip(comp)

        explore(0)
        return Prediction(
            components=frozenset(best_h[0]),
            log_likelihood=float(best_ll[0]),
            hypotheses_scanned=scanned[0],
        )
