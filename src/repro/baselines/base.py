"""Shared helpers for the non-PGM baselines.

007 and NetBouncer operate on exact-path flows only; this module gives
them a small, uniform view of those flows so each algorithm file stays
focused on its own math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..core.problem import InferenceProblem, _expand_slices


@dataclass(frozen=True)
class ExactFlow:
    """One exact-path (grouped) flow: its components and counters."""

    components: Tuple[int, ...]
    bad_packets: int
    packets_sent: int
    weight: int


def exact_flow_components(
    problem: InferenceProblem,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Columnar exact-flow view: (flow indices, comps, offsets).

    ``comps[off[i]:off[i+1]]`` holds the i-th exact flow's *full*
    sorted component ids, assembled straight from the problem CSRs
    (per-set endpoint comps merged with the single member path) - no
    object views, so compressed problems never expand.
    """
    flows = problem.exact_flow_indices()
    if len(flows) == 0:
        return flows, np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    sets = problem._set_of_flow[flows]
    isets = problem._iset_of_set[sets]
    pids = problem._iset_raw_pids[problem._iset_raw_off[isets]]
    e_lens = np.diff(problem._set_eoff)[sets]
    p_lens = np.diff(problem.path_off)[pids]
    lens = e_lens + p_lens
    off = np.zeros(len(flows) + 1, dtype=np.int64)
    np.cumsum(lens, out=off[1:])
    n = np.int64(problem.n_components)
    local = np.arange(len(flows), dtype=np.int64)
    keys = np.concatenate([
        np.repeat(local, e_lens) * n
        + problem._set_ecomps[_expand_slices(problem._set_eoff[sets], e_lens)],
        np.repeat(local, p_lens) * n
        + problem.path_comps[_expand_slices(problem.path_off[pids], p_lens)],
    ])
    # Endpoint and interior comps are disjoint per flow, so the sort
    # yields each flow's full sorted projection.
    keys.sort()
    return flows, keys % n, off


def exact_flow_view(problem: InferenceProblem) -> Iterator[ExactFlow]:
    """Iterate the exact-path flows of a problem as :class:`ExactFlow`."""
    flows, comps, off = exact_flow_components(problem)
    comps_list = comps.tolist()
    for i, flow in enumerate(flows.tolist()):
        yield ExactFlow(
            components=tuple(comps_list[off[i]:off[i + 1]]),
            bad_packets=int(problem.bad_packets[flow]),
            packets_sent=int(problem.packets_sent[flow]),
            weight=int(problem.weights[flow]),
        )
