"""Shared helpers for the non-PGM baselines.

007 and NetBouncer operate on exact-path flows only; this module gives
them a small, uniform view of those flows so each algorithm file stays
focused on its own math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..core.problem import InferenceProblem


@dataclass(frozen=True)
class ExactFlow:
    """One exact-path (grouped) flow: its components and counters."""

    components: Tuple[int, ...]
    bad_packets: int
    packets_sent: int
    weight: int


def exact_flow_view(problem: InferenceProblem) -> Iterator[ExactFlow]:
    """Iterate the exact-path flows of a problem as :class:`ExactFlow`."""
    for flow in problem.exact_flow_indices():
        pid = problem.flow_paths[flow][0]
        yield ExactFlow(
            components=problem.path_table.components(pid),
            bad_packets=int(problem.bad_packets[flow]),
            packets_sent=int(problem.packets_sent[flow]),
            weight=int(problem.weights[flow]),
        )
