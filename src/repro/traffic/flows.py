"""Flow generation: sizes and specs.

Section 6.3: "Flow sizes were drawn from a Pareto distribution (mean:
200KB, scale: 1.05) to mimic irregular flow sizes in a typical
datacenter."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import TrafficError
from ..routing.ecmp import EcmpRouting
from .matrix import TrafficMatrix

MSS_BYTES = 1500


@dataclass(frozen=True)
class FlowSpec:
    """A flow to be simulated: endpoints, size, and its ECMP path set.

    The simulator will pick the actual path uniformly from ``paths``
    (the ECMP model of paper Eq. 1) and draw packet drops.
    """

    src: int
    dst: int
    packets: int
    paths: Tuple[Tuple[int, ...], ...]
    is_probe: bool = False

    def __post_init__(self) -> None:
        if self.packets < 1:
            raise TrafficError("a flow must send at least one packet")
        if not self.paths:
            raise TrafficError("a flow needs a non-empty path set")


def pareto_flow_packets(
    rng: np.random.Generator,
    n: int,
    mean_bytes: float = 200_000.0,
    shape: float = 1.05,
    max_packets: int = 100_000,
) -> np.ndarray:
    """Sample flow sizes in packets from the paper's Pareto distribution.

    A Pareto with shape ``a`` and scale ``m`` has mean ``a*m/(a-1)``;
    we solve for ``m`` from the requested mean.  Sizes convert to packets
    at ``MSS_BYTES`` per packet and are clipped to ``[1, max_packets]``
    (the heavy 1.05 tail would otherwise occasionally produce flows
    larger than the rest of the trace combined).
    """
    if shape <= 1.0:
        raise TrafficError("pareto shape must be > 1 for a finite mean")
    if mean_bytes <= 0:
        raise TrafficError("mean_bytes must be positive")
    scale = mean_bytes * (shape - 1.0) / shape
    sizes_bytes = scale * (1.0 + rng.pareto(shape, size=n))
    packets = np.ceil(sizes_bytes / MSS_BYTES).astype(np.int64)
    return np.clip(packets, 1, max_packets)


def generate_passive_flows(
    routing: EcmpRouting,
    matrix: TrafficMatrix,
    n_flows: int,
    rng: np.random.Generator,
    mean_bytes: float = 200_000.0,
    shape: float = 1.05,
    fixed_packets: Optional[int] = None,
) -> List[FlowSpec]:
    """Generate application flows with ECMP path sets.

    ``fixed_packets`` overrides the Pareto size (used by the per-flow
    latency analysis where each flow is a single observation).
    """
    if n_flows < 0:
        raise TrafficError("n_flows must be non-negative")
    pairs = matrix.sample_pairs(n_flows, rng)
    if fixed_packets is not None:
        packets = np.full(n_flows, fixed_packets, dtype=np.int64)
    else:
        packets = pareto_flow_packets(rng, n_flows, mean_bytes, shape)
    specs: List[FlowSpec] = []
    for (src, dst), size in zip(pairs, packets.tolist()):
        paths = routing.host_paths(src, dst)
        specs.append(FlowSpec(src=src, dst=dst, packets=size, paths=paths))
    return specs
