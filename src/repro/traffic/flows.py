"""Flow generation: sizes and specs.

Section 6.3: "Flow sizes were drawn from a Pareto distribution (mean:
200KB, scale: 1.05) to mimic irregular flow sizes in a typical
datacenter."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import TrafficError
from ..routing.ecmp import EcmpRouting
from ..routing.paths import PathSpace
from .matrix import TrafficMatrix

MSS_BYTES = 1500


@dataclass(frozen=True)
class FlowSpec:
    """A flow to be simulated: endpoints, size, and its ECMP path set.

    The simulator will pick the actual path uniformly from ``paths``
    (the ECMP model of paper Eq. 1) and draw packet drops.
    """

    src: int
    dst: int
    packets: int
    paths: Tuple[Tuple[int, ...], ...]
    is_probe: bool = False

    def __post_init__(self) -> None:
        if self.packets < 1:
            raise TrafficError("a flow must send at least one packet")
        if not self.paths:
            raise TrafficError("a flow needs a non-empty path set")


@dataclass
class SpecBatch:
    """Struct-of-arrays flow specs: the columnar twin of a
    ``List[FlowSpec]``.

    ``path_set`` holds each flow's interned ECMP candidate-set id
    (resolved against ``space``); the simulator picks the actual path
    per flow from it.  Batches concatenate (passive flows + probes)
    with :meth:`concat`, preserving order.
    """

    space: PathSpace
    src: np.ndarray
    dst: np.ndarray
    packets: np.ndarray
    path_set: np.ndarray
    is_probe: np.ndarray

    def __len__(self) -> int:
        return len(self.src)

    @staticmethod
    def empty(space: PathSpace) -> "SpecBatch":
        zero = np.empty(0, dtype=np.int64)
        return SpecBatch(
            space=space, src=zero, dst=zero.copy(), packets=zero.copy(),
            path_set=zero.copy(), is_probe=np.empty(0, dtype=bool),
        )

    @staticmethod
    def concat(batches: List["SpecBatch"]) -> "SpecBatch":
        if not batches:
            raise TrafficError("cannot concatenate zero spec batches")
        space = batches[0].space
        for other in batches[1:]:
            if other.space is not space:
                raise TrafficError(
                    "spec batches must share one PathSpace to concatenate"
                )
        return SpecBatch(
            space=space,
            src=np.concatenate([b.src for b in batches]),
            dst=np.concatenate([b.dst for b in batches]),
            packets=np.concatenate([b.packets for b in batches]),
            path_set=np.concatenate([b.path_set for b in batches]),
            is_probe=np.concatenate([b.is_probe for b in batches]),
        )

    @staticmethod
    def from_specs(specs, space: PathSpace) -> "SpecBatch":
        """Columnarize object specs (the object-API adapter)."""
        n = len(specs)
        return SpecBatch(
            space=space,
            src=np.fromiter((s.src for s in specs), dtype=np.int64, count=n),
            dst=np.fromiter((s.dst for s in specs), dtype=np.int64, count=n),
            packets=np.fromiter(
                (s.packets for s in specs), dtype=np.int64, count=n
            ),
            path_set=np.fromiter(
                (space.intern_set(s.paths) for s in specs),
                dtype=np.int64,
                count=n,
            ),
            is_probe=np.fromiter(
                (s.is_probe for s in specs), dtype=bool, count=n
            ),
        )

    def specs(self) -> List[FlowSpec]:
        """Materialize object specs (legacy consumers and tests)."""
        path_nodes = self.space.path_nodes
        set_path_ids = self.space.set_path_ids
        out: List[FlowSpec] = []
        for src, dst, packets, sid, probe in zip(
            self.src.tolist(), self.dst.tolist(), self.packets.tolist(),
            self.path_set.tolist(), self.is_probe.tolist(),
        ):
            paths = tuple(path_nodes(int(p)) for p in set_path_ids(sid))
            out.append(
                FlowSpec(src=src, dst=dst, packets=packets, paths=paths,
                         is_probe=bool(probe))
            )
        return out


def pareto_flow_packets(
    rng: np.random.Generator,
    n: int,
    mean_bytes: float = 200_000.0,
    shape: float = 1.05,
    max_packets: int = 100_000,
) -> np.ndarray:
    """Sample flow sizes in packets from the paper's Pareto distribution.

    A Pareto with shape ``a`` and scale ``m`` has mean ``a*m/(a-1)``;
    we solve for ``m`` from the requested mean.  Sizes convert to packets
    at ``MSS_BYTES`` per packet and are clipped to ``[1, max_packets]``
    (the heavy 1.05 tail would otherwise occasionally produce flows
    larger than the rest of the trace combined).
    """
    if shape <= 1.0:
        raise TrafficError("pareto shape must be > 1 for a finite mean")
    if mean_bytes <= 0:
        raise TrafficError("mean_bytes must be positive")
    scale = mean_bytes * (shape - 1.0) / shape
    sizes_bytes = scale * (1.0 + rng.pareto(shape, size=n))
    packets = np.ceil(sizes_bytes / MSS_BYTES).astype(np.int64)
    return np.clip(packets, 1, max_packets)


def generate_passive_flows(
    routing: EcmpRouting,
    matrix: TrafficMatrix,
    n_flows: int,
    rng: np.random.Generator,
    mean_bytes: float = 200_000.0,
    shape: float = 1.05,
    fixed_packets: Optional[int] = None,
) -> List[FlowSpec]:
    """Generate application flows with ECMP path sets.

    ``fixed_packets`` overrides the Pareto size (used by the per-flow
    latency analysis where each flow is a single observation).
    """
    if n_flows < 0:
        raise TrafficError("n_flows must be non-negative")
    pairs = matrix.sample_pairs(n_flows, rng)
    if fixed_packets is not None:
        packets = np.full(n_flows, fixed_packets, dtype=np.int64)
    else:
        packets = pareto_flow_packets(rng, n_flows, mean_bytes, shape)
    specs: List[FlowSpec] = []
    for (src, dst), size in zip(pairs, packets.tolist()):
        paths = routing.host_paths(src, dst)
        specs.append(FlowSpec(src=src, dst=dst, packets=size, paths=paths))
    return specs


def generate_passive_flow_batch(
    routing: EcmpRouting,
    matrix: TrafficMatrix,
    n_flows: int,
    rng: np.random.Generator,
    space: PathSpace,
    mean_bytes: float = 200_000.0,
    shape: float = 1.05,
    fixed_packets: Optional[int] = None,
) -> SpecBatch:
    """Columnar :func:`generate_passive_flows`: identical RNG draws,
    but path sets are resolved once per distinct host pair and flows
    land in aligned arrays instead of per-flow objects."""
    if n_flows < 0:
        raise TrafficError("n_flows must be non-negative")
    src, dst = matrix.sample_pair_arrays(n_flows, rng)
    if fixed_packets is not None:
        packets = np.full(n_flows, fixed_packets, dtype=np.int64)
    else:
        packets = pareto_flow_packets(rng, n_flows, mean_bytes, shape)
    if n_flows == 0:
        return SpecBatch.empty(space)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    return SpecBatch(
        space=space,
        src=src,
        dst=dst,
        packets=packets,
        path_set=space.pair_sets(src, dst),
        is_probe=np.zeros(n_flows, dtype=bool),
    )
