"""Active probe plans.

A1 (section 6.2): "Active probes between end-hosts and the core switches
with known paths, as designed for NetBouncer."  Each probe targets one
core switch via one specific up-path (probes pin their path, so the
observation is exact), and the plan cycles hosts x cores x ECMP choices
so that every link receives probe coverage - NetBouncer's "probes
uniformly from hosts to core switches".

A2 flagging (007-style) happens after simulation, in
:mod:`repro.telemetry.inputs`, because it depends on which passive flows
saw retransmissions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import TrafficError
from ..routing.ecmp import EcmpRouting
from ..routing.paths import PathSpace
from ..topology.base import Topology
from .flows import FlowSpec, SpecBatch


def a1_probe_plan(
    topology: Topology,
    routing: EcmpRouting,
    n_probes: int,
    rng: np.random.Generator,
    packets_per_probe: int = 40,
    hosts: Optional[List[int]] = None,
) -> List[FlowSpec]:
    """Generate ``n_probes`` host->core probe flows with pinned paths.

    The plan enumerates (host, core) pairs round-robin, shuffled once so
    truncated plans still cover the fabric evenly, and rotates through
    each pair's ECMP up-paths deterministically.  Probe volume in the
    paper is "40 packets per second" per probe flow; ``packets_per_probe``
    sets the per-report packet count.
    """
    if n_probes < 0:
        raise TrafficError("n_probes must be non-negative")
    if packets_per_probe < 1:
        raise TrafficError("packets_per_probe must be >= 1")
    probe_hosts = list(hosts) if hosts is not None else list(topology.hosts)
    cores = list(topology.cores)
    if not probe_hosts or not cores:
        raise TrafficError("A1 probing needs at least one host and one core")

    pairs = [(h, c) for h in probe_hosts for c in cores]
    order = rng.permutation(len(pairs))
    rotation: dict = {}
    specs: List[FlowSpec] = []
    i = 0
    while len(specs) < n_probes:
        host, core = pairs[order[i % len(pairs)]]
        i += 1
        paths = routing.probe_paths(host, core)
        turn = rotation.get((host, core), 0)
        rotation[(host, core)] = turn + 1
        pinned = paths[turn % len(paths)]
        specs.append(
            FlowSpec(
                src=host,
                dst=core,
                packets=packets_per_probe,
                paths=(pinned,),
                is_probe=True,
            )
        )
    return specs


def a1_probe_batch(
    topology: Topology,
    routing: EcmpRouting,
    n_probes: int,
    rng: np.random.Generator,
    space: PathSpace,
    packets_per_probe: int = 40,
    hosts: Optional[List[int]] = None,
) -> SpecBatch:
    """Columnar :func:`a1_probe_plan`: identical plan and RNG draws.

    The round-robin arithmetic is closed-form - probe ``i`` uses pair
    ``order[i % P]`` on ECMP rotation turn ``i // P`` - so the plan
    vectorizes: pinned paths are interned once per distinct
    (pair, rotation) combination instead of per probe.
    """
    if n_probes < 0:
        raise TrafficError("n_probes must be non-negative")
    if packets_per_probe < 1:
        raise TrafficError("packets_per_probe must be >= 1")
    probe_hosts = list(hosts) if hosts is not None else list(topology.hosts)
    cores = list(topology.cores)
    if not probe_hosts or not cores:
        raise TrafficError("A1 probing needs at least one host and one core")
    if n_probes == 0:
        return SpecBatch.empty(space)

    pairs = [(h, c) for h in probe_hosts for c in cores]
    order = rng.permutation(len(pairs))
    idx = np.arange(n_probes, dtype=np.int64)
    pair_idx = order[idx % len(pairs)]
    turn = idx // len(pairs)

    # Enumerate ECMP fan-outs only for pairs the plan actually hits
    # (a short plan on a large fabric touches few), like the object
    # pipeline; unused entries stay 1 and are never indexed.
    n_paths = np.ones(len(pairs), dtype=np.int64)
    for i in np.unique(pair_idx).tolist():
        n_paths[i] = len(routing.probe_paths(*pairs[i]))
    choice = turn % n_paths[pair_idx]
    combo = pair_idx * np.int64(int(n_paths.max())) + choice
    uniq, inverse = np.unique(combo, return_inverse=True)
    width = int(n_paths.max())

    def pinned_sid(key: int) -> int:
        host, core = pairs[key // width]
        return space.intern_set((routing.probe_paths(host, core)[key % width],))

    sids = np.fromiter(
        (pinned_sid(int(key)) for key in uniq), dtype=np.int64, count=len(uniq)
    )
    pairs_arr = np.asarray(pairs, dtype=np.int64)
    return SpecBatch(
        space=space,
        src=pairs_arr[pair_idx, 0],
        dst=pairs_arr[pair_idx, 1],
        packets=np.full(n_probes, packets_per_probe, dtype=np.int64),
        path_set=sids[inverse],
        is_probe=np.ones(n_probes, dtype=bool),
    )


def probes_per_link_coverage(topology: Topology, specs: List[FlowSpec]) -> float:
    """Fraction of switch-switch links covered by at least one probe.

    A sanity metric for probe plans: NetBouncer's inference needs every
    link probed, otherwise uncovered links are unobservable.
    """
    covered = set()
    for spec in specs:
        for path in spec.paths:
            for u, v in zip(path, path[1:]):
                covered.add(topology.link_id(u, v))
    fabric = set(topology.switch_switch_links())
    if not fabric:
        return 1.0
    return len(covered & fabric) / len(fabric)
