"""Active probe plans.

A1 (section 6.2): "Active probes between end-hosts and the core switches
with known paths, as designed for NetBouncer."  Each probe targets one
core switch via one specific up-path (probes pin their path, so the
observation is exact), and the plan cycles hosts x cores x ECMP choices
so that every link receives probe coverage - NetBouncer's "probes
uniformly from hosts to core switches".

A2 flagging (007-style) happens after simulation, in
:mod:`repro.telemetry.inputs`, because it depends on which passive flows
saw retransmissions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import TrafficError
from ..routing.ecmp import EcmpRouting
from ..topology.base import Topology
from .flows import FlowSpec


def a1_probe_plan(
    topology: Topology,
    routing: EcmpRouting,
    n_probes: int,
    rng: np.random.Generator,
    packets_per_probe: int = 40,
    hosts: Optional[List[int]] = None,
) -> List[FlowSpec]:
    """Generate ``n_probes`` host->core probe flows with pinned paths.

    The plan enumerates (host, core) pairs round-robin, shuffled once so
    truncated plans still cover the fabric evenly, and rotates through
    each pair's ECMP up-paths deterministically.  Probe volume in the
    paper is "40 packets per second" per probe flow; ``packets_per_probe``
    sets the per-report packet count.
    """
    if n_probes < 0:
        raise TrafficError("n_probes must be non-negative")
    if packets_per_probe < 1:
        raise TrafficError("packets_per_probe must be >= 1")
    probe_hosts = list(hosts) if hosts is not None else list(topology.hosts)
    cores = list(topology.cores)
    if not probe_hosts or not cores:
        raise TrafficError("A1 probing needs at least one host and one core")

    pairs = [(h, c) for h in probe_hosts for c in cores]
    order = rng.permutation(len(pairs))
    rotation: dict = {}
    specs: List[FlowSpec] = []
    i = 0
    while len(specs) < n_probes:
        host, core = pairs[order[i % len(pairs)]]
        i += 1
        paths = routing.probe_paths(host, core)
        turn = rotation.get((host, core), 0)
        rotation[(host, core)] = turn + 1
        pinned = paths[turn % len(paths)]
        specs.append(
            FlowSpec(
                src=host,
                dst=core,
                packets=packets_per_probe,
                paths=(pinned,),
                is_probe=True,
            )
        )
    return specs


def probes_per_link_coverage(topology: Topology, specs: List[FlowSpec]) -> float:
    """Fraction of switch-switch links covered by at least one probe.

    A sanity metric for probe plans: NetBouncer's inference needs every
    link probed, otherwise uncovered links are unobservable.
    """
    covered = set()
    for spec in specs:
        for path in spec.paths:
            for u, v in zip(path, path[1:]):
                covered.add(topology.link_id(u, v))
    fabric = set(topology.switch_switch_links())
    if not fabric:
        return 1.0
    return len(covered & fabric) / len(fabric)
