"""Traffic matrices: which host pairs talk.

Section 6.3: "half the traces used uniform random traffic and the other
half used a skewed traffic pattern where 50% of the traffic is
concentrated among 5% of the racks, randomly chosen."
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import TrafficError
from ..topology.base import Topology


class TrafficMatrix:
    """Base class: a sampler of (src_host, dst_host) pairs.

    Subclasses implement :meth:`sample_pair_arrays` (the columnar form
    the batch pipeline consumes); :meth:`sample_pairs` is the
    object-API adapter and draws the identical RNG stream.
    """

    def sample_pair_arrays(
        self, n: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def sample_pairs(self, n: int, rng: np.random.Generator) -> List[Tuple[int, int]]:
        src, dst = self.sample_pair_arrays(n, rng)
        return list(zip(src.tolist(), dst.tolist()))


class UniformTraffic(TrafficMatrix):
    """Source and destination hosts chosen uniformly at random."""

    def __init__(self, topology: Topology) -> None:
        if len(topology.hosts) < 2:
            raise TrafficError("uniform traffic needs at least two hosts")
        self._hosts = np.asarray(topology.hosts, dtype=np.int64)

    def sample_pair_arrays(
        self, n: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        src = self._hosts[rng.integers(0, len(self._hosts), size=n)]
        dst = self._hosts[rng.integers(0, len(self._hosts), size=n)]
        clash = src == dst
        while np.any(clash):
            dst[clash] = self._hosts[rng.integers(0, len(self._hosts), size=int(clash.sum()))]
            clash = src == dst
        return src, dst


class SkewedTraffic(TrafficMatrix):
    """Rack-level hotspot traffic (paper's skewed pattern).

    With probability ``hot_traffic_fraction`` a flow has both endpoints
    among the hosts of the hot racks (``hot_rack_fraction`` of all racks,
    chosen once per matrix); otherwise both endpoints are uniform over
    all hosts.
    """

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        hot_rack_fraction: float = 0.05,
        hot_traffic_fraction: float = 0.5,
    ) -> None:
        if not 0.0 < hot_rack_fraction <= 1.0:
            raise TrafficError("hot_rack_fraction must be in (0, 1]")
        if not 0.0 <= hot_traffic_fraction <= 1.0:
            raise TrafficError("hot_traffic_fraction must be in [0, 1]")
        if len(topology.hosts) < 2:
            raise TrafficError("skewed traffic needs at least two hosts")
        racks = list(topology.racks)
        n_hot = max(1, int(round(hot_rack_fraction * len(racks))))
        # At least two hot racks whenever possible, so hot flows can cross
        # the fabric rather than staying rack-local.
        n_hot = min(len(racks), max(n_hot, 2))
        hot_racks = rng.choice(len(racks), size=n_hot, replace=False)
        hot_hosts: List[int] = []
        for idx in hot_racks:
            hot_hosts.extend(topology.hosts_in_rack(racks[idx]))
        if len(hot_hosts) < 2:
            raise TrafficError("hot racks contain fewer than two hosts")
        self._hot_hosts = np.asarray(sorted(hot_hosts), dtype=np.int64)
        self._all_hosts = np.asarray(topology.hosts, dtype=np.int64)
        self._hot_fraction = hot_traffic_fraction
        self.hot_racks: Tuple[int, ...] = tuple(sorted(racks[i] for i in hot_racks))

    def sample_pair_arrays(
        self, n: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        hot = rng.random(n) < self._hot_fraction
        pool_sizes = np.where(hot, len(self._hot_hosts), len(self._all_hosts))
        src_idx = (rng.random(n) * pool_sizes).astype(np.int64)
        dst_idx = (rng.random(n) * pool_sizes).astype(np.int64)
        src = np.where(hot, self._hot_hosts[src_idx % len(self._hot_hosts)],
                       self._all_hosts[src_idx % len(self._all_hosts)])
        dst = np.where(hot, self._hot_hosts[dst_idx % len(self._hot_hosts)],
                       self._all_hosts[dst_idx % len(self._all_hosts)])
        clash = src == dst
        while np.any(clash):
            n_clash = int(clash.sum())
            redraw = (rng.random(n_clash) * pool_sizes[clash]).astype(np.int64)
            hot_clash = hot[clash]
            new_dst = np.where(
                hot_clash,
                self._hot_hosts[redraw % len(self._hot_hosts)],
                self._all_hosts[redraw % len(self._all_hosts)],
            )
            dst[clash] = new_dst
            clash = src == dst
        return src, dst
