"""Traffic substrate: matrices, flow specs, and active probe plans."""

from .flows import (
    FlowSpec,
    SpecBatch,
    generate_passive_flow_batch,
    generate_passive_flows,
    pareto_flow_packets,
)
from .matrix import SkewedTraffic, TrafficMatrix, UniformTraffic
from .probes import a1_probe_batch, a1_probe_plan, probes_per_link_coverage

__all__ = [
    "FlowSpec",
    "SpecBatch",
    "generate_passive_flows",
    "generate_passive_flow_batch",
    "pareto_flow_packets",
    "TrafficMatrix",
    "UniformTraffic",
    "SkewedTraffic",
    "a1_probe_plan",
    "a1_probe_batch",
    "probes_per_link_coverage",
]
