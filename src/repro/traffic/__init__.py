"""Traffic substrate: matrices, flow specs, and active probe plans."""

from .flows import FlowSpec, generate_passive_flows, pareto_flow_packets
from .matrix import SkewedTraffic, TrafficMatrix, UniformTraffic
from .probes import a1_probe_plan, probes_per_link_coverage

__all__ = [
    "FlowSpec",
    "generate_passive_flows",
    "pareto_flow_packets",
    "TrafficMatrix",
    "UniformTraffic",
    "SkewedTraffic",
    "a1_probe_plan",
    "probes_per_link_coverage",
]
