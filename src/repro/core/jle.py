"""Joint Likelihood Exploration (JLE) - reference engine.

This is a direct, readable implementation of the paper's Algorithm 2.
:class:`JleState` maintains, for a current hypothesis ``H``:

* per-path failed-component counts (``path_nfailed``),
* per-flow failed-path counts (``flow_b``),
* the Δ array: for every component ``l`` not in ``H``,
  ``Δ[l] = LL(H ∪ {l}) − LL(H)`` (data term only; priors are added by
  :meth:`gain`).

Flipping a component updates all of these by touching only the flows
that intersect the flipped component (Theorem 1 of the paper): for each
such flow the engine recomputes the Algorithm-2 counters
``(paths_failed, good-path counts per component)`` before and after the
flip and applies the difference-of-differences update (Eq. 2).

Flips are involutive: ``flip(c); flip(c)`` restores the exact state,
which is what lets Sherlock's JLE-accelerated recursion (Algorithm 3)
explore without snapshotting.

The vectorized twin of this engine lives in
:mod:`repro.core.flock_fast`; property tests assert they agree.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from ..errors import InferenceError
from .model import evidence_scores, normalized_flow_ll
from .params import FlockParams
from .problem import InferenceProblem


class JleState:
    """Incrementally-maintained hypothesis state with a JLE Δ array."""

    def __init__(self, problem: InferenceProblem, params: FlockParams) -> None:
        self._problem = problem
        self._params = params
        self._scores = evidence_scores(
            problem.bad_packets, problem.packets_sent, params
        )
        self._w: List[int] = [len(fp) for fp in problem.flow_paths]
        self._weights = problem.weights
        self.path_nfailed: List[int] = [0] * problem.n_paths
        self.flow_b: List[int] = [0] * problem.n_flows
        self.hypothesis: Set[int] = set()
        self.ll: float = 0.0
        self.flips: int = 0
        self.delta = np.zeros(problem.n_components)
        self._prior_gain = np.empty(problem.n_components)
        link_gain = params.link_prior_gain
        device_gain = params.device_prior_gain
        self._prior_gain[: problem.n_links] = link_gain
        self._prior_gain[problem.n_links:] = device_gain
        self._compute_initial_delta()

    @property
    def problem(self) -> InferenceProblem:
        return self._problem

    @property
    def params(self) -> FlockParams:
        return self._params

    @property
    def hypotheses_scanned(self) -> int:
        """Neighbor hypotheses whose likelihood the Δ array exposes.

        Each Δ array state prices all ``n`` single-flip neighbors of the
        current hypothesis, so a run that performed ``flips`` flips has
        effectively scanned ``(flips + 1) * n`` hypotheses.
        """
        return (self.flips + 1) * self._problem.n_components

    # ------------------------------------------------------------------
    # Δ array construction (ComputeInitialDelta of Algorithm 2)
    # ------------------------------------------------------------------
    def _compute_initial_delta(self) -> None:
        problem = self._problem
        nll = normalized_flow_ll
        for flow, path_ids in enumerate(problem.flow_paths):
            counts: Dict[int, int] = {}
            for pid in path_ids:
                for comp in problem.path_table.components(pid):
                    counts[comp] = counts.get(comp, 0) + 1
            s = float(self._scores[flow])
            w = self._w[flow]
            wt = float(self._weights[flow])
            for comp, cnt in counts.items():
                self.delta[comp] += wt * nll(cnt, w, s)

    # ------------------------------------------------------------------
    # Gains
    # ------------------------------------------------------------------
    def gain(self, comp: int) -> float:
        """Posterior log-gain of flipping ``comp`` (data Δ + prior)."""
        if comp in self.hypothesis:
            return self.removal_delta(comp) - float(self._prior_gain[comp])
        return float(self.delta[comp] + self._prior_gain[comp])

    def addition_gains(self, candidates: np.ndarray) -> np.ndarray:
        """Vector of gains for adding each candidate (members masked -inf)."""
        gains = self.delta[candidates] + self._prior_gain[candidates]
        if self.hypothesis:
            member = np.fromiter(
                (c in self.hypothesis for c in candidates),
                dtype=bool,
                count=len(candidates),
            )
            gains[member] = -np.inf
        return gains

    def removal_delta(self, comp: int) -> float:
        """Data-term Δ of removing a hypothesis member, computed directly.

        The Δ array holds *addition* gains (Algorithm 2's counters count
        only good paths, so members read as 0); removal gains are cheap
        to compute on demand because only flows intersecting ``comp``
        contribute - the same JLE locality argument.
        """
        if comp not in self.hypothesis:
            raise InferenceError(f"component {comp} is not in the hypothesis")
        problem = self._problem
        nll = normalized_flow_ll
        total = 0.0
        for flow in problem.flows_by_comp.get(comp, ()):
            b_old = self.flow_b[flow]
            b_new = 0
            for pid in problem.flow_paths[flow]:
                nf = self.path_nfailed[pid]
                if comp in problem.path_component_sets[pid]:
                    nf -= 1
                if nf > 0:
                    b_new += 1
            s = float(self._scores[flow])
            w = self._w[flow]
            total += float(self._weights[flow]) * (
                nll(b_new, w, s) - nll(b_old, w, s)
            )
        return total

    # ------------------------------------------------------------------
    # Flip (UpdateDeltaArr of Algorithm 2, generalized to both directions)
    # ------------------------------------------------------------------
    def flip(self, comp: int) -> float:
        """Flip ``comp`` in/out of the hypothesis; returns the LL change."""
        problem = self._problem
        if not 0 <= comp < problem.n_components:
            raise InferenceError(f"component id {comp} out of range")
        adding = comp not in self.hypothesis
        if adding:
            change = float(self.delta[comp] + self._prior_gain[comp])
        else:
            change = self.removal_delta(comp) - float(self._prior_gain[comp])

        nll = normalized_flow_ll
        step = 1 if adding else -1
        new_flow_b: Dict[int, int] = {}
        for flow in problem.flows_by_comp.get(comp, ()):
            b_old = 0
            b_new = 0
            old_counts: Dict[int, int] = {}
            new_counts: Dict[int, int] = {}
            for pid in problem.flow_paths[flow]:
                nf = self.path_nfailed[pid]
                contains = comp in problem.path_component_sets[pid]
                nf_new = nf + step if contains else nf
                failed_old = nf > 0
                failed_new = nf_new > 0
                if failed_old:
                    b_old += 1
                if failed_new:
                    b_new += 1
                comps = problem.path_table.components(pid)
                if not failed_old:
                    for c in comps:
                        old_counts[c] = old_counts.get(c, 0) + 1
                if not failed_new:
                    for c in comps:
                        new_counts[c] = new_counts.get(c, 0) + 1
            s = float(self._scores[flow])
            w = self._w[flow]
            wt = float(self._weights[flow])
            base_old = nll(b_old, w, s)
            base_new = nll(b_new, w, s)
            touched = set(old_counts) | set(new_counts)
            for c in touched:
                d_old = nll(b_old + old_counts.get(c, 0), w, s) - base_old
                d_new = nll(b_new + new_counts.get(c, 0), w, s) - base_new
                self.delta[c] += wt * (d_new - d_old)
            new_flow_b[flow] = b_new

        for pid in problem.paths_by_comp.get(comp, ()):
            self.path_nfailed[pid] += step
        for flow, b in new_flow_b.items():
            self.flow_b[flow] = b
        if adding:
            self.hypothesis.add(comp)
        else:
            self.hypothesis.discard(comp)
        self.ll += change
        self.flips += 1
        return change
