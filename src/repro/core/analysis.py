"""Theory companions: traffic skew, the Theorem 2 condition, and the
Theorem 3 NP-hardness gadget.

* Definition 3: traffic ``T`` is ``eps``-skewed when
  ``T({l1,l2}) / T({l1}) <= eps`` for all link pairs.  Theorem 2: with
  ``(1/alpha)``-skewed traffic, greedy recovers the exact failed set
  when there are at most ``alpha/2`` failures, every link carries enough
  packets, and ``5*pg < pb < 0.05``.
* Theorem 3 reduces minimum vertex cover to adversarial MLE inference;
  :func:`vertex_cover_gadget` builds that instance as a stress test for
  the inference engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import InferenceError
from ..topology.base import Topology
from ..types import FlowObservation, FlowRecord
from .params import FlockParams

# ----------------------------------------------------------------------
# Traffic skew (Definition 3)
# ----------------------------------------------------------------------


def traffic_skew(
    topology: Topology, records: Sequence[FlowRecord]
) -> float:
    """Measured skew ``eps`` of a trace: max over link pairs of
    ``T({l1,l2}) / T({l1})`` using each flow's actual path.

    Returns 0.0 when no two links share a flow (perfectly spread
    traffic).
    """
    single: Dict[int, int] = {}
    pair: Dict[Tuple[int, int], int] = {}
    for record in records:
        links = sorted(
            {topology.link_id(u, v) for u, v in zip(record.path, record.path[1:])}
        )
        t = record.packets_sent
        for link in links:
            single[link] = single.get(link, 0) + t
        for a, b in combinations(links, 2):
            pair[(a, b)] = pair.get((a, b), 0) + t
    eps = 0.0
    for (a, b), t_pair in pair.items():
        eps = max(eps, t_pair / single[a], t_pair / single[b])
    return eps


def max_recoverable_failures(eps: float) -> float:
    """Theorem 2's failure budget ``alpha / 2`` with ``alpha = 1/eps``."""
    if eps <= 0.0:
        return math.inf
    return 1.0 / (2.0 * eps)


@dataclass(frozen=True)
class Theorem2Report:
    """Outcome of checking Theorem 2's sufficient condition on a trace."""

    eps: float
    alpha: float
    n_failures: int
    failures_ok: bool
    hyperparams_ok: bool
    rates_separated: bool
    min_link_packets: int

    @property
    def satisfied(self) -> bool:
        return self.failures_ok and self.hyperparams_ok and self.rates_separated


def check_theorem2(
    topology: Topology,
    records: Sequence[FlowRecord],
    params: FlockParams,
    failed_links: Iterable[int],
    link_drop_rates: Dict[int, float],
    good_rate_bound: float,
) -> Theorem2Report:
    """Evaluate Theorem 2's sufficient condition on a concrete trace.

    ``rates_separated`` checks the drop probabilities are < pg on good
    links and > pb on failed links; ``hyperparams_ok`` checks
    ``5*pg < pb < 0.05``.
    """
    failed = set(failed_links)
    eps = traffic_skew(topology, records)
    alpha = math.inf if eps <= 0 else 1.0 / eps
    budget = max_recoverable_failures(eps)
    hyper_ok = (5.0 * params.pg < params.pb) and (params.pb < 0.05)
    rates_ok = all(
        link_drop_rates.get(link, 0.0) > params.pb for link in failed
    ) and good_rate_bound < params.pg

    per_link: Dict[int, int] = {}
    for record in records:
        for u, v in zip(record.path, record.path[1:]):
            link = topology.link_id(u, v)
            per_link[link] = per_link.get(link, 0) + record.packets_sent
    min_packets = min(per_link.values()) if per_link else 0

    return Theorem2Report(
        eps=eps,
        alpha=alpha,
        n_failures=len(failed),
        failures_ok=len(failed) <= budget,
        hyperparams_ok=hyper_ok,
        rates_separated=rates_ok,
        min_link_packets=min_packets,
    )


# ----------------------------------------------------------------------
# Theorem 3 gadget (NP-hardness of adversarial inference)
# ----------------------------------------------------------------------


def observation_for_score(
    target_s: float, params: FlockParams, path: Tuple[int, ...], max_packets: int = 4096
) -> FlowObservation:
    """Build an exact-path observation whose evidence score approximates
    ``target_s``.

    The evidence score is ``s = r*g + (t-r)*h`` with ``g = ln(pb/pg) > 0``
    and ``h = ln((1-pb)/(1-pg)) < 0``; any target is reachable to within
    one quantum by choosing integer ``(r, t)``.
    """
    g = math.log(params.pb / params.pg)
    h = math.log((1.0 - params.pb) / (1.0 - params.pg))
    best: Tuple[float, int, int] = (math.inf, 0, 1)
    if target_s >= 0:
        for r in range(1, max_packets):
            # choose t - r >= 0 to bring the score near the target
            extra = max(0, int(round((target_s - r * g) / h)))
            s = r * g + extra * h
            err = abs(s - target_s)
            if err < best[0]:
                best = (err, r, r + extra)
            if r * g > target_s + abs(h) * 2 and err > best[0]:
                break
    else:
        for t in range(1, max_packets):
            s = t * h
            err = abs(s - target_s)
            if err < best[0]:
                best = (err, 0, t)
            if s < target_s and err > best[0]:
                break
    _, r, t = best
    return FlowObservation(path_set=(path,), packets_sent=t, bad_packets=r)


def vertex_cover_gadget(
    edges: Sequence[Tuple[int, int]],
    params: FlockParams,
    cost_scale: float = 10.0,
    epsilon: float = 0.05,
) -> Tuple[List[FlowObservation], int]:
    """Build the Theorem 3 reduction instance for a vertex-cover graph.

    Components ``0..n_vertices-1`` are "vertex links".  For each graph
    edge ``(u, v)`` there is an edge-flow traversing ``{u, v}`` whose
    likelihood strongly prefers at least one endpoint failed
    (``1 + alpha_f = 1/C``, i.e. evidence score ``+ln C``); each vertex
    link also carries a link-flow lightly preferring it healthy
    (``1 + alpha_f = 1 + eps``, score ``-ln(1+eps)``).  The MLE is then a
    minimum vertex cover.  Returns (observations, n_components).
    """
    if not edges:
        raise InferenceError("the gadget needs at least one edge")
    n_vertices = max(max(u, v) for u, v in edges) + 1
    observations: List[FlowObservation] = []
    edge_score = math.log(cost_scale)
    link_score = -math.log1p(epsilon)
    for u, v in edges:
        if u == v:
            raise InferenceError("vertex-cover graphs must be simple")
        observations.append(
            observation_for_score(edge_score, params, (min(u, v), max(u, v)))
        )
    for vertex in range(n_vertices):
        observations.append(
            observation_for_score(link_score, params, (vertex,))
        )
    return observations, n_vertices
