"""Sliding-window inference problems for the streaming monitor.

A :class:`WindowedProblem` maintains the inference problem of the last
``window`` telemetry chunks via append + expire instead of re-running
:meth:`InferenceProblem.from_batch` over the whole retained trace each
cycle.  Each appended :class:`~repro.telemetry.inputs.ObservationBatch`
is grouped once (the same packed ``np.unique`` pass ``from_batch``
uses); per cycle only the small per-chunk grouped tables are merged and
handed to :meth:`InferenceProblem._from_grouped`.

Bit-identity with a full rebuild is by construction, not by luck:

* per-chunk tables are first-seen ordered, and chunks concatenate in
  arrival order, so a first-seen merge over the *tables* reproduces the
  first-seen grouping over the raw retained rows exactly - same group
  order, same representative rows, same weights;
* the merged table feeds the same ``_from_grouped`` constructor
  ``from_batch`` itself uses, so every downstream array and prediction
  is identical to a fresh build over the retained flows.

The :class:`WindowUpdate` returned by :meth:`WindowedProblem.append`
carries the flow-index deltas (expired rows against the previous
problem's numbering, appended rows against the new one) that the
warm-started kernels (:meth:`repro.core.flock_fast.VectorJleState
.rebase`) need to rebase their Δ array incrementally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..errors import InferenceError
from ..telemetry.inputs import ObservationBatch
from .problem import (
    InferenceProblem,
    SetStageCache,
    _first_seen_unique_rows,
    _row_group_keys,
)


class _Chunk:
    """One appended chunk: its grouped table and raw observations.

    ``flow_idx`` maps each table row to its flow index in the problem
    of the *latest* cycle the chunk was retained in; for a chunk that
    just expired it therefore indexes the previous cycle's problem -
    exactly what the Δ rebase needs.
    """

    __slots__ = (
        "gsid", "bad", "sent", "kind", "counts", "sort_perm", "flow_idx",
        "obs",
    )

    def __init__(self, obs: ObservationBatch) -> None:
        rep_rows, counts = _first_seen_unique_rows(
            obs.path_set, obs.bad, obs.sent, obs.kind
        )
        self.gsid = obs.path_set[rep_rows]
        self.bad = obs.bad[rep_rows].astype(np.int64)
        self.sent = obs.sent[rep_rows].astype(np.int64)
        self.kind = obs.kind[rep_rows]
        self.counts = counts.astype(np.int64)
        # Key order of the table rows, cached once: packings with
        # different bit widths sort identically (both are the columns'
        # lexicographic order), so the window merge can splice these
        # per-chunk sorted runs under its own packing and let timsort
        # exploit them.
        self.sort_perm = np.argsort(
            _row_group_keys(self.gsid, self.bad, self.sent, self.kind)
        )
        self.flow_idx: Optional[np.ndarray] = None
        self.obs = obs

    def __len__(self) -> int:
        return len(self.counts)


@dataclass(frozen=True)
class WindowUpdate:
    """One cycle's problem plus the flow deltas for warm kernels.

    ``removed_flows``/``removed_weights`` index the *previous* cycle's
    problem (the grouped flows whose weight dropped when chunks
    expired); ``added_flows``/``added_weights`` index ``problem`` (the
    grouped flows whose weight rose with the appended chunk).  Weights
    are the per-row multiplicity deltas - a group retained by several
    chunks shrinks rather than disappears when one of them expires.
    """

    problem: InferenceProblem
    removed_flows: np.ndarray
    removed_weights: np.ndarray
    added_flows: np.ndarray
    added_weights: np.ndarray


class WindowedProblem:
    """Sliding window of observation chunks with an incrementally
    maintained :class:`InferenceProblem` over the retained flows."""

    def __init__(
        self,
        n_components: int,
        n_links: int,
        window: int,
        compressed: bool = True,
    ) -> None:
        if window < 1:
            raise InferenceError("window must retain at least one chunk")
        if n_links > n_components:
            raise InferenceError("n_links cannot exceed n_components")
        self.n_components = n_components
        self.n_links = n_links
        self.window = window
        self.compressed = compressed
        self._chunks: Deque[_Chunk] = deque()
        self._space = None
        # Interned PathSpace.comp_set_parts results survive across
        # cycles: a steady-state window re-sees mostly known path sets,
        # so the compressed set stage gathers from flat cached arrays
        # and touches the space only for ids new to the stream.
        self._parts_cache = SetStageCache()
        self._problem: Optional[InferenceProblem] = None

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    @property
    def problem(self) -> InferenceProblem:
        """The current window's problem (empty before any append)."""
        if self._problem is None:
            self._problem = InferenceProblem.from_observations(
                [], self.n_components, self.n_links
            )
        return self._problem

    def retained_chunk_observations(self) -> List[ObservationBatch]:
        """The retained chunks' raw observations, oldest first.

        One entry per retained chunk (the checkpoint codec stores them
        individually so a resume can validate each regenerated chunk
        against the checkpointed one before trusting the replay).
        """
        return [c.obs for c in self._chunks]

    def retained_observations(self) -> ObservationBatch:
        """The window's raw observation rows, concatenated in arrival
        order - feeding these to ``from_batch`` must reproduce
        :attr:`problem` exactly (the equivalence the tests assert)."""
        if self._space is None:
            raise InferenceError("no chunks have been appended yet")
        return ObservationBatch(
            space=self._space,
            path_set=np.concatenate([c.obs.path_set for c in self._chunks]),
            bad=np.concatenate([c.obs.bad for c in self._chunks]),
            sent=np.concatenate([c.obs.sent for c in self._chunks]),
            kind=np.concatenate([c.obs.kind for c in self._chunks]),
        )

    def append(self, obs: ObservationBatch) -> WindowUpdate:
        """Fold one chunk in, expire chunks beyond the window, and
        rebuild the problem from the merged per-chunk tables."""
        if self._space is None:
            self._space = obs.space
        elif obs.space is not self._space:
            raise InferenceError(
                "all window chunks must share one PathSpace"
            )
        appended = _Chunk(obs)
        self._chunks.append(appended)
        expired: List[_Chunk] = []
        while len(self._chunks) > self.window:
            expired.append(self._chunks.popleft())

        chunks = list(self._chunks)
        gsid = np.concatenate([c.gsid for c in chunks])
        bad = np.concatenate([c.bad for c in chunks])
        sent = np.concatenate([c.sent for c in chunks])
        kind = np.concatenate([c.kind for c in chunks])
        counts = np.concatenate([c.counts for c in chunks])

        # First-seen merge of the stacked tables: group order and
        # representatives match a from_batch grouping of the raw rows
        # (tables are first-seen within each chunk; arrival order
        # breaks ties across chunks, exactly as raw row order would).
        keys = _row_group_keys(gsid, bad, sent, kind)
        if len(keys) and keys.dtype.kind != "V":
            # Splice the cached per-chunk sorted runs and stable-sort:
            # timsort merges the runs in near-linear time, and within
            # equal keys stability keeps chunk (= arrival = row) order,
            # so each run's first element is the group's first-seen
            # representative row.
            offset = 0
            parts = []
            for chunk in chunks:
                parts.append(chunk.sort_perm + offset)
                offset += len(chunk)
            perm = np.concatenate(parts)
            runs = keys[perm]
            order = np.argsort(runs, kind="stable")
            sorted_keys = runs[order]
            orig = perm[order]
            boundary = np.empty(len(keys), dtype=bool)
            boundary[0] = True
            np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
            first_idx = orig[boundary]
            seen_order = np.argsort(first_idx)
            rank = np.empty(len(seen_order), dtype=np.int64)
            rank[seen_order] = np.arange(len(seen_order), dtype=np.int64)
            group_of_row = np.empty(len(keys), dtype=np.int64)
            group_of_row[orig] = rank[np.cumsum(boundary) - 1]
            rep = first_idx[seen_order]
        else:
            _, first_idx, inverse = np.unique(
                keys, return_index=True, return_inverse=True
            )
            seen_order = np.argsort(first_idx, kind="stable")
            rank = np.empty(len(seen_order), dtype=np.int64)
            rank[seen_order] = np.arange(len(seen_order), dtype=np.int64)
            group_of_row = rank[inverse]
            rep = first_idx[seen_order]
        weights = np.bincount(
            group_of_row, weights=counts, minlength=len(rep)
        ).astype(np.int64)

        problem = InferenceProblem._from_grouped(
            self._space,
            gsid[rep], bad[rep], sent[rep], kind[rep], weights,
            self.n_components, self.n_links,
            compressed=self.compressed,
            parts_cache=self._parts_cache,
        )

        # Expired rows still carry flow indices of the previous
        # problem; capture them before re-pointing retained chunks at
        # the new numbering.
        if expired and self._problem is not None:
            removed_flows = np.concatenate([c.flow_idx for c in expired])
            removed_weights = np.concatenate([c.counts for c in expired])
        else:
            removed_flows = np.empty(0, dtype=np.int64)
            removed_weights = np.empty(0, dtype=np.int64)

        offset = 0
        for chunk in chunks:
            chunk.flow_idx = group_of_row[offset:offset + len(chunk)]
            offset += len(chunk)

        self._problem = problem
        return WindowUpdate(
            problem=problem,
            removed_flows=removed_flows,
            removed_weights=removed_weights,
            added_flows=appended.flow_idx,
            added_weights=appended.counts,
        )
