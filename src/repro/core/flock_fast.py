"""Vectorized inference kernels (NumPy CSR formulation).

The reference engine (:mod:`repro.core.jle`) walks Python dicts and is
the line-for-line transcription of Algorithm 2; everything here computes
the same quantities as flat-array passes, so that the Fig. 4c ablation
(Sherlock vs greedy-only vs JLE-only vs Flock) compares *algorithms*
rather than interpreter constant factors - all four arms share the CSR
substrate below, mirroring the paper's single C++ framework.

Shared structures (:class:`VectorArrays`):

* ``path_comps``/``path_off`` - CSR of component ids per interned path;
* ``flow_pids``/``flow_off`` - CSR of path ids per flow (with
  multiplicity = the flow's ECMP fan-out ``w``);
* ``comp -> flows`` and ``comp -> paths`` inverted maps.

The workhorse pattern: expand (flow, path) instances to
(flow, component) pairs, count pairs over *good* paths with one
``np.unique`` over packed 64-bit keys, evaluate the memoized per-flow
likelihood difference, and scatter-add with ``np.bincount`` - the
paper's "couple of passes over L_F" as whole-array passes.

Engines built on the substrate:

* :class:`VectorJleState` - JLE Δ array with involutive add/remove
  flips (drop-in for :class:`repro.core.jle.JleState`);
* :class:`VectorGreedyWithoutJle` - greedy search pricing every
  candidate individually each iteration (the "greedy only" arm);
* :meth:`VectorArrays.hypothesis_ll` - direct hypothesis pricing used
  by the plain-Sherlock arm.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from ..errors import InferenceError
from ..types import Prediction
from .model import evidence_scores, normalized_flow_ll_vec
from .params import FlockParams
from .problem import InferenceProblem


from .problem import _expand_slices  # noqa: E402  (shared CSR helper)


class VectorArrays:
    """Shared CSR arrays + likelihood vectors for one problem."""

    def __init__(self, problem: InferenceProblem, params: FlockParams) -> None:
        self.problem = problem
        self.params = params
        self.n_comps = problem.n_components

        self.s = evidence_scores(problem.bad_packets, problem.packets_sent, params)
        self.wt = problem.weights.astype(np.float64)

        # The problem's primary representation already is the CSR this
        # engine wants - share the arrays instead of rebuilding them
        # from the object views.
        self.path_comps, self.path_off = problem.path_comps, problem.path_off
        self.path_len = np.diff(self.path_off)
        self.flow_pids, self.flow_off = problem.flow_pids, problem.flow_off
        self.flow_len = np.diff(self.flow_off)
        self.w = self.flow_len.astype(np.float64)

        self.prior_gain = np.empty(self.n_comps)
        self.prior_gain[: problem.n_links] = params.link_prior_gain
        self.prior_gain[problem.n_links:] = params.device_prior_gain

    def comp_flows(self, comp: int) -> np.ndarray:
        """Flows that can blame ``comp`` (empty array when unobserved)."""
        return self.problem.comp_flows(comp)

    def comp_paths(self, comp: int) -> np.ndarray:
        """Interned paths containing ``comp``."""
        return self.problem.comp_path_ids(comp)

    # ------------------------------------------------------------------
    def flow_instances(self, flows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(local flow index, path id) arrays for the flows' path instances."""
        starts = self.flow_off[flows]
        lengths = self.flow_len[flows]
        inst_idx = _expand_slices(starts, lengths)
        pids = self.flow_pids[inst_idx]
        local = np.repeat(np.arange(len(flows), dtype=np.int64), lengths)
        return local, pids

    def pair_counts(self, flows_local: np.ndarray, pids: np.ndarray):
        """Count (local flow, component) pairs over the given path
        instances; returns (flow_local, comp, count)."""
        starts = self.path_off[pids]
        lengths = self.path_len[pids]
        comp_idx = _expand_slices(starts, lengths)
        comps = self.path_comps[comp_idx]
        flows = np.repeat(flows_local, lengths)
        keys = flows * np.int64(self.n_comps) + comps
        uniq, counts = np.unique(keys, return_counts=True)
        return (
            uniq // self.n_comps,
            uniq % self.n_comps,
            counts.astype(np.float64),
        )

    def affected_flows(self, comps: Iterable[int]) -> np.ndarray:
        arrays = [a for a in (self.comp_flows(c) for c in comps) if len(a)]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        if len(arrays) == 1:
            return arrays[0]
        return np.unique(np.concatenate(arrays))

    def hypothesis_ll(self, comps: Iterable[int], include_prior: bool = True) -> float:
        """Normalized log likelihood of a hypothesis, priced directly.

        This is the plain-Sherlock work unit: only flows intersecting
        the hypothesis contribute, each priced from its failed-path
        count.  Cost: O(path instances of affected flows).
        """
        hyp = list(set(comps))
        total = 0.0
        if hyp:
            flows = self.affected_flows(hyp)
            if len(flows):
                local, pids = self.flow_instances(flows)
                path_bad = np.zeros(self.problem.n_paths, dtype=bool)
                for comp in hyp:
                    path_bad[self.comp_paths(comp)] = True
                b = np.bincount(
                    local,
                    weights=path_bad[pids].astype(np.float64),
                    minlength=len(flows),
                )
                lls = normalized_flow_ll_vec(b, self.w[flows], self.s[flows])
                total = float(np.dot(self.wt[flows], lls))
        if include_prior:
            total += float(sum(self.prior_gain[c] for c in hyp))
        return total


class VectorJleState(VectorArrays):
    """Array-based JLE state; drop-in for :class:`repro.core.jle.JleState`.

    Supports both addition and removal flips (removals keep the Δ array
    consistent and are exact inverses of additions), so Sherlock's
    Algorithm-3 recursion can explore by flip/descend/unflip.
    """

    def __init__(self, problem: InferenceProblem, params: FlockParams) -> None:
        super().__init__(problem, params)
        self.path_nfailed = np.zeros(problem.n_paths, dtype=np.int64)
        self.flow_b = np.zeros(problem.n_flows, dtype=np.int64)
        self.hypothesis: Set[int] = set()
        self.ll = 0.0
        self.flips = 0
        self.delta = self._initial_delta()

    @property
    def hypotheses_scanned(self) -> int:
        return (self.flips + 1) * self.problem.n_components

    def _initial_delta(self) -> np.ndarray:
        n_flows = self.problem.n_flows
        all_flows = np.arange(n_flows, dtype=np.int64)
        local, pids = self.flow_instances(all_flows)
        fl, comp, cnt = self.pair_counts(local, pids)
        contrib = self.wt[fl] * normalized_flow_ll_vec(cnt, self.w[fl], self.s[fl])
        return np.bincount(comp, weights=contrib, minlength=self.n_comps).astype(
            np.float64
        )

    # ------------------------------------------------------------------
    def addition_gains(self, candidates: np.ndarray) -> np.ndarray:
        gains = self.delta[candidates] + self.prior_gain[candidates]
        if self.hypothesis:
            member = np.fromiter(
                (c in self.hypothesis for c in candidates),
                dtype=bool,
                count=len(candidates),
            )
            gains[member] = -np.inf
        return gains

    def gain(self, comp: int) -> float:
        if comp in self.hypothesis:
            raise InferenceError(
                "gain() prices additions; for a member's removal gain "
                "use removal_gain()"
            )
        return float(self.delta[comp] + self.prior_gain[comp])

    def removal_gain(self, comp: int) -> float:
        """(data - prior) LL change of removing a member, priced
        without flipping - the Gibbs sampler's conditional for a
        component currently in the hypothesis.  Mirrors the reference
        engine's ``gain()`` for members: removal data delta minus the
        prior gain."""
        if comp not in self.hypothesis:
            raise InferenceError(f"component {comp} is not in the hypothesis")
        total = 0.0
        flows = self.comp_flows(comp)
        if len(flows):
            local, pids = self.flow_instances(flows)
            path_has = np.zeros(self.problem.n_paths, dtype=bool)
            path_has[self.comp_paths(comp)] = True
            nf_new = self.path_nfailed[pids] - path_has[pids]
            b_new = np.bincount(
                local,
                weights=(nf_new > 0).astype(np.float64),
                minlength=len(flows),
            )
            b_old = self.flow_b[flows].astype(np.float64)
            w = self.w[flows]
            s = self.s[flows]
            diff = normalized_flow_ll_vec(b_new, w, s) - normalized_flow_ll_vec(
                b_old, w, s
            )
            total = float(np.dot(self.wt[flows], diff))
        return total - float(self.prior_gain[comp])

    # ------------------------------------------------------------------
    def flip(self, comp: int) -> float:
        """Flip ``comp``; returns the (data + prior) LL change."""
        problem = self.problem
        if not 0 <= comp < self.n_comps:
            raise InferenceError(f"component id {comp} out of range")
        adding = comp not in self.hypothesis
        if adding:
            change = float(self.delta[comp] + self.prior_gain[comp])

        affected = self.comp_flows(comp)
        paths_of_comp = self.comp_paths(comp)
        step = 1 if adding else -1
        if len(affected) > 0:
            af_local, af_pid = self.flow_instances(affected)

            path_has = np.zeros(problem.n_paths, dtype=bool)
            path_has[paths_of_comp] = True
            nf_old = self.path_nfailed[af_pid]
            nf_new = nf_old + step * path_has[af_pid]
            old_failed = nf_old > 0
            new_failed = nf_new > 0

            b_old = self.flow_b[affected].astype(np.float64)
            b_shift = np.bincount(
                af_local,
                weights=(new_failed.astype(np.float64) - old_failed),
                minlength=len(affected),
            )
            b_new = b_old + b_shift

            w = self.w[affected]
            s = self.s[affected]
            wt = self.wt[affected]
            base_old = normalized_flow_ll_vec(b_old, w, s)
            base_new = normalized_flow_ll_vec(b_new, w, s)

            good_old = ~old_failed
            if np.any(good_old):
                fl, comps_u, cnt = self.pair_counts(
                    af_local[good_old], af_pid[good_old]
                )
                contrib = wt[fl] * (
                    normalized_flow_ll_vec(b_old[fl] + cnt, w[fl], s[fl])
                    - base_old[fl]
                )
                self.delta -= np.bincount(
                    comps_u, weights=contrib, minlength=self.n_comps
                )
            good_new = ~new_failed
            if np.any(good_new):
                fl, comps_u, cnt = self.pair_counts(
                    af_local[good_new], af_pid[good_new]
                )
                contrib = wt[fl] * (
                    normalized_flow_ll_vec(b_new[fl] + cnt, w[fl], s[fl])
                    - base_new[fl]
                )
                self.delta += np.bincount(
                    comps_u, weights=contrib, minlength=self.n_comps
                )

            self.flow_b[affected] = b_new.astype(np.int64)

        self.path_nfailed[paths_of_comp] += step
        if adding:
            self.hypothesis.add(comp)
        else:
            self.hypothesis.discard(comp)
            # After the state reverts, the addition gain of ``comp`` is
            # exactly the negative of the removal change.
            change = -float(self.delta[comp] + self.prior_gain[comp])
        self.ll += change
        self.flips += 1
        return change


class VectorGreedyWithoutJle(VectorArrays):
    """Greedy search pricing every candidate from scratch each iteration
    (the "greedy only" ablation arm, on the shared vector substrate)."""

    name = "flock-greedy-only"

    def __init__(
        self,
        problem: InferenceProblem,
        params: FlockParams,
        max_failures: Optional[int] = None,
    ) -> None:
        super().__init__(problem, params)
        self.path_nfailed = np.zeros(problem.n_paths, dtype=np.int64)
        self.flow_b = np.zeros(problem.n_flows, dtype=np.int64)
        self.hypothesis: Set[int] = set()
        self.ll = 0.0
        self._cap = max_failures

    def candidate_gain(self, comp: int) -> float:
        """LL(H + comp) - LL(H), recomputed over flows(comp)."""
        flows = self.comp_flows(comp)
        if not len(flows):
            return float(self.prior_gain[comp])
        local, pids = self.flow_instances(flows)
        path_has = np.zeros(self.problem.n_paths, dtype=bool)
        path_has[self.comp_paths(comp)] = True
        newly_bad = path_has[pids] & (self.path_nfailed[pids] == 0)
        extra = np.bincount(
            local, weights=newly_bad.astype(np.float64), minlength=len(flows)
        )
        b_old = self.flow_b[flows].astype(np.float64)
        w = self.w[flows]
        s = self.s[flows]
        diff = normalized_flow_ll_vec(b_old + extra, w, s) - normalized_flow_ll_vec(
            b_old, w, s
        )
        return float(np.dot(self.wt[flows], diff) + self.prior_gain[comp])

    def commit(self, comp: int, gain: float) -> None:
        pid_arr = self.comp_paths(comp)
        flows = self.comp_flows(comp)
        if len(flows):
            local, pids = self.flow_instances(flows)
            path_has = np.zeros(self.problem.n_paths, dtype=bool)
            path_has[pid_arr] = True
            newly_bad = path_has[pids] & (self.path_nfailed[pids] == 0)
            extra = np.bincount(
                local, weights=newly_bad.astype(np.float64), minlength=len(flows)
            ).astype(np.int64)
            self.flow_b[flows] += extra
        self.path_nfailed[pid_arr] += 1
        self.hypothesis.add(comp)
        self.ll += gain

    def run(self) -> Prediction:
        candidates = list(self.problem.observed_components)
        cap = self._cap if self._cap is not None else len(candidates)
        scanned = 0
        scores: Dict[int, float] = {}
        while len(self.hypothesis) < cap:
            best_comp = -1
            best_gain = 0.0
            for comp in candidates:
                if comp in self.hypothesis:
                    continue
                scanned += 1
                gain = self.candidate_gain(comp)
                if gain > best_gain:
                    best_gain = gain
                    best_comp = comp
            if best_comp < 0:
                break
            self.commit(best_comp, best_gain)
            scores[best_comp] = best_gain
        return Prediction(
            components=frozenset(self.hypothesis),
            scores=scores,
            log_likelihood=self.ll,
            hypotheses_scanned=scanned,
        )
