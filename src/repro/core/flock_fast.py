"""Vectorized inference kernels (NumPy CSR formulation).

The reference engine (:mod:`repro.core.jle`) walks Python dicts and is
the line-for-line transcription of Algorithm 2; everything here computes
the same quantities as flat-array passes, so that the Fig. 4c ablation
(Sherlock vs greedy-only vs JLE-only vs Flock) compares *algorithms*
rather than interpreter constant factors - all four arms share the CSR
substrate below, mirroring the paper's single C++ framework.

Shared structures (:class:`VectorArrays`), built on the problem's *set
layer*:

* ``path_comps``/``path_off`` - CSR of component ids per problem path
  (interior projections for compressed problems);
* flows reference de-duplicated path sets; sets reference shared
  *interior sets* whose unique member paths carry an integer
  multiplicity column; per-set *endpoint components* sit on every
  member path of their set;
* ``comp -> flows``, ``comp -> paths`` and ``comp -> endpoint sets``
  inverted maps.

The workhorse pattern: count (set, component) pairs over *good* member
paths at interior-set granularity, expand the per-set pair lists to
flows in flow-major component-sorted order, evaluate the memoized
per-flow likelihood difference, and scatter-add with ``np.bincount``.
Because an uncompressed problem is the trivial factoring (every set its
own interior set, no endpoint comps), one code path serves both
representations, and their kernel sums are identical term by term and
in accumulation order - which is what keeps compressed and uncompressed
predictions bit-identical.

Engines built on the substrate:

* :class:`VectorJleState` - JLE Δ array with involutive add/remove
  flips (drop-in for :class:`repro.core.jle.JleState`);
* :class:`VectorGreedyWithoutJle` - greedy search pricing every
  candidate individually each iteration (the "greedy only" arm), with
  array-level candidate pruning from a per-component gain upper bound;
* :meth:`VectorArrays.hypothesis_ll` - direct hypothesis pricing used
  by the plain-Sherlock arm.
"""

from __future__ import annotations

from typing import Dict, Iterable, NamedTuple, Optional, Set, Tuple

import numpy as np

from ..errors import InferenceError
from ..types import Prediction
from .kernels import resolve_backend
from .model import evidence_exp, evidence_scores, normalized_flow_ll_fast
from .params import FlockParams
from .problem import InferenceProblem


from .problem import _expand_slices  # noqa: E402  (shared CSR helper)

#: Above this many (row x component) cells the pair-count kernel falls
#: back to sort-based counting instead of a dense bincount scratch.
_DENSE_CELLS_CAP = 1 << 23


def addition_upper_bounds(
    problem: InferenceProblem,
    params: FlockParams,
    s: Optional[np.ndarray] = None,
    wt: Optional[np.ndarray] = None,
    prior_gain: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-component upper bound on any addition gain.

    ``nll(b') - nll(b) <= max(0, s)`` for every flow, so adding ``c``
    to *any* hypothesis gains at most
    ``prior[c] + sum_{f in flows(c), s_f > 0} wt_f * s_f``.  A mixed
    absolute + relative slack absorbs float rounding (the bound and the
    exact gains accumulate in different summation orders), so pruning
    cannot drop a candidate unless its exact gain beats the incumbent
    by less than the slack - i.e. only float-tie-level outcomes can
    differ from an unpruned scan.  Computed straight off the problem
    arrays; the single definition serves the vector engines (which pass
    their precomputed ``s``/``wt``/``prior_gain``) and the
    reference-engine Sherlock recursion alike.
    """
    if s is None:
        s = evidence_scores(problem.bad_packets, problem.packets_sent, params)
    if wt is None:
        wt = problem.weights.astype(np.float64)
    pos = wt * np.maximum(s, 0.0)
    ub = np.bincount(
        problem._comp_flow_keys,
        weights=pos[problem._comp_flow_vals],
        minlength=problem.n_components,
    )
    if prior_gain is None:
        prior_gain = np.empty(problem.n_components)
        prior_gain[: problem.n_links] = params.link_prior_gain
        prior_gain[problem.n_links:] = params.device_prior_gain
    return ub + prior_gain + (1e-9 + 1e-12 * np.abs(ub))


def _count_sorted(
    keys: np.ndarray, weights: np.ndarray, dense_size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted unique keys, per-key weight sums).

    The weight sums are exact small-integer floats, so the dense
    bincount fast path and the sort-based fallback return identical
    arrays - only their speed differs.
    """
    if len(keys) == 0:
        return keys, np.empty(0)
    if 0 < dense_size <= _DENSE_CELLS_CAP:
        dense = np.bincount(keys, weights=weights, minlength=dense_size)
        ukeys = np.nonzero(dense)[0]
        return ukeys, dense[ukeys]
    ukeys, inverse = np.unique(keys, return_inverse=True)
    return ukeys, np.bincount(inverse, weights=weights)


class VectorArrays:
    """Shared CSR arrays + likelihood vectors for one problem.

    ``kernel_backend`` selects a :mod:`repro.core.kernels` backend
    (explicit name > ``REPRO_KERNEL_BACKEND`` env var > ``numpy``).
    The ``numpy`` reference keeps the original uncollapsed set-granular
    loops bit-for-bit; collapsed backends switch the engines to unique
    likelihood rows (see :meth:`_build_collapsed_rows`).
    """

    def __init__(
        self,
        problem: InferenceProblem,
        params: FlockParams,
        kernel_backend: Optional[str] = None,
    ) -> None:
        self.problem = problem
        self.params = params
        self.kernels = resolve_backend(kernel_backend)
        self.n_comps = problem.n_components

        self.s = evidence_scores(problem.bad_packets, problem.packets_sent, params)
        self._es = evidence_exp(self.s)
        self.wt = problem.weights.astype(np.float64)

        # The problem's primary representation already is the CSR this
        # engine wants - share the arrays instead of rebuilding them
        # from the object views.
        self.path_comps, self.path_off = problem.path_comps, problem.path_off
        self.path_len = np.diff(self.path_off)
        self.n_kernel_paths = len(self.path_off) - 1

        self.set_of_flow = problem._set_of_flow
        self.iset_of_set = problem._iset_of_set
        self.iset_upids = problem._iset_upids
        self.iset_umult = problem._iset_umult.astype(np.float64)
        self.iset_uoff = problem._iset_uoff
        self.iset_ulen = np.diff(self.iset_uoff)
        self.set_ecomps = problem._set_ecomps
        self.set_eoff = problem._set_eoff
        self.set_elen = np.diff(self.set_eoff)
        self.set_w = problem._set_w.astype(np.float64)
        self.n_sets = len(self.iset_of_set)

        self.w = self.set_w[self.set_of_flow]

        self.prior_gain = np.empty(self.n_comps)
        self.prior_gain[: problem.n_links] = params.link_prior_gain
        self.prior_gain[problem.n_links:] = params.device_prior_gain

        self.n_isets = len(self.iset_uoff) - 1
        if self.kernels.collapsed:
            self._build_collapsed_rows()

    def _build_collapsed_rows(self) -> None:
        """Collapse flows into unique (interior set, observation) rows.

        Two flows whose path sets share an interior set and whose
        observations land in the same (bad, sent) bucket see identical
        ``(w, s, es)`` and - whenever their sets have no failed
        endpoint component - identical failed-member counts ``b``, so
        they contribute the *same* nll value, scaled by weight.  The
        collapsed kernels therefore price unique rows once and weight
        by the summed flow weight:

        * ``_row_of_flow`` maps each flow to its row;
        * ``_row_iset`` is the row's interior set (rows sorted
          iset-major, which the pair expansion relies on);
        * ``_row_w/_row_s/_row_es`` are taken bitwise from the first
          flow of each row (they are pure functions of the row key).

        Flows whose set has a failed endpoint component are priced
        exactly (``b = w`` patches nll to ``s``), so they never need
        the row's shared ``b`` and the collapse stays exact.
        """
        n_flows = self.problem.n_flows
        if n_flows == 0 or self.n_sets == 0:
            self._row_of_flow = np.zeros(n_flows, dtype=np.int64)
            self._row_iset = np.empty(0, dtype=np.int64)
            self._row_w = np.empty(0)
            self._row_s = np.empty(0)
            self._row_es = np.empty(0)
            self.n_rows = 0
            return
        bad = self.problem.bad_packets.astype(np.int64)
        sent = self.problem.packets_sent.astype(np.int64)
        span = int(sent.max()) + 1
        _, bucket = np.unique(bad * span + sent, return_inverse=True)
        n_buckets = int(bucket.max()) + 1
        iset_of_flow = self.iset_of_set[self.set_of_flow]
        row_key = iset_of_flow * np.int64(n_buckets) + bucket
        urows, first, row_of_flow = np.unique(
            row_key, return_index=True, return_inverse=True
        )
        self._row_of_flow = row_of_flow.astype(np.int64)
        self._row_iset = (urows // n_buckets).astype(np.int64)
        self._row_w = self.w[first]
        self._row_s = self.s[first]
        self._row_es = self._es[first]
        self.n_rows = len(urows)

    def nll(self, b: np.ndarray, flow_idx: np.ndarray) -> np.ndarray:
        """Normalized flow ll for (global) flow indices, memoized exp(s)."""
        return normalized_flow_ll_fast(
            b, self.w[flow_idx], self.s[flow_idx], self._es[flow_idx]
        )

    def comp_flows(self, comp: int) -> np.ndarray:
        """Flows that can blame ``comp`` (empty array when unobserved)."""
        return self.problem.comp_flows(comp)

    def comp_paths(self, comp: int) -> np.ndarray:
        """Problem paths containing ``comp``."""
        return self.problem.comp_path_ids(comp)

    def comp_esets(self, comp: int) -> np.ndarray:
        """Sets carrying ``comp`` as an endpoint component."""
        return self.problem.comp_eset_ids(comp)

    # ------------------------------------------------------------------
    # Set-layer expansion primitives
    # ------------------------------------------------------------------
    def set_instances(
        self, sets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(local set index, unique member pid, multiplicity) triples."""
        isets = self.iset_of_set[sets]
        lengths = self.iset_ulen[isets]
        idx = _expand_slices(self.iset_uoff[isets], lengths)
        local = np.repeat(np.arange(len(sets), dtype=np.int64), lengths)
        return local, self.iset_upids[idx], self.iset_umult[idx]

    def _set_pair_lists(
        self,
        sets: np.ndarray,
        local: np.ndarray,
        upids: np.ndarray,
        mult: np.ndarray,
        good: np.ndarray,
        goodcount: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-set (component, count) lists over good member paths.

        Counts weight by member multiplicity; endpoint components sit on
        every member path, so they count the set's whole good-member
        total (and appear only while the set still has good members).
        Returns (packed keys, counts) sorted by (set local id, comp).
        """
        n_comps = np.int64(self.n_comps)
        gl = local[good]
        gp = upids[good]
        lens = self.path_len[gp]
        keys = np.repeat(gl, lens) * n_comps + self.path_comps[
            _expand_slices(self.path_off[gp], lens)
        ]
        wts = np.repeat(mult[good], lens)
        ukeys, cnts = _count_sorted(keys, wts, len(sets) * self.n_comps)
        has_e = (self.set_elen[sets] > 0) & (goodcount > 0)
        if np.any(has_e):
            esel = np.nonzero(has_e)[0]
            elens = self.set_elen[sets[esel]]
            eidx = _expand_slices(self.set_eoff[sets[esel]], elens)
            ekeys = np.repeat(esel, elens) * n_comps + self.set_ecomps[eidx]
            ecnts = np.repeat(goodcount[esel], elens)
            # Endpoint comps are disjoint from interior comps of the
            # same set, so the merged key stream has no duplicates; one
            # scatter pass fills both output arrays.
            pos = np.searchsorted(ukeys, ekeys)
            n = len(ukeys) + len(ekeys)
            at = pos + np.arange(len(ekeys), dtype=np.int64)
            rest = np.ones(n, dtype=bool)
            rest[at] = False
            merged_keys = np.empty(n, dtype=np.int64)
            merged_cnts = np.empty(n)
            merged_keys[at] = ekeys
            merged_cnts[at] = ecnts
            merged_keys[rest] = ukeys
            merged_cnts[rest] = cnts
            return merged_keys, merged_cnts
        return ukeys, cnts

    def _pairs_to_flows(
        self,
        n_local_sets: int,
        flow_set_local: np.ndarray,
        keys: np.ndarray,
        cnts: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand per-set pair lists to flow-major (fl, comp, cnt).

        Flows arrive ascending with component-sorted pair lists, which
        is exactly the order the historical per-instance ``np.unique``
        counting produced - the load-bearing detail that keeps every
        downstream ``np.bincount`` accumulation bit-identical across
        problem representations.
        """
        n_comps = np.int64(self.n_comps)
        bounds = np.searchsorted(
            keys, np.arange(n_local_sets + 1, dtype=np.int64) * n_comps
        )
        lens = np.diff(bounds)[flow_set_local]
        fl = np.repeat(np.arange(len(flow_set_local), dtype=np.int64), lens)
        idx = _expand_slices(bounds[flow_set_local], lens)
        return fl, (keys % n_comps)[idx], cnts[idx]

    # ------------------------------------------------------------------
    # Collapsed-row kernels (backends with ``collapsed=True``)
    # ------------------------------------------------------------------
    def _iset_instances(
        self, isets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(local iset index, unique member pid, multiplicity) triples."""
        lengths = self.iset_ulen[isets]
        idx = _expand_slices(self.iset_uoff[isets], lengths)
        il = np.repeat(np.arange(len(isets), dtype=np.int64), lengths)
        return il, self.iset_upids[idx], self.iset_umult[idx]

    def _iset_pair_lists(
        self,
        isets: np.ndarray,
        il: np.ndarray,
        upids: np.ndarray,
        mult: np.ndarray,
        good: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-interior-set (component, count) lists over good members.

        The interior-set analogue of :meth:`_set_pair_lists`, without
        endpoint components (those are per *set* and priced exactly by
        the collapsed passes).  Returns (packed keys, counts) sorted by
        (iset local id, comp).
        """
        n_comps = np.int64(self.n_comps)
        gl = il[good]
        gp = upids[good]
        lens = self.path_len[gp]
        keys = np.repeat(gl, lens) * n_comps + self.path_comps[
            _expand_slices(self.path_off[gp], lens)
        ]
        wts = np.repeat(mult[good], lens)
        return _count_sorted(keys, wts, len(isets) * self.n_comps)

    def _pairs_to_rows(
        self,
        n_local_isets: int,
        row_iset_local: np.ndarray,
        keys: np.ndarray,
        cnts: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand per-iset pair lists to row-major (row, comp, cnt)."""
        n_comps = np.int64(self.n_comps)
        bounds = np.searchsorted(
            keys, np.arange(n_local_isets + 1, dtype=np.int64) * n_comps
        )
        lens = np.diff(bounds)[row_iset_local]
        rl = np.repeat(np.arange(len(row_iset_local), dtype=np.int64), lens)
        idx = _expand_slices(bounds[row_iset_local], lens)
        return rl, (keys % n_comps)[idx], cnts[idx]

    def _collapsed_delta(
        self,
        flows: np.ndarray,
        weights: np.ndarray,
        aff_sets: np.ndarray,
        fsl: np.ndarray,
        e_failed: np.ndarray,
        aff_isets: np.ndarray,
        il: np.ndarray,
        upids: np.ndarray,
        mult: np.ndarray,
        good: np.ndarray,
        iset_b: np.ndarray,
    ) -> np.ndarray:
        """Δ contribution of weighted flows under an explicit state.

        The collapsed workhorse: the caller describes a structural
        state (per-instance good mask, per-iset failed-member count
        ``iset_b``, per-set endpoint-failed flags) and this prices the
        flip term ``w_f * (nll(b + g_c) - nll(b))`` once per unique
        likelihood row instead of once per flow.  Sets with a failed
        endpoint (``b = w``) or no good members contribute exactly
        zero, so their flows are dropped up front; endpoint components
        of surviving sets move the whole set to ``b = w``, priced
        exactly as ``w_f * (s - nll(b))`` with no log.
        """
        out = np.zeros(self.n_comps, dtype=np.float64)
        ii = np.searchsorted(aff_isets, self.iset_of_set[aff_sets])
        set_ok = ~e_failed & (self.set_w[aff_sets] - iset_b[ii] > 0)
        ok_f = set_ok[fsl]
        if not np.any(ok_f):
            return out
        sel = flows[ok_f]
        wsel = weights[ok_f]
        rsel, rinv = np.unique(self._row_of_flow[sel], return_inverse=True)
        W = np.bincount(rinv, weights=wsel, minlength=len(rsel))
        ril = np.searchsorted(aff_isets, self._row_iset[rsel])
        b_rows = iset_b[ril]
        w_rows = self._row_w[rsel]
        s_rows = self._row_s[rsel]
        es_rows = self._row_es[rsel]
        base = self.kernels.nll(b_rows, w_rows, s_rows, es_rows)
        keys, cnts = self._iset_pair_lists(aff_isets, il, upids, mult, good)
        if len(keys):
            rl, comps_u, cnt = self._pairs_to_rows(
                len(aff_isets), ril, keys, cnts
            )
            out += self.kernels.pair_delta(
                self.n_comps, comps_u, rl, cnt, W,
                b_rows, w_rows, s_rows, es_rows, base,
            )
        has_e = set_ok & (self.set_elen[aff_sets] > 0)
        if np.any(has_e):
            v = wsel * (self.s[sel] - base[rinv])
            sv = np.bincount(fsl[ok_f], weights=v, minlength=len(aff_sets))
            esel = np.nonzero(has_e)[0]
            elens = self.set_elen[aff_sets[esel]]
            eidx = _expand_slices(self.set_eoff[aff_sets[esel]], elens)
            out += np.bincount(
                self.set_ecomps[eidx],
                weights=np.repeat(sv[esel], elens),
                minlength=self.n_comps,
            )
        return out

    def affected_flows(self, comps: Iterable[int]) -> np.ndarray:
        arrays = [a for a in (self.comp_flows(c) for c in comps) if len(a)]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        if len(arrays) == 1:
            return arrays[0]
        return np.unique(np.concatenate(arrays))

    def addition_upper_bounds(self) -> np.ndarray:
        """See the module-level :func:`addition_upper_bounds`."""
        return addition_upper_bounds(
            self.problem, self.params, self.s, self.wt, self.prior_gain
        )

    def hypothesis_ll(self, comps: Iterable[int], include_prior: bool = True) -> float:
        """Normalized log likelihood of a hypothesis, priced directly.

        This is the plain-Sherlock work unit: only flows intersecting
        the hypothesis contribute, each priced from its failed-path
        count.  Cost: O(member paths of affected sets + affected flows).
        """
        hyp = list(set(comps))
        if self.kernels.collapsed:
            return self._hypothesis_ll_collapsed(hyp, include_prior)
        total = 0.0
        if hyp:
            flows = self.affected_flows(hyp)
            if len(flows):
                aff_sets, fsl = np.unique(
                    self.set_of_flow[flows], return_inverse=True
                )
                local, upids, mult = self.set_instances(aff_sets)
                path_bad = np.zeros(self.n_kernel_paths, dtype=bool)
                e_bad = np.zeros(len(aff_sets), dtype=bool)
                for comp in hyp:
                    path_bad[self.comp_paths(comp)] = True
                    esets = self.comp_esets(comp)
                    if len(esets):
                        e_bad[np.searchsorted(aff_sets, esets)] = True
                inst_bad = path_bad[upids] | e_bad[local]
                b_set = np.bincount(
                    local, weights=mult * inst_bad, minlength=len(aff_sets)
                )
                b = b_set[fsl]
                lls = self.nll(b, flows)
                total = float(np.dot(self.wt[flows], lls))
        if include_prior:
            total += float(sum(self.prior_gain[c] for c in hyp))
        return total

    def _hypothesis_ll_collapsed(self, hyp, include_prior: bool) -> float:
        """:meth:`hypothesis_ll` priced over collapsed rows.

        Flows on sets with a failed endpoint component evaluate to
        exactly ``s`` (no log); the rest share their row's per-iset
        failed-member count.
        """
        total = 0.0
        if hyp:
            flows = self.affected_flows(hyp)
            if len(flows):
                aff_sets, fsl = np.unique(
                    self.set_of_flow[flows], return_inverse=True
                )
                aff_isets = np.unique(self.iset_of_set[aff_sets])
                il, upids, mult = self._iset_instances(aff_isets)
                path_bad = np.zeros(self.n_kernel_paths, dtype=bool)
                e_bad = np.zeros(len(aff_sets), dtype=bool)
                for comp in hyp:
                    path_bad[self.comp_paths(comp)] = True
                    esets = self.comp_esets(comp)
                    if len(esets):
                        e_bad[np.searchsorted(aff_sets, esets)] = True
                iset_b = np.bincount(
                    il,
                    weights=mult * path_bad[upids],
                    minlength=len(aff_isets),
                )
                wt = self.wt[flows]
                ebad_f = e_bad[fsl]
                if np.any(ebad_f):
                    total += float(
                        np.dot(wt[ebad_f], self.s[flows[ebad_f]])
                    )
                ok_f = ~ebad_f
                if np.any(ok_f):
                    sel = flows[ok_f]
                    rsel, rinv = np.unique(
                        self._row_of_flow[sel], return_inverse=True
                    )
                    W = np.bincount(
                        rinv, weights=wt[ok_f], minlength=len(rsel)
                    )
                    ril = np.searchsorted(aff_isets, self._row_iset[rsel])
                    lls = self.kernels.nll(
                        iset_b[ril],
                        self._row_w[rsel],
                        self._row_s[rsel],
                        self._row_es[rsel],
                    )
                    total += float(np.dot(W, lls))
        if include_prior:
            total += float(sum(self.prior_gain[c] for c in hyp))
        return total


class DeltaContrib(NamedTuple):
    """A flow group's priced Δ/ll contribution, replayable at expiry.

    A chunk's contribution depends only on its rows' intrinsic set
    structure (global component ids) and the hypothesis it was priced
    under, so when the same chunk expires with the hypothesis unchanged
    - the streaming steady state - the cached vector can be subtracted
    instead of re-priced.  ``hypothesis`` records the pricing context
    for the validity check.
    """

    delta: np.ndarray
    ll: float
    hypothesis: frozenset


class VectorJleState(VectorArrays):
    """Array-based JLE state; drop-in for :class:`repro.core.jle.JleState`.

    Supports both addition and removal flips (removals keep the Δ array
    consistent and are exact inverses of additions), so Sherlock's
    Algorithm-3 recursion can explore by flip/descend/unflip.
    """

    def __init__(
        self,
        problem: InferenceProblem,
        params: FlockParams,
        kernel_backend: Optional[str] = None,
    ) -> None:
        super().__init__(problem, params, kernel_backend)
        self._path_nfailed = np.zeros(self.n_kernel_paths, dtype=np.int64)
        self._set_e_nfailed = np.zeros(self.n_sets, dtype=np.int64)
        self._set_b = np.zeros(self.n_sets, dtype=np.int64)
        self.hypothesis: Set[int] = set()
        self.ll = 0.0
        self.flips = 0
        self.added_contrib: Optional[DeltaContrib] = None
        self.delta = self._initial_delta()

    @property
    def hypotheses_scanned(self) -> int:
        return (self.flips + 1) * self.problem.n_components

    # Compatibility views in object-path terms (tests and diagnostics;
    # the kernels maintain interior-path / set-level state instead).
    @property
    def flow_b(self) -> np.ndarray:
        """Failed-path count per flow (object-view semantics)."""
        return self._set_b[self.set_of_flow]

    @property
    def path_nfailed(self) -> np.ndarray:
        """Failed-component count per *full* path (object-view ids)."""
        if not self.problem.compressed:
            return self._path_nfailed
        hyp = self.hypothesis
        table = self.problem.path_table
        return np.fromiter(
            (sum(c in hyp for c in comps) for comps in table),
            dtype=np.int64,
            count=len(table),
        )

    @classmethod
    def rebase(
        cls,
        problem: InferenceProblem,
        prev: "VectorJleState",
        removed_flows: np.ndarray,
        removed_weights: np.ndarray,
        added_flows: np.ndarray,
        added_weights: np.ndarray,
        removed_contrib: Optional[DeltaContrib] = None,
    ) -> "VectorJleState":
        """Warm-start a state on a new sliding-window problem.

        Carries the previous window's hypothesis over and rebases Δ
        incrementally instead of re-running :meth:`_initial_delta`
        (the dominant cost of a cold state at scale):

        * structural state (failed-path / failed-member counts) is
          rebuilt under the carried hypothesis on the new problem's
          numbering - O(paths of H) scatter adds;
        * Δ is linear in group weight and each group's unit
          contribution depends only on its set structure in *global*
          component ids plus the hypothesis, so
          ``Δ_new = Δ_prev - contrib(expired groups on prev state)
          + contrib(appended groups on new state)`` is exact up to
          float summation order.

        ``removed_flows`` index ``prev.problem``'s grouped flows with
        the weight each lost; ``added_flows`` index ``problem``'s with
        the weight each gained (a :class:`repro.core.window
        .WindowUpdate` supplies exactly these).  The result converges
        to the same hypotheses as a cold state; only float rounding of
        Δ differs.

        ``removed_contrib`` may pass the :class:`DeltaContrib` the
        expiring chunk's rows were priced at when *they* were appended
        (exposed as :attr:`added_contrib` on the rebased state).  When
        its recorded hypothesis still matches ``prev``'s, the cached
        vector is bit-identical to re-pricing and is subtracted
        directly; a stale hint (the search moved the hypothesis in
        between) is ignored and the rows are re-priced.
        """
        self = cls.__new__(cls)
        VectorArrays.__init__(self, problem, prev.params, prev.kernels.name)
        self.hypothesis = set(prev.hypothesis)
        self.flips = prev.flips
        self._rebuild_structural()

        # The normalized ll is a weighted per-flow sum (plus a prior
        # term that doesn't change under rebase), so it moves by the
        # expired/appended groups' own contributions - priced by the
        # same pass that prices their Δ contributions.
        delta = prev.delta.copy()
        ll = prev.ll
        removed = np.asarray(removed_flows, dtype=np.int64)
        if len(removed):
            if (
                removed_contrib is not None
                and removed_contrib.hypothesis == prev.hypothesis
            ):
                delta -= removed_contrib.delta
                ll -= removed_contrib.ll
            else:
                contrib, base_ll = prev._delta_contrib(
                    removed, np.asarray(removed_weights, dtype=np.float64)
                )
                delta -= contrib
                ll -= base_ll
        added = np.asarray(added_flows, dtype=np.int64)
        self.added_contrib: Optional[DeltaContrib] = None
        if len(added):
            contrib, base_ll = self._delta_contrib(
                added, np.asarray(added_weights, dtype=np.float64)
            )
            delta += contrib
            ll += base_ll
            self.added_contrib = DeltaContrib(
                contrib, base_ll, frozenset(self.hypothesis)
            )
        self.delta = delta
        self.ll = ll
        return self

    def _rebuild_structural(self) -> None:
        """Rebuild the failed-path / failed-member count arrays under
        :attr:`hypothesis` on this state's problem numbering.

        The structural state is a pure function of the hypothesis and
        the problem's set structure - O(paths of H) scatter adds - so
        both :meth:`rebase` (new window numbering) and :meth:`restore`
        (checkpoint recovery) reconstruct it exactly rather than
        serializing it.
        """
        self._path_nfailed = np.zeros(self.n_kernel_paths, dtype=np.int64)
        self._set_e_nfailed = np.zeros(self.n_sets, dtype=np.int64)
        for comp in sorted(self.hypothesis):
            self._path_nfailed[self.comp_paths(comp)] += 1
            esets = self.comp_esets(comp)
            if len(esets):
                self._set_e_nfailed[esets] += 1
        if self.n_sets:
            n_isets = len(self.iset_uoff) - 1
            inst_iset = np.repeat(
                np.arange(n_isets, dtype=np.int64), self.iset_ulen
            )
            iset_b = np.bincount(
                inst_iset,
                weights=self.iset_umult * (self._path_nfailed[self.iset_upids] > 0),
                minlength=n_isets,
            )
            b = iset_b[self.iset_of_set]
            # A failed endpoint component fails every member path.
            full = self._set_e_nfailed > 0
            b[full] = self.set_w[full]
            self._set_b = b.astype(np.int64)
        else:
            self._set_b = np.zeros(0, dtype=np.int64)

    @classmethod
    def restore(
        cls,
        problem: InferenceProblem,
        params: FlockParams,
        hypothesis,
        delta: np.ndarray,
        ll: float,
        flips: int,
        kernel_backend: Optional[str] = None,
    ) -> "VectorJleState":
        """Reconstruct a warm state from checkpointed search facts.

        The serialized facts are exactly the non-recomputable ones:
        the hypothesis, the Δ array (float64, bit-exact), the
        normalized ll, and the flip count.  Structural counters are a
        pure function of hypothesis + problem and are rebuilt here, so
        a monitor restored onto a bit-identical window problem resumes
        localization exactly where the checkpointed one stopped.
        """
        self = cls.__new__(cls)
        VectorArrays.__init__(self, problem, params, kernel_backend)
        delta = np.array(delta, dtype=np.float64, copy=True)
        if delta.shape != (self.n_comps,):
            raise InferenceError(
                f"checkpointed delta has shape {delta.shape}, problem "
                f"has {self.n_comps} component(s) - the checkpoint does "
                "not match this window"
            )
        self.hypothesis = set(int(c) for c in hypothesis)
        self.flips = int(flips)
        self._rebuild_structural()
        self.delta = delta
        self.ll = float(ll)
        self.added_contrib = None
        return self

    def _delta_contrib(
        self, flows: np.ndarray, dw: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        """(Δ contribution, ll contribution) of a weighted flow subset.

        Under the current structural state, flow ``f`` adds
        ``dw_f * (nll(b_f + g_fc) - nll(b_f))`` to Δ[c], where ``g_fc``
        counts ``f``'s still-good member paths containing ``c`` - the
        exact per-flow term the flip bookkeeping maintains, evaluated
        directly.  Contributions are linear in the group weight, which
        is what makes the sliding-window rebase exact: Δ and the
        normalized ll move by the weight deltas of expired/appended
        groups only.  The second return is ``sum(dw_f * nll(b_f))`` -
        the subset's share of the hypothesis ll under the carried
        hypothesis.
        """
        out = np.zeros(self.n_comps, dtype=np.float64)
        flows = np.asarray(flows, dtype=np.int64)
        if len(flows) == 0 or self.n_sets == 0:
            return out, 0.0
        if self.kernels.collapsed:
            return self._delta_contrib_collapsed(flows, dw)
        aff_sets, fsl = np.unique(self.set_of_flow[flows], return_inverse=True)
        local, upids, mult = self.set_instances(aff_sets)
        nf = self._path_nfailed[upids] + self._set_e_nfailed[aff_sets][local]
        failed = nf > 0
        b_set = self._set_b[aff_sets]
        good_count = self.set_w[aff_sets] - b_set
        b = b_set[fsl].astype(np.float64)
        base = self.nll(b, flows)
        base_ll = float(np.dot(dw, base))
        if not np.any(good_count > 0):
            return out, base_ll
        keys, cnts = self._set_pair_lists(
            aff_sets, local, upids, mult, ~failed, good_count
        )
        fl, comps_u, cnt = self._pairs_to_flows(len(aff_sets), fsl, keys, cnts)
        contrib = dw[fl] * (self.nll(b[fl] + cnt, flows[fl]) - base[fl])
        out += np.bincount(comps_u, weights=contrib, minlength=self.n_comps)
        return out, base_ll

    def _delta_contrib_collapsed(
        self, flows: np.ndarray, dw: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        """:meth:`_delta_contrib` priced over collapsed rows."""
        aff_sets, fsl = np.unique(self.set_of_flow[flows], return_inverse=True)
        b = self._set_b[aff_sets][fsl].astype(np.float64)
        base_ll = float(np.dot(dw, self.nll(b, flows)))
        aff_isets = np.unique(self.iset_of_set[aff_sets])
        il, upids, mult = self._iset_instances(aff_isets)
        good = self._path_nfailed[upids] == 0
        iset_b = np.bincount(
            il, weights=mult * ~good, minlength=len(aff_isets)
        )
        e_failed = self._set_e_nfailed[aff_sets] > 0
        out = self._collapsed_delta(
            flows, dw, aff_sets, fsl, e_failed,
            aff_isets, il, upids, mult, good, iset_b,
        )
        return out, base_ll

    def _initial_delta(self) -> np.ndarray:
        if self.problem.n_flows == 0 or self.n_sets == 0:
            return np.zeros(self.n_comps, dtype=np.float64)
        if self.kernels.collapsed:
            flows = np.arange(self.problem.n_flows, dtype=np.int64)
            out, _ = self._delta_contrib_collapsed(flows, self.wt)
            return out
        sets = np.arange(self.n_sets, dtype=np.int64)
        local, upids, mult = self.set_instances(sets)
        good = np.ones(len(upids), dtype=bool)
        keys, cnts = self._set_pair_lists(
            sets, local, upids, mult, good, self.set_w
        )
        fl, comp, cnt = self._pairs_to_flows(
            self.n_sets, self.set_of_flow, keys, cnts
        )
        contrib = self.wt[fl] * self.nll(cnt, fl)
        return np.bincount(comp, weights=contrib, minlength=self.n_comps).astype(
            np.float64
        )

    # ------------------------------------------------------------------
    def addition_gains(self, candidates: np.ndarray) -> np.ndarray:
        gains = self.delta[candidates] + self.prior_gain[candidates]
        if self.hypothesis:
            member = np.fromiter(
                (c in self.hypothesis for c in candidates),
                dtype=bool,
                count=len(candidates),
            )
            gains[member] = -np.inf
        return gains

    def gain(self, comp: int) -> float:
        if comp in self.hypothesis:
            raise InferenceError(
                "gain() prices additions; for a member's removal gain "
                "use removal_gain()"
            )
        return float(self.delta[comp] + self.prior_gain[comp])

    def removal_gain(self, comp: int) -> float:
        """(data - prior) LL change of removing a member, priced
        without flipping - the Gibbs sampler's conditional for a
        component currently in the hypothesis.  Mirrors the reference
        engine's ``gain()`` for members: removal data delta minus the
        prior gain."""
        if comp not in self.hypothesis:
            raise InferenceError(f"component {comp} is not in the hypothesis")
        if self.kernels.collapsed:
            return self._removal_gain_collapsed(comp)
        total = 0.0
        flows = self.comp_flows(comp)
        if len(flows):
            aff_sets, fsl = np.unique(
                self.set_of_flow[flows], return_inverse=True
            )
            local, upids, mult = self.set_instances(aff_sets)
            has = self._membership(comp, aff_sets, local, upids)
            nf_new = (
                self._path_nfailed[upids]
                + self._set_e_nfailed[aff_sets][local]
                - has
            )
            b_new_set = np.bincount(
                local, weights=mult * (nf_new > 0), minlength=len(aff_sets)
            )
            b_new = b_new_set[fsl]
            b_old = self._set_b[aff_sets][fsl].astype(np.float64)
            diff = self.nll(b_new, flows) - self.nll(b_old, flows)
            total = float(np.dot(self.wt[flows], diff))
        return total - float(self.prior_gain[comp])

    def _removal_gain_collapsed(self, comp: int) -> float:
        """:meth:`removal_gain` priced over collapsed rows.

        Affected sets fall into three classes.  Sets that keep a failed
        endpoint after the removal stay at ``b = w`` (zero diff).  Sets
        whose only failed endpoint was ``comp`` move from exactly ``s``
        to the per-iset count (their interior members can't contain
        ``comp``: an endpoint component of a set never sits interior to
        that set's interior set).  Sets with no endpoint failure move
        between the with/without-``comp`` per-iset counts.
        """
        total = 0.0
        flows = self.comp_flows(comp)
        if len(flows):
            aff_sets, fsl = np.unique(
                self.set_of_flow[flows], return_inverse=True
            )
            aff_isets = np.unique(self.iset_of_set[aff_sets])
            il, upids, mult = self._iset_instances(aff_isets)
            path_has = np.zeros(self.n_kernel_paths, dtype=bool)
            path_has[self.comp_paths(comp)] = True
            has_i = path_has[upids]
            nf = self._path_nfailed[upids]
            ni = len(aff_isets)
            iset_b_cur = np.bincount(il, weights=mult * (nf > 0), minlength=ni)
            iset_b_minus = np.bincount(
                il, weights=mult * ((nf - has_i) > 0), minlength=ni
            )
            e_cur = self._set_e_nfailed[aff_sets]
            e_is = np.zeros(len(aff_sets), dtype=np.int64)
            esets = self.comp_esets(comp)
            if len(esets):
                e_is[np.searchsorted(aff_sets, esets)] = 1
            active = (e_cur - e_is) == 0
            wt = self.wt[flows]
            for case_mask, old_is_full in (
                (active & (e_cur > 0), True),
                (active & (e_cur == 0), False),
            ):
                fmask = case_mask[fsl]
                if not np.any(fmask):
                    continue
                sel = flows[fmask]
                rsel, rinv = np.unique(
                    self._row_of_flow[sel], return_inverse=True
                )
                W = np.bincount(rinv, weights=wt[fmask], minlength=len(rsel))
                ril = np.searchsorted(aff_isets, self._row_iset[rsel])
                w_r = self._row_w[rsel]
                s_r = self._row_s[rsel]
                es_r = self._row_es[rsel]
                nll_new = self.kernels.nll(iset_b_minus[ril], w_r, s_r, es_r)
                if old_is_full:
                    nll_old = s_r
                else:
                    nll_old = self.kernels.nll(iset_b_cur[ril], w_r, s_r, es_r)
                total += float(np.dot(W, nll_new - nll_old))
        return total - float(self.prior_gain[comp])

    def _membership(
        self,
        comp: int,
        aff_sets: np.ndarray,
        local: np.ndarray,
        upids: np.ndarray,
    ) -> np.ndarray:
        """Bool per member instance: does its full path contain comp?"""
        path_has = np.zeros(self.n_kernel_paths, dtype=bool)
        path_has[self.comp_paths(comp)] = True
        out = path_has[upids]
        esets = self.comp_esets(comp)
        if len(esets):
            e_has = np.zeros(len(aff_sets), dtype=bool)
            e_has[np.searchsorted(aff_sets, esets)] = True
            out |= e_has[local]
        return out

    # ------------------------------------------------------------------
    def flip(self, comp: int) -> float:
        """Flip ``comp``; returns the (data + prior) LL change."""
        if not 0 <= comp < self.n_comps:
            raise InferenceError(f"component id {comp} out of range")
        if self.kernels.collapsed:
            return self._flip_collapsed(comp)
        adding = comp not in self.hypothesis
        if adding:
            change = float(self.delta[comp] + self.prior_gain[comp])

        affected = self.comp_flows(comp)
        paths_of_comp = self.comp_paths(comp)
        esets_of_comp = self.comp_esets(comp)
        step = 1 if adding else -1
        if len(affected) > 0:
            aff_sets, fsl = np.unique(
                self.set_of_flow[affected], return_inverse=True
            )
            local, upids, mult = self.set_instances(aff_sets)
            has = self._membership(comp, aff_sets, local, upids)
            nf_old = (
                self._path_nfailed[upids] + self._set_e_nfailed[aff_sets][local]
            )
            nf_new = nf_old + step * has
            old_failed = nf_old > 0
            new_failed = nf_new > 0

            b_old_set = np.bincount(
                local, weights=mult * old_failed, minlength=len(aff_sets)
            )
            b_new_set = np.bincount(
                local, weights=mult * new_failed, minlength=len(aff_sets)
            )
            b_old = b_old_set[fsl]
            b_new = b_new_set[fsl]
            wt = self.wt[affected]
            base_old = self.nll(b_old, affected)
            base_new = self.nll(b_new, affected)

            good_old_count = self.set_w[aff_sets] - b_old_set
            if np.any(good_old_count > 0):
                keys, cnts = self._set_pair_lists(
                    aff_sets, local, upids, mult, ~old_failed, good_old_count
                )
                fl, comps_u, cnt = self._pairs_to_flows(
                    len(aff_sets), fsl, keys, cnts
                )
                contrib = wt[fl] * (
                    self.nll(b_old[fl] + cnt, affected[fl]) - base_old[fl]
                )
                self.delta -= np.bincount(
                    comps_u, weights=contrib, minlength=self.n_comps
                )
            good_new_count = self.set_w[aff_sets] - b_new_set
            if np.any(good_new_count > 0):
                keys, cnts = self._set_pair_lists(
                    aff_sets, local, upids, mult, ~new_failed, good_new_count
                )
                fl, comps_u, cnt = self._pairs_to_flows(
                    len(aff_sets), fsl, keys, cnts
                )
                contrib = wt[fl] * (
                    self.nll(b_new[fl] + cnt, affected[fl]) - base_new[fl]
                )
                self.delta += np.bincount(
                    comps_u, weights=contrib, minlength=self.n_comps
                )

            self._set_b[aff_sets] = b_new_set.astype(np.int64)

        self._path_nfailed[paths_of_comp] += step
        if len(esets_of_comp):
            self._set_e_nfailed[esets_of_comp] += step
        if adding:
            self.hypothesis.add(comp)
        else:
            self.hypothesis.discard(comp)
            # After the state reverts, the addition gain of ``comp`` is
            # exactly the negative of the removal change.
            change = -float(self.delta[comp] + self.prior_gain[comp])
        self.ll += change
        self.flips += 1
        return change

    def _flip_collapsed(self, comp: int) -> float:
        """:meth:`flip` with both Δ passes priced over collapsed rows."""
        adding = comp not in self.hypothesis
        if adding:
            change = float(self.delta[comp] + self.prior_gain[comp])

        affected = self.comp_flows(comp)
        paths_of_comp = self.comp_paths(comp)
        esets_of_comp = self.comp_esets(comp)
        step = 1 if adding else -1
        if len(affected) > 0:
            aff_sets, fsl = np.unique(
                self.set_of_flow[affected], return_inverse=True
            )
            aff_isets = np.unique(self.iset_of_set[aff_sets])
            il, upids, mult = self._iset_instances(aff_isets)
            path_has = np.zeros(self.n_kernel_paths, dtype=bool)
            path_has[paths_of_comp] = True
            has_i = path_has[upids]
            nf_old = self._path_nfailed[upids]
            good_old = nf_old == 0
            good_new = (nf_old + step * has_i) == 0
            ni = len(aff_isets)
            iset_b_old = np.bincount(
                il, weights=mult * ~good_old, minlength=ni
            )
            iset_b_new = np.bincount(
                il, weights=mult * ~good_new, minlength=ni
            )
            e_old = self._set_e_nfailed[aff_sets]
            e_is = np.zeros(len(aff_sets), dtype=np.int64)
            if len(esets_of_comp):
                e_is[np.searchsorted(aff_sets, esets_of_comp)] = 1
            e_new = e_old + step * e_is
            wt = self.wt[affected]
            self.delta -= self._collapsed_delta(
                affected, wt, aff_sets, fsl, e_old > 0,
                aff_isets, il, upids, mult, good_old, iset_b_old,
            )
            self.delta += self._collapsed_delta(
                affected, wt, aff_sets, fsl, e_new > 0,
                aff_isets, il, upids, mult, good_new, iset_b_new,
            )
            ii = np.searchsorted(aff_isets, self.iset_of_set[aff_sets])
            b_new_set = np.where(
                e_new > 0, self.set_w[aff_sets], iset_b_new[ii]
            )
            self._set_b[aff_sets] = b_new_set.astype(np.int64)

        self._path_nfailed[paths_of_comp] += step
        if len(esets_of_comp):
            self._set_e_nfailed[esets_of_comp] += step
        if adding:
            self.hypothesis.add(comp)
        else:
            self.hypothesis.discard(comp)
            change = -float(self.delta[comp] + self.prior_gain[comp])
        self.ll += change
        self.flips += 1
        return change


def greedy_local_search(
    state: VectorJleState,
    candidates: np.ndarray,
    max_failures: Optional[int] = None,
    min_gain: float = 0.0,
) -> Prediction:
    """Greedy local search from a (possibly warm) JLE state.

    Extends the paper's add-only greedy loop with removals so a
    warm-started hypothesis can shed components the new window no
    longer supports: each step flips whichever single addition or
    removal improves the LL most, and stops when no flip beats
    ``min_gain``.  From an empty state this reduces exactly to the
    add-only loop (a just-added component's removal gain is its
    addition gain negated, so removals never fire without new
    evidence).  An iteration guard bounds pathological flip cycles.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    scores: Dict[int, float] = {}
    cap = max_failures
    if cap is None:
        cap = len(candidates) + len(state.hypothesis)
    guard = 2 * (len(candidates) + len(state.hypothesis)) + 16
    for _ in range(guard):
        best_comp = -1
        best_gain = min_gain
        removing = False
        if len(candidates) and len(state.hypothesis) < cap:
            gains = state.addition_gains(candidates)
            idx = int(np.argmax(gains))
            if float(gains[idx]) > best_gain:
                best_gain = float(gains[idx])
                best_comp = int(candidates[idx])
        for comp in sorted(state.hypothesis):
            gain = state.removal_gain(comp)
            if gain > best_gain:
                best_gain = gain
                best_comp = comp
                removing = True
        if best_comp < 0:
            break
        state.flip(best_comp)
        if removing:
            scores.pop(best_comp, None)
        else:
            scores[best_comp] = best_gain
    return Prediction(
        components=frozenset(state.hypothesis),
        scores=scores,
        log_likelihood=float(state.ll),
        hypotheses_scanned=state.hypotheses_scanned,
    )


class VectorGreedyWithoutJle(VectorArrays):
    """Greedy search pricing every candidate from scratch each iteration
    (the "greedy only" ablation arm, on the shared vector substrate).

    Candidates are pruned with the :meth:`VectorArrays
    .addition_upper_bounds` array: a component whose bound cannot beat
    the running best gain is skipped without pricing, which leaves the
    selected hypothesis unchanged (the bound over-estimates)."""

    name = "flock-greedy-only"

    def __init__(
        self,
        problem: InferenceProblem,
        params: FlockParams,
        max_failures: Optional[int] = None,
        initial_hypothesis: Optional[Iterable[int]] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        super().__init__(problem, params, kernel_backend)
        self._path_nfailed = np.zeros(self.n_kernel_paths, dtype=np.int64)
        self._set_e_nfailed = np.zeros(self.n_sets, dtype=np.int64)
        self._set_b = np.zeros(self.n_sets, dtype=np.int64)
        self.hypothesis: Set[int] = set()
        self.ll = 0.0
        self._cap = max_failures
        if initial_hypothesis:
            # Warm start: seed the previous window's hypothesis so the
            # greedy loop only prices what changed.
            for comp in sorted(set(initial_hypothesis)):
                self.commit(comp, self.candidate_gain(comp))

    def _newly_bad_counts(
        self, comp: int, flows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(affected sets, per-set newly-failed count, flow set index)."""
        aff_sets, fsl = np.unique(self.set_of_flow[flows], return_inverse=True)
        local, upids, mult = self.set_instances(aff_sets)
        path_has = np.zeros(self.n_kernel_paths, dtype=bool)
        path_has[self.comp_paths(comp)] = True
        has = path_has[upids]
        esets = self.comp_esets(comp)
        if len(esets):
            e_has = np.zeros(len(aff_sets), dtype=bool)
            e_has[np.searchsorted(aff_sets, esets)] = True
            has = has | e_has[local]
        nf = self._path_nfailed[upids] + self._set_e_nfailed[aff_sets][local]
        newly_bad = has & (nf == 0)
        extra_set = np.bincount(
            local, weights=mult * newly_bad, minlength=len(aff_sets)
        )
        return aff_sets, extra_set, fsl

    def candidate_gain(self, comp: int) -> float:
        """LL(H + comp) - LL(H), recomputed over flows(comp)."""
        flows = self.comp_flows(comp)
        if not len(flows):
            return float(self.prior_gain[comp])
        if self.kernels.collapsed:
            return self._candidate_gain_collapsed(comp, flows)
        aff_sets, extra_set, fsl = self._newly_bad_counts(comp, flows)
        b_old = self._set_b[aff_sets][fsl].astype(np.float64)
        extra = extra_set[fsl]
        diff = self.nll(b_old + extra, flows) - self.nll(b_old, flows)
        return float(np.dot(self.wt[flows], diff) + self.prior_gain[comp])

    def _candidate_gain_collapsed(self, comp: int, flows: np.ndarray) -> float:
        """:meth:`candidate_gain` priced over collapsed rows.

        Sets already at ``b = w`` via a failed endpoint are unmoved;
        sets gaining ``comp`` as a failed endpoint jump to exactly
        ``s``; the rest move between the per-iset counts with and
        without ``comp``'s member paths failed.
        """
        aff_sets, fsl = np.unique(self.set_of_flow[flows], return_inverse=True)
        aff_isets = np.unique(self.iset_of_set[aff_sets])
        il, upids, mult = self._iset_instances(aff_isets)
        path_has = np.zeros(self.n_kernel_paths, dtype=bool)
        path_has[self.comp_paths(comp)] = True
        has_i = path_has[upids]
        nf = self._path_nfailed[upids]
        ni = len(aff_isets)
        iset_b_cur = np.bincount(il, weights=mult * (nf > 0), minlength=ni)
        iset_b_plus = np.bincount(
            il, weights=mult * ((nf + has_i) > 0), minlength=ni
        )
        e_cur = self._set_e_nfailed[aff_sets]
        e_is = np.zeros(len(aff_sets), dtype=bool)
        esets = self.comp_esets(comp)
        if len(esets):
            e_is[np.searchsorted(aff_sets, esets)] = True
        active = e_cur == 0
        wt = self.wt[flows]
        total = 0.0
        for case_mask, new_is_full in (
            (active & e_is, True),
            (active & ~e_is, False),
        ):
            fmask = case_mask[fsl]
            if not np.any(fmask):
                continue
            sel = flows[fmask]
            rsel, rinv = np.unique(self._row_of_flow[sel], return_inverse=True)
            W = np.bincount(rinv, weights=wt[fmask], minlength=len(rsel))
            ril = np.searchsorted(aff_isets, self._row_iset[rsel])
            w_r = self._row_w[rsel]
            s_r = self._row_s[rsel]
            es_r = self._row_es[rsel]
            nll_old = self.kernels.nll(iset_b_cur[ril], w_r, s_r, es_r)
            if new_is_full:
                nll_new = s_r
            else:
                nll_new = self.kernels.nll(iset_b_plus[ril], w_r, s_r, es_r)
            total += float(np.dot(W, nll_new - nll_old))
        return total + float(self.prior_gain[comp])

    def commit(self, comp: int, gain: float) -> None:
        flows = self.comp_flows(comp)
        if len(flows):
            aff_sets, extra_set, _ = self._newly_bad_counts(comp, flows)
            self._set_b[aff_sets] += extra_set.astype(np.int64)
        self._path_nfailed[self.comp_paths(comp)] += 1
        esets = self.comp_esets(comp)
        if len(esets):
            self._set_e_nfailed[esets] += 1
        self.hypothesis.add(comp)
        self.ll += gain

    def run(self) -> Prediction:
        candidates = list(self.problem.observed_components)
        cap = self._cap if self._cap is not None else len(candidates)
        ub = self.addition_upper_bounds()
        scanned = 0
        scores: Dict[int, float] = {}
        while len(self.hypothesis) < cap:
            best_comp = -1
            best_gain = 0.0
            for comp in candidates:
                if comp in self.hypothesis:
                    continue
                if ub[comp] <= best_gain:
                    # The bound caps the exact gain, so this candidate
                    # cannot strictly beat the current best.
                    continue
                scanned += 1
                gain = self.candidate_gain(comp)
                if gain > best_gain:
                    best_gain = gain
                    best_comp = comp
            if best_comp < 0:
                break
            self.commit(best_comp, best_gain)
            scores[best_comp] = best_gain
        return Prediction(
            components=frozenset(self.hypothesis),
            scores=scores,
            log_likelihood=self.ll,
            hypotheses_scanned=scanned,
        )
