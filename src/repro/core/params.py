"""Flock model hyperparameters (paper sections 3.2 and 5.2).

Flock has three hyperparameters:

``pg``
    Probability of a packet experiencing a problem on a *good* path
    (no failed component) - models benign/congestion loss.
``pb``
    Probability of a packet experiencing a problem on a *bad* path
    (at least one failed component).  ``pb >> pg``.
``rho``
    A-priori failure probability of a link.  "The priors reduce the
    false positive rate by effectively assigning a lower prior to
    hypotheses with more links."

Devices get "a device prior that is 5x larger on log-scale" - i.e.
``log rho_device = 5 * log rho`` (``rho_device = rho**5``), forcing Flock
"to detect a device failure only when there is stronger evidence for it
than a link failure".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import InferenceError


@dataclass(frozen=True)
class FlockParams:
    """Hyperparameters of Flock's PGM."""

    pg: float = 7e-4
    pb: float = 6e-3
    rho: float = 1e-4
    rho_device: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.pg < 1.0:
            raise InferenceError(f"pg must be in (0, 1), got {self.pg}")
        if not 0.0 < self.pb < 1.0:
            raise InferenceError(f"pb must be in (0, 1), got {self.pb}")
        if self.pb <= self.pg:
            raise InferenceError(
                f"pb must exceed pg (bad paths lose more packets), "
                f"got pg={self.pg}, pb={self.pb}"
            )
        if not 0.0 < self.rho < 0.5:
            raise InferenceError(f"rho must be in (0, 0.5), got {self.rho}")
        if self.rho_device is None:
            object.__setattr__(self, "rho_device", self.rho ** 5)
        elif not 0.0 < self.rho_device < 0.5:
            raise InferenceError("rho_device must be in (0, 0.5)")

    @property
    def link_prior_gain(self) -> float:
        """Log-likelihood change of adding one failed link: ln(rho/(1-rho))."""
        return math.log(self.rho) - math.log1p(-self.rho)

    @property
    def device_prior_gain(self) -> float:
        """Log-likelihood change of adding one failed device."""
        return math.log(self.rho_device) - math.log1p(-self.rho_device)

    def prior_gain(self, is_device: bool) -> float:
        return self.device_prior_gain if is_device else self.link_prior_gain

    def grid_overrides(self) -> dict:
        """The calibratable fields as keyword overrides.

        This is the shape the calibration grids (section 5.2) sweep and
        the scheme registry's ``flock`` factory accepts, so parameter
        presets round-trip through ``--set``-style override dicts.
        """
        return {"pg": self.pg, "pb": self.pb, "rho": self.rho}


#: Calibrated defaults for the per-packet (retransmission) analysis, in the
#: regime of the paper's simulations: good links drop <= 0.01%, failed links
#: drop 0.1%-1%.  pg = 7e-4 matches Theorem 2's guidance pg >= k*p* with
#: path length k ~ 7 and per-link benign rate p* <= 1e-4.
DEFAULT_PER_PACKET = FlockParams(pg=7e-4, pb=6e-3, rho=1e-4)

#: Calibrated defaults for the per-flow (RTT threshold) analysis used in the
#: link-flap scenario: a "bad packet" is one flow whose RTT spiked, which
#: happens rarely on healthy paths and almost surely across a flapping link.
DEFAULT_PER_FLOW = FlockParams(pg=4e-3, pb=0.5, rho=5e-4)
