"""Flock inference: greedy MLE search accelerated by JLE (Algorithm 1).

The greedy loop: "We start from the no-failure hypothesis and extend it
one link at a time ... we set H := H ∪ {l*} where l* is the link
offering the biggest improvement ... When no added link failure improves
the log likelihood of the current hypothesis H, the search terminates."

Priors (section 3.2) fold into the improvement test: adding component
``c`` changes the posterior by ``Δ[c] + ln(ρ_c/(1−ρ_c))``, so the search
stops when every candidate's combined gain is non-positive.

Two interchangeable engines implement the Δ-array bookkeeping:

* ``engine="reference"`` - :class:`repro.core.jle.JleState`, a direct
  transcription of Algorithm 2;
* ``engine="fast"`` - :class:`repro.core.flock_fast.VectorJleState`, a
  NumPy CSR vectorization of the same update rule.

Both produce identical hypotheses (property-tested); "fast" is the
default.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import InferenceError
from ..types import Prediction
from .jle import JleState
from .kernels import resolve_backend
from .params import DEFAULT_PER_PACKET, FlockParams
from .problem import InferenceProblem

_ENGINES = ("fast", "reference")


class FlockInference:
    """Greedy + JLE maximum-likelihood fault localization.

    Parameters
    ----------
    params:
        Model hyperparameters (``pg``, ``pb``, ``rho``).
    engine:
        ``"fast"`` (vectorized) or ``"reference"`` (Algorithm-2 literal).
    max_failures:
        Optional safety cap on hypothesis size.  Flock's inference does
        not need to know the true failure count (section 4.1); this cap
        exists only to bound adversarial inputs.
    min_gain:
        The greedy loop continues while the best combined gain exceeds
        this (0.0 reproduces the paper's stopping rule exactly).
    """

    name = "flock"

    def __init__(
        self,
        params: FlockParams = DEFAULT_PER_PACKET,
        engine: str = "fast",
        max_failures: Optional[int] = None,
        min_gain: float = 0.0,
        kernel_backend: Optional[str] = None,
    ) -> None:
        if engine not in _ENGINES:
            raise InferenceError(f"engine must be one of {_ENGINES}, got {engine!r}")
        if max_failures is not None and max_failures < 0:
            raise InferenceError("max_failures must be non-negative")
        if kernel_backend is not None:
            # Fail fast on unknown/unavailable backends, not per trace.
            resolve_backend(kernel_backend)
        self._params = params
        self._engine = engine
        self._max_failures = max_failures
        self._min_gain = min_gain
        self._kernel_backend = kernel_backend

    @property
    def params(self) -> FlockParams:
        return self._params

    def _make_state(self, problem: InferenceProblem):
        if self._engine == "reference":
            return JleState(problem, self._params)
        from .flock_fast import VectorJleState

        return VectorJleState(problem, self._params, self._kernel_backend)

    def localize(
        self,
        problem: InferenceProblem,
        warm_state: Optional[object] = None,
    ) -> Prediction:
        """Run greedy+JLE MLE search and return the inferred failed set.

        ``warm_state`` optionally supplies an already-rebased
        :class:`~repro.core.flock_fast.VectorJleState` carrying the
        previous window's hypothesis (see :meth:`VectorJleState
        .rebase`); the search then runs as a local search (additions
        *and* removals) from that hypothesis instead of growing from
        empty - the steady-state fast path of the streaming monitor.
        """
        if warm_state is not None:
            from .flock_fast import greedy_local_search

            if warm_state.problem is not problem:
                raise InferenceError(
                    "warm_state must be built on the problem being localized"
                )
            return greedy_local_search(
                warm_state,
                np.asarray(problem.observed_components, dtype=np.int64),
                max_failures=self._max_failures,
                min_gain=self._min_gain,
            )
        state = self._make_state(problem)
        candidates = np.asarray(problem.observed_components, dtype=np.int64)
        if len(candidates) == 0:
            return Prediction.empty()

        cap = self._max_failures
        if cap is None:
            cap = len(candidates)
        scores = {}
        while len(state.hypothesis) < cap:
            gains = state.addition_gains(candidates)
            best_idx = int(np.argmax(gains))
            best_gain = float(gains[best_idx])
            if not best_gain > self._min_gain:
                break
            chosen = int(candidates[best_idx])
            state.flip(chosen)
            scores[chosen] = best_gain

        return Prediction(
            components=frozenset(state.hypothesis),
            scores=scores,
            log_likelihood=float(state.ll),
            hypotheses_scanned=state.hypotheses_scanned,
        )
