"""Gibbs sampling over Flock's PGM, accelerated with JLE.

Section 3.3: "Using JLE, we were able to accelerate ... Gibbs sampling
for Flock ... by multiple orders of magnitude.  We ended up using Greedy
for Flock because ... for Gibbs sampling, it's hard to bound the number
of iterations required for convergence."

Each Gibbs step resamples one component's failed/not-failed bit from its
conditional posterior given all the others; the log-odds of that
conditional is exactly the JLE flip gain (data Δ + prior), so a step
costs only O(flows(comp) * T) on the incrementally-maintained state.
After burn-in, per-component marginal inclusion frequencies are
thresholded into a prediction.

Sweeps run *batched* by default: between flips the JLE state is
constant, so the flip gains of a whole sweep segment are one vectorized
gather from the Δ array, the accept probabilities one vectorized
sigmoid, and the segment's first state change is found with a single
argmax instead of a Python-level step loop.  Removal gains (the only
per-step kernel work) are memoized until the next flip invalidates
them, since they are pure functions of the chain state.  The batched
chain visits the identical (component, uniform) sequence as the
sequential one, so predictions match step for step;
``batch_sweeps=False`` keeps the sequential loop for the equivalence
test."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import InferenceError
from ..types import Prediction
from .flock_fast import VectorJleState
from .kernels import resolve_backend
from .params import DEFAULT_PER_PACKET, FlockParams
from .problem import InferenceProblem


def _sigmoid_vec(x: np.ndarray) -> np.ndarray:
    """Numerically-stable sigmoid, two-branch form per element.

    Both sweep modes (batched and sequential) evaluate acceptance
    probabilities through this one implementation, so their chains
    cannot diverge over exp() rounding differences.
    """
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out


def _sigmoid(x: float) -> float:
    return float(_sigmoid_vec(np.asarray([x]))[0])


class GibbsInference:
    """MCMC fault localization via Gibbs sampling with JLE flip gains."""

    name = "flock-gibbs"

    def __init__(
        self,
        params: FlockParams = DEFAULT_PER_PACKET,
        sweeps: int = 30,
        burn_in: int = 10,
        threshold: float = 0.5,
        seed: int = 0,
        batch_sweeps: bool = True,
        kernel_backend: Optional[str] = None,
    ) -> None:
        if sweeps <= burn_in:
            raise InferenceError("sweeps must exceed burn_in")
        if not 0.0 < threshold <= 1.0:
            raise InferenceError("threshold must be in (0, 1]")
        self._params = params
        self._sweeps = sweeps
        self._burn_in = burn_in
        self._threshold = threshold
        self._seed = seed
        self._batch_sweeps = batch_sweeps
        if kernel_backend is not None:
            resolve_backend(kernel_backend)
        self._kernel_backend = kernel_backend

    @property
    def params(self) -> FlockParams:
        return self._params

    def localize(
        self,
        problem: InferenceProblem,
        initial_state: VectorJleState = None,
    ) -> Prediction:
        """Sample the chain and threshold marginals into a prediction.

        ``initial_state`` optionally warm-starts the chain from a
        rebased :class:`VectorJleState` (previous window's hypothesis
        and Δ).  The warm chain initializes at that hypothesis instead
        of the empty one, so it is a *different* Markov chain than a
        cold run - marginals agree at convergence (enough kept sweeps)
        but not step for step.
        """
        rng = np.random.default_rng(self._seed)
        if initial_state is None:
            state = VectorJleState(problem, self._params, self._kernel_backend)
        else:
            if initial_state.problem is not problem:
                raise InferenceError(
                    "initial_state must be built on the problem being "
                    "localized"
                )
            state = initial_state
        candidates = np.asarray(problem.observed_components, dtype=np.int64)
        if not len(candidates):
            return Prediction.empty()

        # Array state: hypothesis membership and per-sweep inclusion
        # counts accumulate as whole-array operations; only the flip
        # chain itself is sequential (it is the Markov chain).
        in_hyp = np.zeros(problem.n_components, dtype=bool)
        for comp in state.hypothesis:
            in_hyp[comp] = True
        inclusion = np.zeros(problem.n_components, dtype=np.int64)
        # Removal gains are pure functions of the chain state, so they
        # stay valid until the next flip.
        removal_cache: dict = {}

        def removal_gain(comp: int) -> float:
            gain = removal_cache.get(comp)
            if gain is None:
                gain = state.removal_gain(comp)
                removal_cache[comp] = gain
            return gain

        kept_samples = 0
        for sweep in range(self._sweeps):
            order = rng.permutation(len(candidates))
            # One uniform per candidate, pre-drawn: the generator fills
            # arrays element-wise, so the stream matches the historical
            # per-step rng.random() calls exactly.
            draws = rng.random(len(candidates))
            if self._batch_sweeps:
                self._run_sweep_batched(
                    state, candidates, order, draws, in_hyp,
                    removal_gain, removal_cache,
                )
            else:
                self._run_sweep_sequential(
                    state, candidates, order, draws, in_hyp,
                )
            if sweep >= self._burn_in:
                kept_samples += 1
                inclusion[in_hyp] += 1

        counts = inclusion[candidates]
        marginals = {
            int(comp): count / kept_samples
            for comp, count in zip(candidates.tolist(), counts.tolist())
        }
        predicted = frozenset(
            comp for comp, p in marginals.items() if p >= self._threshold
        )
        return Prediction(
            components=predicted,
            scores=marginals,
            log_likelihood=float(state.ll),
            hypotheses_scanned=state.flips * 1,
        )

    @staticmethod
    def _run_sweep_batched(
        state, candidates, order, draws, in_hyp, removal_gain, removal_cache
    ) -> None:
        """One sweep, vectorized between flips.

        While no flip happens the state - and hence every step's flip
        gain - is constant, so the whole remaining segment's decisions
        are computed at once and only the first state change is applied
        before rescanning the tail.
        """
        comps_in_order = candidates[order]
        n = len(order)
        pos = 0
        while pos < n:
            seg = comps_in_order[pos:]
            member = in_hyp[seg]
            log_odds = state.delta[seg] + state.prior_gain[seg]
            if np.any(member):
                for j in np.nonzero(member)[0].tolist():
                    log_odds[j] = -removal_gain(int(seg[j]))
            p_failed = _sigmoid_vec(log_odds)
            flips = (draws[pos:] < p_failed) != member
            if not flips.any():
                return
            j = int(np.argmax(flips))
            comp = int(seg[j])
            state.flip(comp)
            in_hyp[comp] = not in_hyp[comp]
            removal_cache.clear()
            pos += j + 1

    @staticmethod
    def _run_sweep_sequential(state, candidates, order, draws, in_hyp) -> None:
        """The historical one-step-at-a-time chain (reference path)."""
        for step, idx in enumerate(order.tolist()):
            comp = int(candidates[idx])
            if in_hyp[comp]:
                # gain of removing; P(failed | rest) via the reverse flip
                log_odds_failed = -state.removal_gain(comp)
            else:
                log_odds_failed = state.gain(comp)
            p_failed = _sigmoid(log_odds_failed)
            want_failed = draws[step] < p_failed
            if want_failed != in_hyp[comp]:
                state.flip(comp)
                in_hyp[comp] = want_failed
