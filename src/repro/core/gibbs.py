"""Gibbs sampling over Flock's PGM, accelerated with JLE.

Section 3.3: "Using JLE, we were able to accelerate ... Gibbs sampling
for Flock ... by multiple orders of magnitude.  We ended up using Greedy
for Flock because ... for Gibbs sampling, it's hard to bound the number
of iterations required for convergence."

Each Gibbs step resamples one component's failed/not-failed bit from its
conditional posterior given all the others; the log-odds of that
conditional is exactly the JLE flip gain (data Δ + prior), so a step
costs only O(flows(comp) * T) on the incrementally-maintained state.
After burn-in, per-component marginal inclusion frequencies are
thresholded into a prediction.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import InferenceError
from ..types import Prediction
from .flock_fast import VectorJleState
from .params import DEFAULT_PER_PACKET, FlockParams
from .problem import InferenceProblem


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


class GibbsInference:
    """MCMC fault localization via Gibbs sampling with JLE flip gains."""

    name = "flock-gibbs"

    def __init__(
        self,
        params: FlockParams = DEFAULT_PER_PACKET,
        sweeps: int = 30,
        burn_in: int = 10,
        threshold: float = 0.5,
        seed: int = 0,
    ) -> None:
        if sweeps <= burn_in:
            raise InferenceError("sweeps must exceed burn_in")
        if not 0.0 < threshold <= 1.0:
            raise InferenceError("threshold must be in (0, 1]")
        self._params = params
        self._sweeps = sweeps
        self._burn_in = burn_in
        self._threshold = threshold
        self._seed = seed

    def localize(self, problem: InferenceProblem) -> Prediction:
        rng = np.random.default_rng(self._seed)
        state = VectorJleState(problem, self._params)
        candidates = np.asarray(problem.observed_components, dtype=np.int64)
        if not len(candidates):
            return Prediction.empty()

        # Array state: hypothesis membership and per-sweep inclusion
        # counts accumulate as whole-array operations; only the flip
        # chain itself is sequential (it is the Markov chain).
        in_hyp = np.zeros(problem.n_components, dtype=bool)
        inclusion = np.zeros(problem.n_components, dtype=np.int64)
        kept_samples = 0
        for sweep in range(self._sweeps):
            order = rng.permutation(len(candidates))
            # One uniform per candidate, pre-drawn: the generator fills
            # arrays element-wise, so the stream matches the historical
            # per-step rng.random() calls exactly.
            draws = rng.random(len(candidates))
            for step, idx in enumerate(order.tolist()):
                comp = int(candidates[idx])
                if in_hyp[comp]:
                    # gain of removing; P(failed | rest) via the reverse flip
                    log_odds_failed = -state.removal_gain(comp)
                else:
                    log_odds_failed = state.gain(comp)
                p_failed = _sigmoid(log_odds_failed)
                want_failed = draws[step] < p_failed
                if want_failed != in_hyp[comp]:
                    state.flip(comp)
                    in_hyp[comp] = want_failed
            if sweep >= self._burn_in:
                kept_samples += 1
                inclusion[in_hyp] += 1

        counts = inclusion[candidates]
        marginals = {
            int(comp): count / kept_samples
            for comp, count in zip(candidates.tolist(), counts.tolist())
        }
        predicted = frozenset(
            comp for comp, p in marginals.items() if p >= self._threshold
        )
        return Prediction(
            components=predicted,
            scores=marginals,
            log_likelihood=float(state.ll),
            hypotheses_scanned=state.flips * 1,
        )
