"""Optional numba backend: njit-compiled fused nll / pair-delta loops.

This module always imports; numba itself is optional.  When numba is
missing, :func:`make_numba_backend` raises :class:`InferenceError` with
an install hint, which the registry surfaces as "registered but not
available" — callers and tests skip it cleanly.

The scalar kernel mirrors :func:`repro.core.model.normalized_flow_ll_fast`
branch for branch (``b <= 0`` -> 0, ``b >= w`` -> ``s`` exactly,
overflowed ``es`` -> logaddexp).  numba's ``math.log`` (libm) may differ
from numpy's vectorized log in the last ulp, so the compiled backend
guarantees prediction-identical localization and ulp-level float
agreement, not bitwise float equality.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import InferenceError

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    njit = None
    HAVE_NUMBA = False


if HAVE_NUMBA:

    @njit(cache=True, fastmath=False)
    def _nll_scalar(b, w, s, es):
        if b >= w:
            return s
        if b <= 0.0:
            return 0.0
        x = ((w - b) + b * es) / w
        if x == np.inf:
            a1 = math.log((w - b) / w)
            a2 = math.log(b / w) + s
            if a1 < a2:
                a1, a2 = a2, a1
            return a1 + math.log1p(math.exp(a2 - a1))
        return math.log(x)

    @njit(cache=True, fastmath=False)
    def _nll_arr(b, w, s, es):
        n = b.shape[0]
        out = np.empty(n, dtype=np.float64)
        for i in range(n):
            out[i] = _nll_scalar(b[i], w[i], s[i], es[i])
        return out

    @njit(cache=True, fastmath=False)
    def _pair_delta(n_comps, comps, rows, cnt, weight, b, w, s, es, base):
        out = np.zeros(n_comps, dtype=np.float64)
        for k in range(comps.shape[0]):
            r = rows[k]
            v = _nll_scalar(b[r] + cnt[k], w[r], s[r], es[r])
            out[comps[k]] += weight[r] * (v - base[r])
        return out


class NumbaBackend:
    """Collapsed-row layout with compiled inner loops."""

    name = "numba"
    collapsed = True

    def nll(self, b, w, s, es):
        return _nll_arr(
            np.asarray(b, dtype=np.float64),
            np.asarray(w, dtype=np.float64),
            np.asarray(s, dtype=np.float64),
            np.asarray(es, dtype=np.float64),
        )

    def pair_delta(self, n_comps, comps, rows, cnt, weight, b, w, s, es, base):
        return _pair_delta(
            int(n_comps),
            np.asarray(comps, dtype=np.int64),
            np.asarray(rows, dtype=np.int64),
            np.asarray(cnt, dtype=np.float64),
            np.asarray(weight, dtype=np.float64),
            np.asarray(b, dtype=np.float64),
            np.asarray(w, dtype=np.float64),
            np.asarray(s, dtype=np.float64),
            np.asarray(es, dtype=np.float64),
            np.asarray(base, dtype=np.float64),
        )


def make_numba_backend() -> NumbaBackend:
    """Factory for the registry; raises when numba is not installed."""
    if not HAVE_NUMBA:
        raise InferenceError(
            "kernel backend 'numba' needs the numba package "
            "(pip install 'repro-flock[numba]'); "
            "use --kernel-backend collapsed for the pure-numpy fast tier"
        )
    return NumbaBackend()
