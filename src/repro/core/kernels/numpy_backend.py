"""Pure-numpy kernel backends (reference + collapsed-row layout)."""

from __future__ import annotations

import numpy as np

from ..model import normalized_flow_ll_fast


class NumpyBackend:
    """The reference backend: engines keep their uncollapsed loops."""

    name = "numpy"
    collapsed = False

    def nll(self, b, w, s, es):
        return normalized_flow_ll_fast(b, w, s, es)

    def pair_delta(self, n_comps, comps, rows, cnt, weight, b, w, s, es, base):
        contrib = weight[rows] * (
            normalized_flow_ll_fast(b[rows] + cnt, w[rows], s[rows], es[rows])
            - base[rows]
        )
        return np.bincount(comps, weights=contrib, minlength=n_comps)


class CollapsedNumpyBackend(NumpyBackend):
    """Same primitives; engines feed collapsed likelihood rows."""

    name = "collapsed"
    collapsed = True
