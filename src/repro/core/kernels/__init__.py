"""Kernel backend registry for the localization hot loops.

The vectorized inference engines (:mod:`repro.core.flock_fast`) spend
essentially all of their time in two primitives:

``nll(b, w, s, es)``
    The elementwise normalized negative log-likelihood kernel — the
    vector form of :func:`repro.core.model.normalized_flow_ll_fast`.

``pair_delta(...)``
    The (row, comp) pair scatter at the heart of the Δ build and flip
    pricing: for every pair ``k``, accumulate
    ``W[row] * (nll(b[row] + cnt[k]) - base[row])`` into ``out[comp[k]]``.

A :class:`KernelBackend` bundles implementations of both.  Three
backends are registered:

``numpy``
    The reference.  Engines run their original uncollapsed set-granular
    code paths, bit-for-bit identical to every result the equivalence
    suite has pinned since PR 5.

``collapsed``
    Same numpy primitives, but the engines switch to collapsed
    likelihood rows: flows sharing an interior set and an observation
    bucket are folded into one row with a summed weight, shrinking the
    nll working set from flows to unique rows.  Accumulation order
    changes, so results agree with ``numpy`` to float tolerance while
    predictions stay identical — up to exactly-tied hypotheses
    (symmetric candidates at bitwise-equal likelihood), whose
    tie-break rides on rounding noise under any reordering.

``numba``
    Collapsed rows with ``@njit``-compiled fused loops for both
    primitives.  Optional: registered always, constructible only when
    numba is importable, and skipped cleanly everywhere else.

Selection order: explicit ``kernel_backend=`` argument, then the
``REPRO_KERNEL_BACKEND`` environment variable, then ``numpy``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Protocol

import numpy as np

from ...errors import InferenceError

ENV_VAR = "REPRO_KERNEL_BACKEND"
DEFAULT_BACKEND = "numpy"


class KernelBackend(Protocol):
    """The two hot-loop primitives every backend must provide.

    ``collapsed`` tells the engine which data layout to feed the
    backend: ``False`` keeps the original per-set uncollapsed pair
    loops, ``True`` switches to collapsed likelihood rows.
    """

    name: str
    collapsed: bool

    def nll(
        self,
        b: np.ndarray,
        w: np.ndarray,
        s: np.ndarray,
        es: np.ndarray,
    ) -> np.ndarray:
        """Elementwise normalized nll for bad counts ``b``."""
        ...

    def pair_delta(
        self,
        n_comps: int,
        comps: np.ndarray,
        rows: np.ndarray,
        cnt: np.ndarray,
        weight: np.ndarray,
        b: np.ndarray,
        w: np.ndarray,
        s: np.ndarray,
        es: np.ndarray,
        base: np.ndarray,
    ) -> np.ndarray:
        """Scatter ``weight[row]*(nll(b[row]+cnt)-base[row])`` by comp.

        ``comps``/``rows``/``cnt`` are parallel pair arrays; the
        accumulation order is the input pair order (the same order
        ``np.bincount`` uses), so numpy and compiled backends agree.
        """
        ...


_REGISTRY: Dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name`` (last one wins)."""
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def backend_names() -> List[str]:
    """All registered backend names, available or not."""
    return sorted(_REGISTRY)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and constructible here."""
    if name not in _REGISTRY:
        return False
    try:
        _instance(name)
    except InferenceError:
        return False
    return True


def available_backend_names() -> List[str]:
    """Registered backends whose dependencies are importable."""
    return [name for name in backend_names() if backend_available(name)]


def _instance(name: str) -> KernelBackend:
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = _REGISTRY[name]()
        _INSTANCES[name] = backend
    return backend


def resolve_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend: explicit arg > ``REPRO_KERNEL_BACKEND`` > numpy."""
    if name is None:
        name = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    if name not in _REGISTRY:
        raise InferenceError(
            f"unknown kernel backend {name!r}; registered: "
            + ", ".join(backend_names())
        )
    return _instance(name)


from . import numpy_backend as _numpy_backend  # noqa: E402
from . import numba_backend as _numba_backend  # noqa: E402

register_backend("numpy", _numpy_backend.NumpyBackend)
register_backend("collapsed", _numpy_backend.CollapsedNumpyBackend)
register_backend("numba", _numba_backend.make_numba_backend)

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "KernelBackend",
    "available_backend_names",
    "backend_available",
    "backend_names",
    "register_backend",
    "resolve_backend",
]
