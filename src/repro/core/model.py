"""Likelihood math of Flock's 3-layer Bayesian PGM (paper section 3.2).

The probability of a flow observing ``r`` bad packets out of ``t`` sent,
over a path set of ``w`` paths of which a hypothesis fails ``b``, is
(paper Eq. 1, with the paths grouped by failed/not-failed):

    P[F=(r,t) | H] = (b/w) * pb^r (1-pb)^(t-r) + ((w-b)/w) * pg^r (1-pg)^(t-r)

All schemes work with the log likelihood *normalized by the no-failure
hypothesis* ("We normalize all likelihoods by the likelihood of the
no-failure hypothesis ... to cancel out any flow whose path set does not
include any failed links").  Dividing by ``pg^r (1-pg)^(t-r)`` leaves a
quantity that depends on the flow only through its *evidence score*

    s = r*ln(pb/pg) + (t-r)*ln((1-pb)/(1-pg))

and on the hypothesis only through ``b``:

    nll(b; w, s) = ln( (w-b)/w + (b/w) * e^s )
                 = logaddexp( ln((w-b)/w), ln(b/w) + s )

``nll(0) = 0`` and ``nll(w) = s`` exactly.  This is the memoization that
powers JLE: "the effect on a flow's likelihood depends only on the
number of failed paths, not the specific failed links."
"""

from __future__ import annotations

import math
from typing import Iterable, Set

import numpy as np

from ..errors import InferenceError
from .params import FlockParams


def evidence_score(r: int, t: int, params: FlockParams) -> float:
    """Per-flow evidence score ``s`` (scalar).

    Positive when the flow's loss pattern is better explained by a bad
    path, negative when better explained by a good path.
    """
    if not 0 <= r <= t:
        raise InferenceError(f"need 0 <= r <= t, got r={r}, t={t}")
    return r * math.log(params.pb / params.pg) + (t - r) * math.log(
        (1.0 - params.pb) / (1.0 - params.pg)
    )


def evidence_scores(
    r: np.ndarray, t: np.ndarray, params: FlockParams
) -> np.ndarray:
    """Vectorized :func:`evidence_score`."""
    r = np.asarray(r, dtype=np.float64)
    t = np.asarray(t, dtype=np.float64)
    gain = math.log(params.pb / params.pg)
    penalty = math.log((1.0 - params.pb) / (1.0 - params.pg))
    return r * gain + (t - r) * penalty


def _logaddexp(x: float, y: float) -> float:
    if x < y:
        x, y = y, x
    return x + math.log1p(math.exp(y - x))


def normalized_flow_ll(b: int, w: int, s: float) -> float:
    """Normalized log likelihood of one flow with ``b`` of ``w`` paths failed."""
    if w <= 0:
        raise InferenceError("a flow must have at least one path")
    if b <= 0:
        return 0.0
    if b >= w:
        return s
    return _logaddexp(math.log((w - b) / w), math.log(b / w) + s)


def normalized_flow_ll_vec(
    b: np.ndarray, w: np.ndarray, s: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`normalized_flow_ll` over aligned arrays."""
    b = np.asarray(b, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    s = np.asarray(s, dtype=np.float64)
    out = np.zeros(np.broadcast(b, w, s).shape)
    full = b >= w
    mid = (b > 0) & ~full
    if np.any(full):
        out[full] = np.broadcast_to(s, out.shape)[full]
    if np.any(mid):
        bm = b[mid]
        wm = np.broadcast_to(w, out.shape)[mid]
        sm = np.broadcast_to(s, out.shape)[mid]
        out[mid] = np.logaddexp(np.log((wm - bm) / wm), np.log(bm / wm) + sm)
    return out


def evidence_exp(s: np.ndarray) -> np.ndarray:
    """Per-flow ``exp(s)``, precomputed once for the fast nll kernel.

    Overflows to ``inf`` for extreme positive scores; the fast kernel
    falls back to ``logaddexp`` on those rows.
    """
    with np.errstate(over="ignore"):
        return np.exp(np.asarray(s, dtype=np.float64))


def normalized_flow_ll_fast(
    b: np.ndarray, w: np.ndarray, s: np.ndarray, es: np.ndarray
) -> np.ndarray:
    """:func:`normalized_flow_ll_vec` with ``exp(s)`` hoisted out.

    Evaluates ``log(((w-b) + b*e^s) / w)`` in one full-array pass - one
    log per element instead of two logs plus a logaddexp - using the
    caller's precomputed ``es = exp(s)`` (per-flow, so the hot kernels
    pay the transcendental once per problem instead of once per pair).
    ``b == 0`` rows come out exactly 0 (``log(w/w)``), ``b >= w`` rows
    are patched to exactly ``s``, and rows whose ``es`` overflowed take
    the logaddexp path.  Agrees with :func:`normalized_flow_ll_vec` to
    ulp-level accuracy.

    All four arguments must be aligned 1-D arrays (no broadcasting).
    """
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
        out = np.log(((w - b) + b * es) / w)
    # Non-finite rows are the overflow cases: b == 0 with es == inf
    # (0*inf = NaN; the exact value is 0), and b > 0 where es or the
    # product b*es overflowed (out = inf; take the logaddexp path).
    nonfinite = ~np.isfinite(out)
    if nonfinite.any():
        out[nonfinite & (b <= 0)] = 0.0
        fix = nonfinite & (b > 0) & (b < w)
        if fix.any():
            bf = b[fix]
            wf = w[fix]
            out[fix] = np.logaddexp(
                np.log((wf - bf) / wf), np.log(bf / wf) + s[fix]
            )
    full = b >= w
    if full.any():
        out[full] = s[full]
    return out


class LikelihoodModel:
    """Full-hypothesis likelihood evaluation over an inference problem.

    This is the slow, obviously-correct evaluator used by Sherlock's
    exhaustive search and by the test suite to validate the JLE engine's
    incremental bookkeeping.
    """

    def __init__(self, problem, params: FlockParams) -> None:
        self._problem = problem
        self._params = params
        self._scores = evidence_scores(problem.bad_packets, problem.packets_sent, params)

    @property
    def params(self) -> FlockParams:
        return self._params

    def flow_score(self, flow: int) -> float:
        return float(self._scores[flow])

    def flow_ll(self, flow: int, hypothesis: Set[int]) -> float:
        """Normalized log likelihood contribution of one flow (unweighted)."""
        problem = self._problem
        b = 0
        path_ids = problem.flow_paths[flow]
        for pid in path_ids:
            if problem.path_component_sets[pid] & hypothesis:
                b += 1
        return normalized_flow_ll(b, len(path_ids), float(self._scores[flow]))

    def log_likelihood(
        self, hypothesis: Iterable[int], include_prior: bool = True
    ) -> float:
        """Normalized log likelihood of a hypothesis (sum over all flows).

        Only flows intersecting the hypothesis contribute (normalization
        cancels the rest), so the cost is O(|flows touching H| * T).
        """
        problem = self._problem
        hyp = set(hypothesis)
        total = 0.0
        if hyp:
            touched: Set[int] = set()
            for comp in hyp:
                touched.update(problem.flows_by_comp.get(comp, ()))
            for flow in touched:
                total += problem.weights[flow] * self.flow_ll(flow, hyp)
        if include_prior:
            for comp in hyp:
                total += self._params.prior_gain(problem.is_device(comp))
        return total
