"""Flock's core: PGM model, inference problem, and MLE inference engines."""

from .analysis import (
    Theorem2Report,
    check_theorem2,
    max_recoverable_failures,
    traffic_skew,
    vertex_cover_gadget,
)
from .flock import FlockInference
from .gibbs import GibbsInference
from .greedy_nojle import GreedyWithoutJle
from .jle import JleState
from .model import (
    LikelihoodModel,
    evidence_score,
    evidence_scores,
    normalized_flow_ll,
    normalized_flow_ll_vec,
)
from .params import DEFAULT_PER_FLOW, DEFAULT_PER_PACKET, FlockParams
from .problem import InferenceProblem

__all__ = [
    "FlockParams",
    "DEFAULT_PER_PACKET",
    "DEFAULT_PER_FLOW",
    "InferenceProblem",
    "FlockInference",
    "GreedyWithoutJle",
    "GibbsInference",
    "JleState",
    "LikelihoodModel",
    "evidence_score",
    "evidence_scores",
    "normalized_flow_ll",
    "normalized_flow_ll_vec",
    "traffic_skew",
    "max_recoverable_failures",
    "check_theorem2",
    "Theorem2Report",
    "vertex_cover_gadget",
]
