"""The shared inference-problem representation.

Every localization scheme consumes an :class:`InferenceProblem` built
from a list of :class:`~repro.types.FlowObservation`.  The construction

* interns distinct component-paths and path sets (datacenter traces have
  millions of flows over thousands of distinct paths),
* groups identical observations - same path set, same (r, t), same
  analysis - into one weighted flow, which preserves every scheme's
  output exactly (log likelihoods, votes and least-squares terms are all
  additive) while shrinking the working set dramatically, and
* builds the inverted indexes (component -> flows, component -> paths)
  that JLE's update rule walks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import InferenceError
from ..routing.paths import PathTable
from ..types import FlowObservation, TelemetryKind


class InferenceProblem:
    """Immutable, indexed view of a telemetry snapshot.

    Attributes
    ----------
    n_components:
        Size of the component id space (``topology.n_components``).
    n_links:
        Boundary between link ids and device ids.
    flow_paths:
        Per (grouped) flow: tuple of interned path ids, with multiplicity
        (``w`` = its length; a path id may repeat when two ECMP node
        paths map to the same component set).
    bad_packets / packets_sent / weights:
        Aligned int arrays: ``r``, ``t`` and the group multiplicity.
    exact:
        Aligned bool array: True when the flow's path is known exactly.
    """

    def __init__(
        self,
        n_components: int,
        n_links: int,
        path_table: PathTable,
        flow_paths: List[Tuple[int, ...]],
        bad_packets: np.ndarray,
        packets_sent: np.ndarray,
        weights: np.ndarray,
        exact: np.ndarray,
        kinds: List[TelemetryKind],
    ) -> None:
        self.n_components = n_components
        self.n_links = n_links
        self.path_table = path_table
        self.flow_paths = flow_paths
        self.bad_packets = bad_packets
        self.packets_sent = packets_sent
        self.weights = weights
        self.exact = exact
        self.kinds = kinds

        self.path_component_sets: List[FrozenSet[int]] = [
            frozenset(comps) for comps in path_table
        ]
        self._build_indexes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_observations(
        cls,
        observations: Sequence[FlowObservation],
        n_components: int,
        n_links: int,
    ) -> "InferenceProblem":
        if n_links > n_components:
            raise InferenceError("n_links cannot exceed n_components")
        path_table = PathTable()
        grouped: Dict[Tuple, List] = {}
        for obs in observations:
            path_ids = tuple(path_table.intern(p) for p in obs.path_set)
            for path in obs.path_set:
                for comp in path:
                    if not 0 <= comp < n_components:
                        raise InferenceError(
                            f"component id {comp} outside [0, {n_components})"
                        )
            key = (path_ids, obs.bad_packets, obs.packets_sent, obs.kind)
            entry = grouped.get(key)
            if entry is None:
                grouped[key] = [1]
            else:
                entry[0] += 1

        flow_paths: List[Tuple[int, ...]] = []
        bad: List[int] = []
        sent: List[int] = []
        weights: List[int] = []
        exact: List[bool] = []
        kinds: List[TelemetryKind] = []
        for (path_ids, r, t, kind), (count,) in grouped.items():
            flow_paths.append(path_ids)
            bad.append(r)
            sent.append(t)
            weights.append(count)
            exact.append(len(path_ids) == 1)
            kinds.append(kind)
        return cls(
            n_components=n_components,
            n_links=n_links,
            path_table=path_table,
            flow_paths=flow_paths,
            bad_packets=np.asarray(bad, dtype=np.int64),
            packets_sent=np.asarray(sent, dtype=np.int64),
            weights=np.asarray(weights, dtype=np.int64),
            exact=np.asarray(exact, dtype=bool),
            kinds=kinds,
        )

    def _build_indexes(self) -> None:
        flows_by_comp: Dict[int, List[int]] = {}
        paths_by_comp: Dict[int, List[int]] = {}
        comps_by_flow: List[Tuple[int, ...]] = []
        for pid, comps in enumerate(self.path_table):
            for comp in comps:
                paths_by_comp.setdefault(comp, []).append(pid)
        for flow, path_ids in enumerate(self.flow_paths):
            union: set = set()
            for pid in path_ids:
                union.update(self.path_table.components(pid))
            comps_by_flow.append(tuple(sorted(union)))
            for comp in union:
                flows_by_comp.setdefault(comp, []).append(flow)
        self.flows_by_comp: Dict[int, List[int]] = flows_by_comp
        self.paths_by_comp: Dict[int, List[int]] = paths_by_comp
        self.comps_by_flow: List[Tuple[int, ...]] = comps_by_flow

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_flows(self) -> int:
        """Number of grouped flows."""
        return len(self.flow_paths)

    @property
    def total_flows(self) -> int:
        """Number of underlying observations (sum of group weights)."""
        return int(self.weights.sum())

    @property
    def n_paths(self) -> int:
        return len(self.path_table)

    def is_device(self, comp: int) -> bool:
        return comp >= self.n_links

    @property
    def observed_components(self) -> Tuple[int, ...]:
        """Components that at least one flow can blame."""
        return tuple(sorted(self.flows_by_comp))

    def exact_flow_indices(self) -> np.ndarray:
        """Indices of flows whose path is known exactly.

        007 and NetBouncer only consume these: their published algorithms
        have no notion of path uncertainty (paper section 6.2).
        """
        return np.nonzero(self.exact)[0]

    def flow_pathset_size(self, flow: int) -> int:
        return len(self.flow_paths[flow])

    def describe(self) -> str:
        """One-line summary, handy in logs and experiment reports."""
        return (
            f"InferenceProblem(flows={self.total_flows} grouped to "
            f"{self.n_flows}, paths={self.n_paths}, "
            f"components={len(self.flows_by_comp)} observed of "
            f"{self.n_components})"
        )
