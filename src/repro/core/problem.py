"""The shared inference-problem representation.

Every localization scheme consumes an :class:`InferenceProblem`.  The
construction

* interns distinct component-paths and path sets (datacenter traces have
  millions of flows over thousands of distinct paths),
* groups identical observations - same path set, same (r, t), same
  analysis - into one weighted flow, which preserves every scheme's
  output exactly (log likelihoods, votes and least-squares terms are all
  additive) while shrinking the working set dramatically, and
* builds the inverted indexes (component -> flows, component -> paths)
  that JLE's update rule walks.

The problem's primary representation is columnar: CSR arrays for
path -> components, flow -> path ids, component -> flows and
component -> paths, plus aligned per-flow count arrays.  The vectorized
kernels (:mod:`repro.core.flock_fast`) consume the arrays directly; the
object views the reference engines and baselines walk (``path_table``,
``flow_paths``, ``flows_by_comp``, ...) are lazy adapters materialized
from the arrays on first access, with contents identical to what the
historical per-flow construction produced.

Two constructors share the representation: :meth:`InferenceProblem
.from_batch` is the columnar path (grouping is an ``np.unique`` over
packed key columns; per-observation work is array algebra), and
:meth:`InferenceProblem.from_observations` the object path kept for
deserialized datasets and hand-built test problems.  Both produce
bit-identical problems for the same logical input: local path ids and
flow groups are numbered in first-appearance order either way.
"""

from __future__ import annotations

from typing import (
    Dict, FrozenSet, List, Optional, Sequence, Tuple, TYPE_CHECKING,
)

import numpy as np

from ..errors import InferenceError
from ..routing.paths import PathTable, first_seen_ids
from ..types import FlowObservation, TelemetryKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.inputs import ObservationBatch


def _expand_slices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Indices covering [starts[i], starts[i]+lengths[i]) for every i."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    out = np.arange(total, dtype=np.int64)
    out -= np.repeat(ends - lengths, lengths)
    out += np.repeat(starts, lengths)
    return out


def _csr_from_tuples(rows: Sequence[Sequence[int]]) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten int tuples into CSR (values, offsets)."""
    lengths = np.fromiter((len(r) for r in rows), dtype=np.int64, count=len(rows))
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    values = np.fromiter(
        (v for row in rows for v in row), dtype=np.int64, count=int(offsets[-1])
    )
    return values, offsets


def _split_sorted(sorted_keys: np.ndarray, values: np.ndarray) -> Dict[int, List[int]]:
    """Turn aligned (sorted keys, values) arrays into {key: [values]}."""
    uniq, starts = np.unique(sorted_keys, return_index=True)
    out: Dict[int, List[int]] = {}
    stops = np.append(starts[1:], len(values))
    for key, start, stop in zip(uniq.tolist(), starts.tolist(), stops.tolist()):
        out[key] = values[start:stop].tolist()
    return out


def _small_key_argsort(keys: np.ndarray, upper: int) -> np.ndarray:
    """Stable argsort of non-negative keys with known bound ``upper``.

    Keys below 2**16 cast to uint16, which routes numpy to its radix
    sort - several times faster than the comparison sort on the
    small-range keys (component ids, set ids) the problem indexes sort
    by.  The cast is order-preserving, so both paths tie out.
    """
    if 0 < upper <= 1 << 16:
        return np.argsort(keys.astype(np.uint16), kind="stable")
    return np.argsort(keys, kind="stable")


def _row_group_keys(*cols: np.ndarray) -> np.ndarray:
    """One scalar grouping key per row of aligned int columns.

    When the columns' combined bit-width fits an int64, rows pack into
    plain integers (``np.unique`` then sorts natives instead of
    element-compared structured records - an order of magnitude faster
    at window scale).  Otherwise falls back to a structured void view.
    Packing is injective and ordered column-major either way, so both
    paths group identically.
    """
    arrs = [np.asarray(c, dtype=np.int64) for c in cols]
    bits = []
    for a in arrs:
        if len(a) == 0 or a.min() < 0:
            bits = None
            break
        bits.append(max(1, int(a.max()).bit_length()))
    if bits is not None and sum(bits) <= 62:
        key = arrs[0].copy()
        for a, b in zip(arrs[1:], bits[1:]):
            key <<= b
            key |= a
        return key
    mat = np.ascontiguousarray(np.column_stack(arrs))
    return mat.view([(f"f{i}", np.int64) for i in range(mat.shape[1])]).ravel()


def _first_seen_unique_rows(*cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Group equal rows of aligned int columns, first-appearance order.

    Returns ``(rep_rows, counts)``: the index of each group's first row
    (ascending, i.e. insertion order of the object pipeline's grouping
    dict) and the group sizes.
    """
    _, first_idx, counts = np.unique(
        _row_group_keys(*cols), return_index=True, return_counts=True
    )
    order = np.argsort(first_idx, kind="stable")
    return first_idx[order], counts[order]


class SetStageCache:
    """Persistent :meth:`PathSpace.comp_set_parts` intern for streaming.

    A sliding window re-sees almost exactly the path sets of the
    previous cycle, so :meth:`InferenceProblem._from_grouped_compressed`
    can skip its per-gsid python walk: this cache stores each seen
    gsid's endpoint components, interior-set key, and (per distinct
    key) member array in flat CSR form, and a rebuild gathers the whole
    set stage with a handful of vectorized indexing passes.  The gather
    reproduces the walk's output arrays exactly - same interior-set
    first-seen numbering, same segment order - so cached and uncached
    builds stay bit-identical.
    """

    def __init__(self) -> None:
        self._row = np.full(1024, -1, dtype=np.int64)  # gsid -> row
        self._key_index: Dict[Tuple, int] = {}
        self._key_rows: List[int] = []
        self._e_segments: List[np.ndarray] = []  # per row
        self._m_segments: List[np.ndarray] = []  # per key id
        self.key_of_row = np.empty(0, dtype=np.int64)
        self.e_flat = np.empty(0, dtype=np.int64)
        self.e_lens = np.empty(0, dtype=np.int64)
        self.e_off = np.zeros(1, dtype=np.int64)
        self.m_flat = np.empty(0, dtype=np.int64)
        self.m_lens = np.empty(0, dtype=np.int64)
        self.m_off = np.zeros(1, dtype=np.int64)

    def rows(self, space, gsids: np.ndarray) -> np.ndarray:
        """Cache row of every gsid, interning the ones not yet seen."""
        top = int(gsids.max()) + 1 if len(gsids) else 0
        if top > len(self._row):
            grown = np.full(max(top, 2 * len(self._row)), -1, dtype=np.int64)
            grown[: len(self._row)] = self._row
            self._row = grown
        rows = self._row[gsids]
        missing = gsids[rows < 0]
        if len(missing):
            for g in missing.tolist():
                ecomps, members, key = space.comp_set_parts(int(g))
                kid = self._key_index.get(key)
                if kid is None:
                    kid = len(self._m_segments)
                    self._key_index[key] = kid
                    self._m_segments.append(
                        np.asarray(members, dtype=np.int64)
                    )
                self._row[g] = len(self._key_rows)
                self._key_rows.append(kid)
                self._e_segments.append(np.asarray(ecomps, dtype=np.int64))
            self._refresh()
            rows = self._row[gsids]
        return rows

    def _refresh(self) -> None:
        """Extend the flat gather arrays by the newly interned tail.

        Steady-state cycles intern nothing and never land here; the
        trickle of genuinely new sets extends in O(existing + new).
        """
        built = len(self.key_of_row)
        new_e = self._e_segments[built:]
        if new_e:
            self.key_of_row = np.asarray(self._key_rows, dtype=np.int64)
            lens = np.fromiter(
                (len(e) for e in new_e), dtype=np.int64, count=len(new_e)
            )
            self.e_lens = np.concatenate([self.e_lens, lens])
            self.e_off = np.concatenate(
                [self.e_off, self.e_off[-1] + np.cumsum(lens)]
            )
            self.e_flat = np.concatenate([self.e_flat, *new_e])
        built_m = len(self.m_lens)
        new_m = self._m_segments[built_m:]
        if new_m:
            lens = np.fromiter(
                (len(m) for m in new_m), dtype=np.int64, count=len(new_m)
            )
            self.m_lens = np.concatenate([self.m_lens, lens])
            self.m_off = np.concatenate(
                [self.m_off, self.m_off[-1] + np.cumsum(lens)]
            )
            self.m_flat = np.concatenate([self.m_flat, *new_m])


class InferenceProblem:
    """Immutable, indexed view of a telemetry snapshot.

    Two representations share this class:

    * **Uncompressed** (``compressed == False``): every flow's path set
      enumerates full per-host-pair component projections.  This is
      what :meth:`from_observations` builds and what the object views
      expose either way.
    * **Compressed** (``compressed == True``, built by
      :meth:`from_batch`): a flow's path set is stored as *endpoint
      components* (the host links, present on every member path) plus a
      reference to an *interior path set* shared by every host pair of
      the same rack pair.  The problem's path table then holds unique
      interior projections instead of ~pairs x ~w full projections -
      at the paper's simulation scale this collapses ~9M distinct
      component paths to a few hundred thousand.  Interior members are
      de-duplicated per set with an integer multiplicity column; the
      vectorized kernels (:mod:`repro.core.flock_fast`) weight by it.

    Attributes
    ----------
    n_components:
        Size of the component id space (``topology.n_components``).
    n_links:
        Boundary between link ids and device ids.
    path_comps / path_off:
        CSR of component ids per problem path (sorted, de-duplicated
        per path).  Compressed problems store interior projections
        here (plus full projections of exact-path flows).
    bad_packets / packets_sent / weights:
        Aligned int arrays: ``r``, ``t`` and the group multiplicity.
    exact:
        Aligned bool array: True when the flow's path is known exactly.
    flow_paths / path_table / flows_by_comp / paths_by_comp /
    comps_by_flow / path_component_sets:
        Lazy object views over the arrays (reference engines and
        baselines); identical contents to the historical eager build -
        compressed problems expand to the uncompressed view on first
        access.
    """

    def __init__(
        self,
        n_components: int,
        n_links: int,
        path_table: PathTable,
        flow_paths: List[Tuple[int, ...]],
        bad_packets: np.ndarray,
        packets_sent: np.ndarray,
        weights: np.ndarray,
        exact: np.ndarray,
        kinds: List[TelemetryKind],
    ) -> None:
        self.n_components = n_components
        self.n_links = n_links
        self.bad_packets = bad_packets
        self.packets_sent = packets_sent
        self.weights = weights
        self.exact = exact
        self._kinds: Optional[List[TelemetryKind]] = kinds
        self._kind_codes: Optional[np.ndarray] = None
        self._path_table: Optional[PathTable] = path_table
        self._flow_paths: Optional[List[Tuple[int, ...]]] = flow_paths
        self._path_component_sets: Optional[List[FrozenSet[int]]] = None

        # Derive the columnar form, deduplicating flows' path-id tuples
        # so all union work below happens once per distinct set.
        self.path_comps, self.path_off = _csr_from_tuples(list(path_table))
        set_index: Dict[Tuple[int, ...], int] = {}
        unique_sets: List[Tuple[int, ...]] = []
        set_of_flow = np.empty(len(flow_paths), dtype=np.int64)
        for flow, fp in enumerate(flow_paths):
            sid = set_index.get(fp)
            if sid is None:
                sid = len(unique_sets)
                set_index[fp] = sid
                unique_sets.append(fp)
            set_of_flow[flow] = sid
        set_pids, set_off = _csr_from_tuples(unique_sets)
        self._finish(set_of_flow, set_pids, set_off)

    @classmethod
    def _from_arrays(
        cls,
        n_components: int,
        n_links: int,
        path_comps: np.ndarray,
        path_off: np.ndarray,
        set_of_flow: np.ndarray,
        set_pids: np.ndarray,
        set_off: np.ndarray,
        bad_packets: np.ndarray,
        packets_sent: np.ndarray,
        weights: np.ndarray,
        exact: np.ndarray,
        kinds: List[TelemetryKind],
    ) -> "InferenceProblem":
        """Array-native constructor (the columnar pipeline's entry)."""
        self = cls.__new__(cls)
        self.n_components = n_components
        self.n_links = n_links
        self.bad_packets = bad_packets
        self.packets_sent = packets_sent
        self.weights = weights
        self.exact = exact
        self._kinds = kinds
        self._kind_codes = None
        self._path_table = None
        self._flow_paths = None
        self._path_component_sets = None
        self.path_comps = path_comps
        self.path_off = path_off
        self._finish(set_of_flow, set_pids, set_off)
        return self

    def _finish(
        self,
        set_of_flow: np.ndarray,
        set_pids: np.ndarray,
        set_off: np.ndarray,
    ) -> None:
        """Build flow CSR and inverted indexes as whole-array passes."""
        n_comps = np.int64(self.n_components)
        n_flows = len(set_of_flow)
        n_sets = len(set_off) - 1
        n_paths = len(self.path_off) - 1
        self.compressed = False
        self._set_of_flow = set_of_flow
        self._set_pids = set_pids
        self._set_off = set_off

        self._init_comp_paths(n_paths)

        # Per-set sorted component unions via one unique over packed
        # (set, component) keys.
        set_lens = np.diff(set_off)
        pc_lens = np.diff(self.path_off)
        inst_counts = pc_lens[set_pids]
        inst_set = np.repeat(
            np.repeat(np.arange(n_sets, dtype=np.int64), set_lens), inst_counts
        )
        inst_comp = self.path_comps[
            _expand_slices(self.path_off[set_pids], inst_counts)
        ]
        keys = np.unique(inst_set * n_comps + inst_comp)
        self._set_union_comps: Optional[np.ndarray] = keys % n_comps
        sets_u = keys // n_comps
        self._set_union_bounds: Optional[np.ndarray] = np.searchsorted(
            sets_u, np.arange(n_sets + 1, dtype=np.int64)
        )

        self._defer_comp_flows()

        # Unified set layer: the uncompressed problem is the trivial
        # factoring - every set is its own interior set with no
        # endpoint components.
        empty = np.zeros(n_sets + 1, dtype=np.int64)
        self._init_unified(
            set_ecomps=np.empty(0, dtype=np.int64),
            set_eoff=empty,
            iset_of_set=np.arange(n_sets, dtype=np.int64),
            iset_raw_pids=set_pids,
            iset_raw_off=set_off,
        )
        self._init_views()

    def _init_comp_paths(self, n_paths: int) -> None:
        """component -> paths: stable sort keeps pids ascending per key."""
        pc_lens = np.diff(self.path_off)
        pid_of = np.repeat(np.arange(n_paths, dtype=np.int64), pc_lens)
        order = _small_key_argsort(self.path_comps, self.n_components)
        self._comp_path_keys = self.path_comps[order]
        self._comp_path_vals = pid_of[order]
        self._comp_path_bounds = np.searchsorted(
            self._comp_path_keys, np.arange(self.n_components + 1, dtype=np.int64)
        )

    def _defer_comp_flows(self) -> None:
        """Mark the component -> flows index as not-yet-built.

        The full index costs a sort over (flow, union-component) pairs -
        the single most expensive pass of the build - yet steady-state
        consumers (the JLE kernels) only ever ask for a handful of
        components.  :meth:`comp_flows` therefore answers per-component
        queries from cheap set-level indexes until something needs the
        whole index (``flows_by_comp``, ``addition_upper_bounds``),
        which triggers :meth:`_ensure_comp_flows`.  Both paths return
        identical arrays: flows ascending per component.
        """
        self._cf_keys: Optional[np.ndarray] = None
        self._cf_vals: Optional[np.ndarray] = None
        self._cf_bounds: Optional[np.ndarray] = None
        self._comp_set_vals: Optional[np.ndarray] = None
        self._comp_set_bounds: Optional[np.ndarray] = None
        self._set_flow_vals: Optional[np.ndarray] = None
        self._set_flow_bounds: Optional[np.ndarray] = None
        self._comp_flow_cache: Dict[int, np.ndarray] = {}

    def _ensure_comp_flows(self) -> None:
        """component -> flows: expand per-set unions back to flows; a
        stable sort by component keeps flows ascending per key."""
        if self._cf_bounds is not None:
            return
        set_of_flow = self._set_of_flow
        n_flows = len(set_of_flow)
        union_lens = np.diff(self._set_union_bounds)
        flow_counts = union_lens[set_of_flow]
        inst_flow = np.repeat(np.arange(n_flows, dtype=np.int64), flow_counts)
        flow_comp = self._set_union_comps[
            _expand_slices(self._set_union_bounds[set_of_flow], flow_counts)
        ]
        corder = np.argsort(flow_comp, kind="stable")
        self._cf_keys = flow_comp[corder]
        self._cf_vals = inst_flow[corder]
        self._cf_bounds = np.searchsorted(
            self._cf_keys, np.arange(self.n_components + 1, dtype=np.int64)
        )

    def _ensure_set_indexes(self) -> None:
        """Set-level inverted maps backing per-component queries:
        component -> sets whose union carries it, and set -> flows."""
        if self._comp_set_bounds is not None:
            return
        n_sets = len(self._set_union_bounds) - 1
        set_ids = np.repeat(
            np.arange(n_sets, dtype=np.int64), np.diff(self._set_union_bounds)
        )
        order = _small_key_argsort(self._set_union_comps, self.n_components)
        self._comp_set_vals = set_ids[order]
        self._comp_set_bounds = np.searchsorted(
            self._set_union_comps[order],
            np.arange(self.n_components + 1, dtype=np.int64),
        )
        forder = _small_key_argsort(self._set_of_flow, n_sets)
        self._set_flow_vals = forder
        self._set_flow_bounds = np.searchsorted(
            self._set_of_flow[forder], np.arange(n_sets + 1, dtype=np.int64)
        )

    @property
    def _comp_flow_keys(self) -> np.ndarray:
        self._ensure_comp_flows()
        return self._cf_keys

    @property
    def _comp_flow_vals(self) -> np.ndarray:
        self._ensure_comp_flows()
        return self._cf_vals

    @property
    def _comp_flow_bounds(self) -> np.ndarray:
        self._ensure_comp_flows()
        return self._cf_bounds

    def _init_unified(
        self,
        set_ecomps: np.ndarray,
        set_eoff: np.ndarray,
        iset_of_set: np.ndarray,
        iset_raw_pids: np.ndarray,
        iset_raw_off: np.ndarray,
    ) -> None:
        """Store the set layer the vectorized kernels consume.

        Sets reference shared *interior sets* (``iset``); interior
        members are de-duplicated with an integer multiplicity column.
        ``set_ecomps`` holds each set's endpoint components (sorted,
        disjoint from every member's interior components; empty for
        uncompressed problems).
        """
        n_sets = len(iset_of_set)
        n_isets = len(iset_raw_off) - 1
        n_paths = max(1, len(self.path_off) - 1)
        self._set_ecomps = set_ecomps
        self._set_eoff = set_eoff
        self._iset_of_set = iset_of_set
        self._iset_raw_pids = iset_raw_pids
        self._iset_raw_off = iset_raw_off

        # Unique members + multiplicity per interior set (member order
        # inside a set does not matter to any kernel sum: pair counts
        # re-sort by component and failed-path counts are exact integer
        # sums).
        raw_lens = np.diff(iset_raw_off)
        if len(iset_raw_pids):
            raw_iset = np.repeat(np.arange(n_isets, dtype=np.int64), raw_lens)
            ukeys, mult = np.unique(
                raw_iset * np.int64(n_paths) + iset_raw_pids, return_counts=True
            )
            self._iset_upids = ukeys % n_paths
            self._iset_uoff = np.searchsorted(
                ukeys // n_paths, np.arange(n_isets + 1, dtype=np.int64)
            )
            self._iset_umult = mult.astype(np.int64)
        else:
            self._iset_upids = np.empty(0, dtype=np.int64)
            self._iset_umult = np.empty(0, dtype=np.int64)
            self._iset_uoff = np.zeros(n_isets + 1, dtype=np.int64)
        self._set_w = raw_lens[iset_of_set]

        # component -> sets blaming it through an endpoint component.
        if len(set_ecomps):
            e_sets = np.repeat(
                np.arange(n_sets, dtype=np.int64), np.diff(set_eoff)
            )
            ekeys = np.sort(set_ecomps * np.int64(n_sets) + e_sets)
            self._comp_eset_vals = ekeys % n_sets
            self._comp_eset_bounds = np.searchsorted(
                ekeys // n_sets,
                np.arange(self.n_components + 1, dtype=np.int64),
            )
        else:
            self._comp_eset_vals = np.empty(0, dtype=np.int64)
            self._comp_eset_bounds = np.zeros(
                self.n_components + 1, dtype=np.int64
            )

    def _init_views(self) -> None:
        self._flows_by_comp: Optional[Dict[int, List[int]]] = None
        self._paths_by_comp: Optional[Dict[int, List[int]]] = None
        self._comps_by_flow: Optional[List[Tuple[int, ...]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_observations(
        cls,
        observations: Sequence[FlowObservation],
        n_components: int,
        n_links: int,
    ) -> "InferenceProblem":
        if n_links > n_components:
            raise InferenceError("n_links cannot exceed n_components")
        path_table = PathTable()
        grouped: Dict[Tuple, List] = {}
        for obs in observations:
            path_ids = tuple(path_table.intern(p) for p in obs.path_set)
            for path in obs.path_set:
                for comp in path:
                    if not 0 <= comp < n_components:
                        raise InferenceError(
                            f"component id {comp} outside [0, {n_components})"
                        )
            key = (path_ids, obs.bad_packets, obs.packets_sent, obs.kind)
            entry = grouped.get(key)
            if entry is None:
                grouped[key] = [1]
            else:
                entry[0] += 1

        flow_paths: List[Tuple[int, ...]] = []
        bad: List[int] = []
        sent: List[int] = []
        weights: List[int] = []
        exact: List[bool] = []
        kinds: List[TelemetryKind] = []
        for (path_ids, r, t, kind), (count,) in grouped.items():
            flow_paths.append(path_ids)
            bad.append(r)
            sent.append(t)
            weights.append(count)
            exact.append(len(path_ids) == 1)
            kinds.append(kind)
        return cls(
            n_components=n_components,
            n_links=n_links,
            path_table=path_table,
            flow_paths=flow_paths,
            bad_packets=np.asarray(bad, dtype=np.int64),
            packets_sent=np.asarray(sent, dtype=np.int64),
            weights=np.asarray(weights, dtype=np.int64),
            exact=np.asarray(exact, dtype=bool),
            kinds=kinds,
        )

    @classmethod
    def from_batch(
        cls,
        batch: "ObservationBatch",
        n_components: int,
        n_links: int,
        compressed: bool = True,
    ) -> "InferenceProblem":
        """Build the problem from a columnar observation batch.

        Grouping is one ``np.unique`` over the packed
        (path-set, bad, sent, kind) key columns, reordered to
        first-appearance order so groups - and the path table's local
        ids - come out exactly as :meth:`from_observations` would
        produce them for the same rows.

        ``compressed=True`` (the default) keeps factored pair sets
        factored: the problem's path table holds unique *interior*
        projections shared across every host pair of a rack pair, plus
        per-set endpoint components.  ``compressed=False`` expands
        every set to full per-pair projections (the historical layout);
        predictions are bit-identical between the two.
        """
        if len(batch) == 0:
            return cls.from_observations([], n_components, n_links)
        rep_rows, counts = _first_seen_unique_rows(
            batch.path_set, batch.bad, batch.sent, batch.kind
        )
        return cls._from_grouped(
            batch.space,
            batch.path_set[rep_rows],
            batch.bad[rep_rows].astype(np.int64),
            batch.sent[rep_rows].astype(np.int64),
            batch.kind[rep_rows],
            counts.astype(np.int64),
            n_components,
            n_links,
            compressed=compressed,
        )

    @classmethod
    def _from_grouped(
        cls,
        space,
        rep_gsids: np.ndarray,
        bad: np.ndarray,
        sent: np.ndarray,
        kind_codes: np.ndarray,
        weights: np.ndarray,
        n_components: int,
        n_links: int,
        compressed: bool = True,
        parts_cache: Optional["SetStageCache"] = None,
    ) -> "InferenceProblem":
        """Build from already-grouped rows in first-appearance order.

        ``rep_gsids``/``bad``/``sent``/``kind_codes``/``weights`` are
        aligned per grouped flow.  :meth:`from_batch` lands here after
        its one grouping pass; the sliding-window pipeline
        (:class:`repro.core.window.WindowedProblem`) lands here after
        merging per-chunk grouped tables - the shared entry is what
        makes windowed problems bit-identical to batch rebuilds.
        ``parts_cache`` optionally carries a :class:`SetStageCache`
        interning :meth:`PathSpace.comp_set_parts` across builds.
        """
        if n_links > n_components:
            raise InferenceError("n_links cannot exceed n_components")
        from ..telemetry.inputs import KIND_ORDER

        if len(rep_gsids) == 0:
            return cls.from_observations([], n_components, n_links)

        if compressed:
            return cls._from_grouped_compressed(
                space, rep_gsids, bad, sent, kind_codes, weights,
                n_components, n_links, parts_cache,
            )

        # Local path ids are assigned in first-appearance order, which
        # factors through path *sets*: a gid's first appearance is
        # always inside the first occurrence of its set (same set ->
        # same gids), so scanning distinct sets in first-seen order
        # reproduces the per-observation interning order exactly - and
        # each set's local-id segment is computed once, not per group.
        ordered_gsids, set_of_flow = first_seen_ids(rep_gsids)

        member_arrays = [space.comp_set(int(g)) for g in ordered_gsids.tolist()]
        set_lens = np.fromiter(
            (len(a) for a in member_arrays),
            dtype=np.int64,
            count=len(member_arrays),
        )
        set_off = np.zeros(len(member_arrays) + 1, dtype=np.int64)
        np.cumsum(set_lens, out=set_off[1:])
        flat_gids = (
            np.concatenate(member_arrays) if member_arrays
            else np.empty(0, dtype=np.int64)
        )

        # Global -> local path ids, first-seen over the flat scan.
        local_gids, set_pids = first_seen_ids(flat_gids)

        # Local path -> components CSR, gathered from the space's
        # global CSR in local-id order.
        cc_flat, cc_off = space.comp_csr()
        path_lens = cc_off[local_gids + 1] - cc_off[local_gids]
        path_off = np.zeros(len(local_gids) + 1, dtype=np.int64)
        np.cumsum(path_lens, out=path_off[1:])
        path_comps = cc_flat[_expand_slices(cc_off[local_gids], path_lens)]

        # Component ids projected from the problem's own topology are in
        # range by construction; only a mismatched space needs the scan.
        if space.topology.n_components != n_components and len(path_comps):
            bad_mask = (path_comps < 0) | (path_comps >= n_components)
            if np.any(bad_mask):
                raise InferenceError(
                    f"component id {int(path_comps[bad_mask][0])} outside "
                    f"[0, {n_components})"
                )

        return cls._from_arrays(
            n_components=n_components,
            n_links=n_links,
            path_comps=path_comps,
            path_off=path_off,
            set_of_flow=set_of_flow,
            set_pids=set_pids,
            set_off=set_off,
            bad_packets=bad,
            packets_sent=sent,
            weights=weights,
            exact=set_lens[set_of_flow] == 1,
            kinds=[KIND_ORDER[code] for code in kind_codes.tolist()],
        )

    @classmethod
    def _from_grouped_compressed(
        cls,
        space,
        rep_gsids: np.ndarray,
        bad: np.ndarray,
        sent: np.ndarray,
        kind_codes: np.ndarray,
        weights: np.ndarray,
        n_components: int,
        n_links: int,
        parts_cache: Optional["SetStageCache"] = None,
    ) -> "InferenceProblem":
        """Compressed problem build: sets stay factored.

        Each distinct path set contributes its endpoint components and
        a reference to a shared interior member array
        (:meth:`PathSpace.comp_set_parts`); the local path table interns
        only distinct interior/exact projections.  At paper scale this
        is what keeps the build - and every kernel that runs on it -
        tractable.
        """
        ordered_gsids, set_of_flow = first_seen_ids(rep_gsids)
        n_sets = len(ordered_gsids)

        if parts_cache is not None:
            # Streaming path: gather the set stage from the persistent
            # intern instead of re-walking comp_set_parts per gsid.
            # Interior sets are numbered by first key appearance either
            # way (key ids alias keys one-to-one), so the gathered
            # arrays equal the walked ones element for element.
            rows = parts_cache.rows(space, ordered_gsids)
            ordered_kids, iset_of_set = first_seen_ids(
                parts_cache.key_of_row[rows]
            )
            e_lens = parts_cache.e_lens[rows]
            set_eoff = np.zeros(n_sets + 1, dtype=np.int64)
            np.cumsum(e_lens, out=set_eoff[1:])
            set_ecomps = parts_cache.e_flat[
                _expand_slices(parts_cache.e_off[rows], e_lens)
            ]
            m_lens = parts_cache.m_lens[ordered_kids]
            iset_raw_off = np.zeros(len(ordered_kids) + 1, dtype=np.int64)
            np.cumsum(m_lens, out=iset_raw_off[1:])
            flat_gids = parts_cache.m_flat[
                _expand_slices(parts_cache.m_off[ordered_kids], m_lens)
            ]
        else:
            iset_index: Dict[Tuple, int] = {}
            iset_members: List[np.ndarray] = []
            iset_of_set = np.empty(n_sets, dtype=np.int64)
            e_segments: List[np.ndarray] = []
            parts = space.comp_set_parts

            for k, g in enumerate(ordered_gsids.tolist()):
                ecomps, members, key = parts(int(g))
                iid = iset_index.get(key)
                if iid is None:
                    iid = len(iset_members)
                    iset_index[key] = iid
                    iset_members.append(members)
                iset_of_set[k] = iid
                e_segments.append(ecomps)

            e_lens = np.fromiter(
                (len(e) for e in e_segments), dtype=np.int64, count=n_sets
            )
            set_eoff = np.zeros(n_sets + 1, dtype=np.int64)
            np.cumsum(e_lens, out=set_eoff[1:])
            set_ecomps = (
                np.concatenate(e_segments) if set_eoff[-1]
                else np.empty(0, dtype=np.int64)
            )

            m_lens = np.fromiter(
                (len(m) for m in iset_members),
                dtype=np.int64,
                count=len(iset_members),
            )
            iset_raw_off = np.zeros(len(iset_members) + 1, dtype=np.int64)
            np.cumsum(m_lens, out=iset_raw_off[1:])
            flat_gids = (
                np.concatenate(iset_members) if iset_members
                else np.empty(0, dtype=np.int64)
            )
        local_gids, iset_raw_pids = first_seen_ids(flat_gids)

        cc_flat, cc_off = space.comp_csr()
        path_lens = cc_off[local_gids + 1] - cc_off[local_gids]
        path_off = np.zeros(len(local_gids) + 1, dtype=np.int64)
        np.cumsum(path_lens, out=path_off[1:])
        path_comps = cc_flat[_expand_slices(cc_off[local_gids], path_lens)]

        if space.topology.n_components != n_components:
            for arr in (path_comps, set_ecomps):
                if len(arr):
                    bad_mask = (arr < 0) | (arr >= n_components)
                    if np.any(bad_mask):
                        raise InferenceError(
                            f"component id {int(arr[bad_mask][0])} outside "
                            f"[0, {n_components})"
                        )

        self = cls.__new__(cls)
        self.n_components = n_components
        self.n_links = n_links
        self.bad_packets = bad
        self.packets_sent = sent
        self.weights = weights
        # kinds materialize lazily from the codes: nothing on the
        # steady-state streaming path reads them.
        self._kinds = None
        self._kind_codes = kind_codes
        self._path_table = None
        self._flow_paths = None
        self._path_component_sets = None
        self.path_comps = path_comps
        self.path_off = path_off
        self._finish_compressed(
            set_of_flow, set_ecomps, set_eoff,
            iset_of_set, iset_raw_pids, iset_raw_off,
        )
        self.exact = self._set_w[set_of_flow] == 1
        return self

    def _finish_compressed(
        self,
        set_of_flow: np.ndarray,
        set_ecomps: np.ndarray,
        set_eoff: np.ndarray,
        iset_of_set: np.ndarray,
        iset_raw_pids: np.ndarray,
        iset_raw_off: np.ndarray,
    ) -> None:
        """Indexes for the compressed layout, interior-set granular."""
        n_comps = np.int64(self.n_components)
        n_sets = len(iset_of_set)
        n_isets = len(iset_raw_off) - 1
        n_paths = len(self.path_off) - 1
        self.compressed = True
        self._set_of_flow = set_of_flow
        self._set_pids = None
        self._set_off = None
        self._init_comp_paths(n_paths)
        self._init_unified(
            set_ecomps, set_eoff, iset_of_set, iset_raw_pids, iset_raw_off
        )

        # Sorted component unions per interior set (work is per iset,
        # not per set - the compression's whole point).
        pc_lens = np.diff(self.path_off)
        u_lens = np.diff(self._iset_uoff)
        inst_counts = pc_lens[self._iset_upids]
        inst_iset = np.repeat(
            np.repeat(np.arange(n_isets, dtype=np.int64), u_lens), inst_counts
        )
        inst_comp = self.path_comps[
            _expand_slices(self.path_off[self._iset_upids], inst_counts)
        ]
        ukeys = np.unique(inst_iset * n_comps + inst_comp)
        iu_comps = ukeys % n_comps
        iu_bounds = np.searchsorted(
            ukeys // n_comps, np.arange(n_isets + 1, dtype=np.int64)
        )

        # Per-set sorted unions = endpoint comps merged with the shared
        # interior union (disjoint by construction: endpoints are host
        # links, interiors are switch-level comps), via one global sort
        # over packed keys.
        e_lens = np.diff(set_eoff)
        iu_set_lens = np.diff(iu_bounds)[iset_of_set]
        set_ids = np.arange(n_sets, dtype=np.int64)
        all_sets = np.concatenate([
            np.repeat(set_ids, e_lens), np.repeat(set_ids, iu_set_lens),
        ])
        all_comps = np.concatenate([
            set_ecomps,
            iu_comps[_expand_slices(iu_bounds[iset_of_set], iu_set_lens)],
        ])
        skeys = np.sort(all_sets * n_comps + all_comps)
        self._set_union_comps = skeys % n_comps
        self._set_union_bounds = np.searchsorted(
            skeys // n_comps, np.arange(n_sets + 1, dtype=np.int64)
        )

        self._defer_comp_flows()
        self._init_views()

    # ------------------------------------------------------------------
    # Array accessors (the vectorized kernels' interface)
    # ------------------------------------------------------------------
    def comp_flows(self, comp: int) -> np.ndarray:
        """Flows that can blame ``comp`` (ascending, array view).

        Answered from the full component -> flows index when it has
        been built, else per-component from the set-level indexes (a
        flow belongs to exactly one set, so the sorted gather is the
        same ascending array the full index would slice out).
        """
        if self._cf_bounds is not None:
            return self._cf_vals[
                self._cf_bounds[comp]:self._cf_bounds[comp + 1]
            ]
        cached = self._comp_flow_cache.get(comp)
        if cached is None:
            self._ensure_set_indexes()
            sets = self._comp_set_vals[
                self._comp_set_bounds[comp]:self._comp_set_bounds[comp + 1]
            ]
            lens = np.diff(self._set_flow_bounds)[sets]
            cached = np.sort(
                self._set_flow_vals[
                    _expand_slices(self._set_flow_bounds[sets], lens)
                ]
            )
            self._comp_flow_cache[comp] = cached
        return cached

    def comp_path_ids(self, comp: int) -> np.ndarray:
        """Problem paths containing ``comp`` (ascending, array view).

        Compressed problems index their interior/exact path table here;
        endpoint components map to sets via :meth:`comp_eset_ids`
        instead.
        """
        return self._comp_path_vals[
            self._comp_path_bounds[comp]:self._comp_path_bounds[comp + 1]
        ]

    def comp_eset_ids(self, comp: int) -> np.ndarray:
        """Sets carrying ``comp`` as an endpoint component (ascending)."""
        return self._comp_eset_vals[
            self._comp_eset_bounds[comp]:self._comp_eset_bounds[comp + 1]
        ]

    # ------------------------------------------------------------------
    # Lazy object views (reference engines, baselines, tests)
    # ------------------------------------------------------------------
    def _materialize_object_paths(self) -> None:
        """Expand a compressed problem to the uncompressed object view.

        Full member projections are the (disjoint) union of each set's
        endpoint comps and its interior projections; scanning sets in
        first-seen order and members in raw member order reproduces
        :meth:`from_observations`'s first-seen local ids exactly.
        """
        table = PathTable()
        comps = self.path_comps.tolist()
        path_off = self.path_off.tolist()
        e_all = self._set_ecomps.tolist()
        eoff = self._set_eoff.tolist()
        raw = self._iset_raw_pids.tolist()
        roff = self._iset_raw_off.tolist()
        set_tuples: List[Tuple[int, ...]] = []
        for s, iid in enumerate(self._iset_of_set.tolist()):
            e = tuple(e_all[eoff[s]:eoff[s + 1]])
            members = raw[roff[iid]:roff[iid + 1]]
            if e:
                ids = tuple(
                    table.intern_canonical(
                        tuple(sorted(
                            e + tuple(comps[path_off[p]:path_off[p + 1]])
                        ))
                    )
                    for p in members
                )
            else:
                ids = tuple(
                    table.intern_canonical(
                        tuple(comps[path_off[p]:path_off[p + 1]])
                    )
                    for p in members
                )
            set_tuples.append(ids)
        self._path_table = table
        self._flow_paths = [
            set_tuples[s] for s in self._set_of_flow.tolist()
        ]

    @property
    def kinds(self) -> List[TelemetryKind]:
        """Per-flow telemetry kinds (lazy when built from kind codes)."""
        if self._kinds is None:
            from ..telemetry.inputs import KIND_ORDER

            self._kinds = [
                KIND_ORDER[code] for code in self._kind_codes.tolist()
            ]
        return self._kinds

    @property
    def path_table(self) -> PathTable:
        """Interning table of the problem's *full* component paths
        (lazy; object-view semantics, identical to
        :meth:`from_observations` output either way)."""
        if self._path_table is None:
            if self.compressed:
                self._materialize_object_paths()
            else:
                table = PathTable()
                comps = self.path_comps.tolist()
                for start, stop in zip(self.path_off[:-1].tolist(),
                                       self.path_off[1:].tolist()):
                    table.intern_canonical(tuple(comps[start:stop]))
                self._path_table = table
        return self._path_table

    @property
    def flow_paths(self) -> List[Tuple[int, ...]]:
        """Per-flow interned path-id tuples (lazy; tuples are shared
        between flows with the same path set)."""
        if self._flow_paths is None:
            if self.compressed:
                self._materialize_object_paths()
            else:
                pids = self._set_pids.tolist()
                set_tuples = [
                    tuple(pids[start:stop])
                    for start, stop in zip(self._set_off[:-1].tolist(),
                                           self._set_off[1:].tolist())
                ]
                self._flow_paths = [
                    set_tuples[s] for s in self._set_of_flow.tolist()
                ]
        return self._flow_paths

    @property
    def path_component_sets(self) -> List[FrozenSet[int]]:
        """Per-path frozen component sets (lazy; only the reference
        engines walk these - the vectorized kernels use the CSR)."""
        if self._path_component_sets is None:
            self._path_component_sets = [
                frozenset(comps) for comps in self.path_table
            ]
        return self._path_component_sets

    @property
    def flows_by_comp(self) -> Dict[int, List[int]]:
        """{component: ascending flow indices} (lazy view)."""
        if self._flows_by_comp is None:
            self._flows_by_comp = _split_sorted(
                self._comp_flow_keys, self._comp_flow_vals
            )
        return self._flows_by_comp

    @property
    def paths_by_comp(self) -> Dict[int, List[int]]:
        """{component: ascending path ids} (lazy view; object-view path
        ids, i.e. full projections for compressed problems)."""
        if self._paths_by_comp is None:
            if self.compressed:
                out: Dict[int, List[int]] = {}
                for pid, comps in enumerate(self.path_table):
                    for comp in comps:
                        out.setdefault(comp, []).append(pid)
                self._paths_by_comp = out
            else:
                self._paths_by_comp = _split_sorted(
                    self._comp_path_keys, self._comp_path_vals
                )
        return self._paths_by_comp

    @property
    def comps_by_flow(self) -> List[Tuple[int, ...]]:
        """Per-flow sorted component unions (lazy view)."""
        if self._comps_by_flow is None:
            comps = self._set_union_comps.tolist()
            union_by_set = [
                tuple(comps[start:stop])
                for start, stop in zip(self._set_union_bounds[:-1].tolist(),
                                       self._set_union_bounds[1:].tolist())
            ]
            self._comps_by_flow = [
                union_by_set[s] for s in self._set_of_flow.tolist()
            ]
        return self._comps_by_flow

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_flows(self) -> int:
        """Number of grouped flows."""
        return len(self.bad_packets)

    @property
    def total_flows(self) -> int:
        """Number of underlying observations (sum of group weights)."""
        return int(self.weights.sum())

    @property
    def n_paths(self) -> int:
        """Number of *full* component paths (object-view semantics).

        Reference engines size their per-path state by this and index
        it with :attr:`flow_paths` ids; compressed problems therefore
        report the materialized object table's size.  Kernels index the
        compressed table via ``len(path_off) - 1`` instead.
        """
        if self.compressed:
            return len(self.path_table)
        return len(self.path_off) - 1

    def is_device(self, comp: int) -> bool:
        return comp >= self.n_links

    @property
    def observed_components(self) -> Tuple[int, ...]:
        """Components that at least one flow can blame.

        Every set is referenced by at least one flow, so a component in
        any set union is observed - the set unions answer this without
        forcing the full component -> flows index.
        """
        if self._cf_bounds is not None:
            counts = np.diff(self._cf_bounds)
            return tuple(np.nonzero(counts)[0].tolist())
        return tuple(np.unique(self._set_union_comps).tolist())

    def exact_flow_indices(self) -> np.ndarray:
        """Indices of flows whose path is known exactly.

        007 and NetBouncer only consume these: their published algorithms
        have no notion of path uncertainty (paper section 6.2).
        """
        return np.nonzero(self.exact)[0]

    def flow_pathset_size(self, flow: int) -> int:
        return int(self._set_w[self._set_of_flow[flow]])

    def describe(self) -> str:
        """One-line summary, handy in logs and experiment reports."""
        observed = len(self.observed_components)
        paths = len(self.path_off) - 1
        kind = "interior paths" if self.compressed else "paths"
        return (
            f"InferenceProblem(flows={self.total_flows} grouped to "
            f"{self.n_flows}, {kind}={paths}, "
            f"components={observed} observed of "
            f"{self.n_components})"
        )
