"""Greedy MLE search *without* JLE - the "greedy only" ablation.

Fig. 4c of the paper separates Flock's two optimizations; this module is
the arm that keeps greedy search but prices each candidate hypothesis
individually: "If we had used just Greedy without JLE (computing
likelihood of each hypothesis individually), the runtime would be
O(n + mT + (K-1)nDT)" (section 4.1).

Like Sherlock, it reuses LL(H) and updates only the flows intersecting
the candidate link - but it redoes that work for *every* candidate in
*every* iteration, which is exactly the O(n) factor JLE removes.  It
returns the same hypothesis as Flock by construction.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import InferenceError
from ..types import Prediction
from .model import evidence_scores, normalized_flow_ll
from .params import DEFAULT_PER_PACKET, FlockParams
from .problem import InferenceProblem


class GreedyWithoutJle:
    """Greedy search pricing each neighbor hypothesis from scratch."""

    name = "flock-greedy-only"

    def __init__(
        self,
        params: FlockParams = DEFAULT_PER_PACKET,
        max_failures: Optional[int] = None,
    ) -> None:
        self._params = params
        self._max_failures = max_failures

    def localize(self, problem: InferenceProblem) -> Prediction:
        params = self._params
        scores = evidence_scores(
            problem.bad_packets, problem.packets_sent, params
        )
        widths = [len(fp) for fp in problem.flow_paths]
        weights = problem.weights
        path_nfailed = [0] * problem.n_paths
        flow_b = [0] * problem.n_flows

        hypothesis = set()
        ll = 0.0
        scanned = 0
        chosen_scores: Dict[int, float] = {}
        candidates = list(problem.observed_components)
        cap = self._max_failures if self._max_failures is not None else len(candidates)

        def candidate_gain(comp: int) -> float:
            """LL(H + comp) - LL(H), computed directly over flows(comp)."""
            total = 0.0
            for flow in problem.flows_by_comp[comp]:
                b = flow_b[flow]
                b_new = b
                for pid in problem.flow_paths[flow]:
                    if path_nfailed[pid] == 0 and comp in problem.path_component_sets[pid]:
                        b_new += 1
                if b_new != b:
                    s = float(scores[flow])
                    w = widths[flow]
                    total += float(weights[flow]) * (
                        normalized_flow_ll(b_new, w, s)
                        - normalized_flow_ll(b, w, s)
                    )
            return total + params.prior_gain(problem.is_device(comp))

        while len(hypothesis) < cap:
            best_comp = -1
            best_gain = 0.0
            for comp in candidates:
                if comp in hypothesis:
                    continue
                scanned += 1
                gain = candidate_gain(comp)
                if gain > best_gain:
                    best_gain = gain
                    best_comp = comp
            if best_comp < 0:
                break
            # Commit: update per-path and per-flow failure counts.
            for pid in problem.paths_by_comp.get(best_comp, ()):
                path_nfailed[pid] += 1
            for flow in problem.flows_by_comp[best_comp]:
                b = 0
                for pid in problem.flow_paths[flow]:
                    if path_nfailed[pid] > 0:
                        b += 1
                flow_b[flow] = b
            hypothesis.add(best_comp)
            ll += best_gain
            chosen_scores[best_comp] = best_gain

        return Prediction(
            components=frozenset(hypothesis),
            scores=chosen_scores,
            log_likelihood=ll,
            hypotheses_scanned=scanned,
        )
