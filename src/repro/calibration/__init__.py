"""Automated hyperparameter calibration (paper section 5.2)."""

from .defaults import (
    FLOCK_GRID,
    FLOCK_PER_FLOW_GRID,
    NETBOUNCER_GRID,
    VOTE007_GRID,
    flock_factory,
    netbouncer_factory,
    vote007_factory,
)
from .grid import CalibrationPoint, calibrate, iter_grid
from .select import best_at_precision, choose_operating_point, pareto_front

__all__ = [
    "CalibrationPoint",
    "calibrate",
    "iter_grid",
    "best_at_precision",
    "choose_operating_point",
    "pareto_front",
    "FLOCK_GRID",
    "FLOCK_PER_FLOW_GRID",
    "NETBOUNCER_GRID",
    "VOTE007_GRID",
    "flock_factory",
    "netbouncer_factory",
    "vote007_factory",
]
