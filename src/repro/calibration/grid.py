"""Hyperparameter grid search over training traces (paper section 5.2).

"For each hyperparameter, we choose equally-spaced values in a
reasonable range of possible values ... We use a training set of
monitoring data to search for the parameter settings that obtain the
best precision and recall in the training set."

:func:`calibrate` runs a scheme factory over the cartesian product of a
parameter grid, evaluating each setting on the same training traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import CalibrationError
from ..telemetry.inputs import TelemetryConfig
from ..eval.harness import SchemeSetup, evaluate_many
from ..eval.runner import RunnerConfig
from ..eval.scenarios import Trace


@dataclass(frozen=True)
class CalibrationPoint:
    """One grid setting and its training-set accuracy."""

    params: Mapping[str, float]
    precision: float
    recall: float

    @property
    def fscore(self) -> float:
        if self.precision + self.recall <= 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def iter_grid(grid: Mapping[str, Sequence]) -> List[Dict]:
    """Expand a {name: values} grid into a list of parameter dicts."""
    if not grid:
        raise CalibrationError("parameter grid is empty")
    names = sorted(grid)
    for name in names:
        if not len(grid[name]):
            raise CalibrationError(f"grid for {name!r} has no values")
    return [
        dict(zip(names, combo)) for combo in product(*(grid[n] for n in names))
    ]


def calibrate(
    scheme_factory: Callable[..., object],
    grid: Mapping[str, Sequence],
    traces: Sequence[Trace],
    telemetry: TelemetryConfig,
    name: str = "candidate",
    runner: Optional[RunnerConfig] = None,
) -> List[CalibrationPoint]:
    """Evaluate every grid setting on the training traces.

    ``scheme_factory(**params)`` must return a localizer.  Returns one
    :class:`CalibrationPoint` per setting, in grid order.

    The whole grid is evaluated as one batch: every setting shares the
    same telemetry spec, so the runner builds each trace's inference
    problem once for all settings, and ``runner`` fans the traces out
    over workers.
    """
    if not traces:
        raise CalibrationError("calibration needs at least one training trace")
    grid_params = iter_grid(grid)
    setups = [
        SchemeSetup(
            name=f"{name}[{i}]",
            localizer=scheme_factory(**params),
            telemetry=telemetry,
        )
        for i, params in enumerate(grid_params)
    ]
    summaries = evaluate_many(setups, traces, runner)
    points: List[CalibrationPoint] = []
    for setup, params in zip(setups, grid_params):
        summary = summaries[setup.labeled()]
        points.append(
            CalibrationPoint(
                params=params,
                precision=summary.accuracy.precision,
                recall=summary.accuracy.recall,
            )
        )
    return points
