"""Hyperparameter grid search over training traces (paper section 5.2).

"For each hyperparameter, we choose equally-spaced values in a
reasonable range of possible values ... We use a training set of
monitoring data to search for the parameter settings that obtain the
best precision and recall in the training set."

:func:`calibrate` runs a scheme factory over the cartesian product of a
parameter grid, evaluating each setting on the same training traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Dict, List, Mapping, Sequence

from ..errors import CalibrationError
from ..telemetry.inputs import TelemetryConfig
from ..eval.harness import SchemeSetup, evaluate
from ..eval.scenarios import Trace


@dataclass(frozen=True)
class CalibrationPoint:
    """One grid setting and its training-set accuracy."""

    params: Mapping[str, float]
    precision: float
    recall: float

    @property
    def fscore(self) -> float:
        if self.precision + self.recall <= 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def iter_grid(grid: Mapping[str, Sequence]) -> List[Dict]:
    """Expand a {name: values} grid into a list of parameter dicts."""
    if not grid:
        raise CalibrationError("parameter grid is empty")
    names = sorted(grid)
    for name in names:
        if not len(grid[name]):
            raise CalibrationError(f"grid for {name!r} has no values")
    return [
        dict(zip(names, combo)) for combo in product(*(grid[n] for n in names))
    ]


def calibrate(
    scheme_factory: Callable[..., object],
    grid: Mapping[str, Sequence],
    traces: Sequence[Trace],
    telemetry: TelemetryConfig,
    name: str = "candidate",
) -> List[CalibrationPoint]:
    """Evaluate every grid setting on the training traces.

    ``scheme_factory(**params)`` must return a localizer.  Returns one
    :class:`CalibrationPoint` per setting, in grid order.
    """
    if not traces:
        raise CalibrationError("calibration needs at least one training trace")
    points: List[CalibrationPoint] = []
    for params in iter_grid(grid):
        localizer = scheme_factory(**params)
        setup = SchemeSetup(name=name, localizer=localizer, telemetry=telemetry)
        summary = evaluate(setup, traces)
        points.append(
            CalibrationPoint(
                params=params,
                precision=summary.accuracy.precision,
                recall=summary.accuracy.recall,
            )
        )
    return points
