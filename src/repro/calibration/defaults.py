"""Calibrated default grids and settings.

The paper calibrates every scheme "once using simulations of random
packet drops and use those parameters by default" (section 6.1).  The
grids below are the "equally-spaced values in a reasonable range"
(section 5.2) that the calibration experiments sweep; the module-level
defaults are the settings that rule selected on this repository's
standard training environment (silent link drops on a small Clos).
"""

from __future__ import annotations

import numpy as np

#: Flock grid, matching the ranges of the paper's sensitivity study
#: (Fig. 8a sweeps pg in [1e-4, 7e-4] and pb in [2e-3, 1e-2]).
FLOCK_GRID = {
    "pg": [1e-4, 3e-4, 5e-4, 7e-4],
    "pb": [2e-3, 4e-3, 6e-3, 1e-2],
    "rho": [1e-4, 5e-4, 2e-3],
}

#: 007's single hyperparameter: the fraction of the maximum vote a link
#: must reach to be blamed.
VOTE007_GRID = {
    "threshold": [round(x, 2) for x in np.linspace(0.3, 0.95, 14)],
}

#: NetBouncer's three hyperparameters.
NETBOUNCER_GRID = {
    "regularization": [0.0, 0.005, 0.02, 0.05],
    "drop_threshold": [8e-4, 1.2e-3, 2e-3, 3e-3],
    "device_frac": [0.3, 0.5, 0.7],
}

#: Per-flow (RTT threshold) analysis grid - the link-flap scenario needs
#: recalibration because "the analysis is per-flow and not per-packet"
#: (section 7.5).
FLOCK_PER_FLOW_GRID = {
    "pg": [1e-3, 4e-3, 1e-2],
    "pb": [0.2, 0.5, 0.8],
    "rho": [1e-4, 5e-4, 2e-3],
}


def flock_factory(pg: float, pb: float, rho: float, **kwargs):
    """Grid-search factory for Flock (via the scheme registry)."""
    from ..eval.schemes import build_localizer

    return build_localizer("flock", pg=pg, pb=pb, rho=rho, **kwargs)


def vote007_factory(threshold: float):
    """Grid-search factory for 007 (via the scheme registry)."""
    from ..eval.schemes import build_localizer

    return build_localizer("007", threshold=threshold)


def netbouncer_factory(
    regularization: float, drop_threshold: float, device_frac: float
):
    """Grid-search factory for NetBouncer (via the scheme registry)."""
    from ..eval.schemes import build_localizer

    return build_localizer(
        "netbouncer",
        regularization=regularization,
        drop_threshold=drop_threshold,
        device_frac=device_frac,
    )
