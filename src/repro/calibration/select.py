"""Operating-point selection (paper section 5.2).

"We fix a minimum precision P and find the parameters which, in a
training set, yielded highest recall and had precision > P.  Varying P
produces a set of parameters that are Pareto-optimal along the
precision/recall tradeoff curve.

To choose a single parameter setting ... we set P = 98% and find the
setting that maximizes recall (in the training set); if no such point
exists or recall is too low (< 25%), then we subtract 5% from P and try
again, repeating until a setting is found.  This method lays more
emphasis on precision."
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import CalibrationError
from .grid import CalibrationPoint


def best_at_precision(
    points: Sequence[CalibrationPoint], precision_floor: float
) -> Optional[CalibrationPoint]:
    """Highest-recall point with precision above the floor (or None)."""
    eligible = [p for p in points if p.precision >= precision_floor]
    if not eligible:
        return None
    return max(eligible, key=lambda p: (p.recall, p.precision))


def pareto_front(points: Sequence[CalibrationPoint]) -> List[CalibrationPoint]:
    """Points not dominated in (precision, recall), sorted by precision."""
    front: List[CalibrationPoint] = []
    for p in points:
        dominated = any(
            (q.precision >= p.precision and q.recall >= p.recall)
            and (q.precision > p.precision or q.recall > p.recall)
            for q in points
        )
        if not dominated:
            front.append(p)
    # De-duplicate identical accuracy points, keep the first of each.
    seen = set()
    unique = []
    for p in sorted(front, key=lambda q: (-q.precision, -q.recall)):
        key = (round(p.precision, 12), round(p.recall, 12))
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def choose_operating_point(
    points: Sequence[CalibrationPoint],
    start_precision: float = 0.98,
    min_recall: float = 0.25,
    step: float = 0.05,
) -> CalibrationPoint:
    """The paper's single-setting rule: P=98%, relax by 5% until found."""
    if not points:
        raise CalibrationError("no calibration points to choose from")
    floor = start_precision
    while floor > 0.0:
        best = best_at_precision(points, floor)
        if best is not None and best.recall >= min_recall:
            return best
        floor -= step
    # Nothing clears the recall bar at any precision; fall back to the
    # best F-score so the caller still gets a usable setting.
    return max(points, key=lambda p: p.fscore)
