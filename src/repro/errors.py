"""Exception hierarchy for the Flock reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  The subclasses
mirror the major subsystems (topology, routing, telemetry, inference,
calibration) so that failures can be routed to the right owner quickly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TopologyError(ReproError):
    """A topology is malformed or an operation referenced a missing element."""


class RoutingError(ReproError):
    """No valid path exists, or a routing query was malformed."""


class TrafficError(ReproError):
    """Traffic/probe generation was configured inconsistently."""


class SimulationError(ReproError):
    """The fault-injection simulator was misconfigured."""


class TelemetryError(ReproError):
    """Telemetry encoding, decoding, or transport failed."""


class CodecError(TelemetryError):
    """A wire message could not be encoded or decoded."""


class InferenceError(ReproError):
    """An inference algorithm received invalid input or reached a bad state."""


class CalibrationError(ReproError):
    """Hyperparameter calibration could not produce a valid setting."""


class ExperimentError(ReproError):
    """An experiment definition is inconsistent or produced no data."""


class FleetError(ExperimentError):
    """The work-unit broker or a fleet worker hit an unrecoverable
    condition (corrupt results, lost leases, schema drift).

    Subclasses :class:`ExperimentError` so existing fleet callers that
    catch the broader class keep working.
    """


class CheckpointError(ExperimentError):
    """A stream checkpoint could not be written, parsed, or restored
    (format drift, checksum mismatch, or a resume against a stream whose
    regenerated prefix no longer matches the checkpointed one)."""


class ChaosError(ReproError):
    """The fault-injection harness was misconfigured, or a chaos soak
    ended in a state it asserts against (non-draining fleet, collected
    results diverging from serial)."""
