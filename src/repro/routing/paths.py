"""Path and path-set interning.

A datacenter trace has millions of flows but only thousands of distinct
paths and path sets (every host pair in the same rack pair shares one).
Interning them gives (a) compact integer handles that the vectorized
inference kernels can index with, and (b) the memoization substrate the
paper's JLE counters rely on ("the effect on a flow's likelihood depends
only on the number of failed paths, not the specific failed links").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

ComponentPath = Tuple[int, ...]


class PathTable:
    """Interning table for component-id paths.

    Each distinct sorted component tuple gets a dense integer id.
    """

    def __init__(self) -> None:
        self._paths: List[ComponentPath] = []
        self._index: Dict[ComponentPath, int] = {}

    def intern(self, components: Sequence[int]) -> int:
        """Return the id for this component set, creating it if new."""
        key = tuple(sorted(set(components)))
        existing = self._index.get(key)
        if existing is not None:
            return existing
        path_id = len(self._paths)
        self._paths.append(key)
        self._index[key] = path_id
        return path_id

    def components(self, path_id: int) -> ComponentPath:
        return self._paths[path_id]

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self):
        return iter(self._paths)


class PathSetTable:
    """Interning table for path sets (tuples of path ids)."""

    def __init__(self) -> None:
        self._sets: List[Tuple[int, ...]] = []
        self._index: Dict[Tuple[int, ...], int] = {}

    def intern(self, path_ids: Iterable[int]) -> int:
        key = tuple(sorted(path_ids))
        existing = self._index.get(key)
        if existing is not None:
            return existing
        set_id = len(self._sets)
        self._sets.append(key)
        self._index[key] = set_id
        return set_id

    def paths(self, set_id: int) -> Tuple[int, ...]:
        return self._sets[set_id]

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self):
        return iter(self._sets)
