"""Path and path-set interning.

A datacenter trace has millions of flows but only thousands of distinct
paths and path sets (every host pair in the same rack pair shares one).
Interning them gives (a) compact integer handles that the vectorized
inference kernels can index with, and (b) the memoization substrate the
paper's JLE counters rely on ("the effect on a flow's likelihood depends
only on the number of failed paths, not the specific failed links").

Two layers live here:

* :class:`PathTable` / :class:`PathSetTable` - the per-problem interning
  tables the inference kernels index with (local, first-seen ids).
* :class:`PathSpace` - the *global* interning space of the columnar
  trace pipeline: node paths, node path sets, and their component
  projections are assigned stable integer ids once per (topology,
  routing) pair and reused across every trace and telemetry build that
  shares it.  All hot lookups are dense numpy array gathers, so the
  per-flow cost of path handling is a vectorized index instead of a
  tuple hash.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..routing.ecmp import EcmpRouting
    from ..topology.base import Topology

ComponentPath = Tuple[int, ...]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def first_seen_ids(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Dense ids for ``values``, numbered in first-appearance order.

    Returns ``(ordered_unique, ids)`` where ``ordered_unique[k]`` is
    the k-th distinct value to appear and ``ids[i]`` its number for row
    ``i``.  This reproduces the insertion order of a dict-based intern
    loop as one vectorized pass - the load-bearing equivalence between
    the columnar pipeline and the object pipeline's first-seen
    interning/grouping, so every call site shares this one
    implementation.
    """
    values = np.asarray(values)
    n = len(values)
    if n and values.dtype.kind in "iu" and int(values.min()) >= 0:
        span = int(values.max()) + 1
        if span <= 1 << 16:
            # Dense small ids (interned path/set handles): a uint16
            # radix argsort replaces the comparison sort inside
            # np.unique.  Stability makes each run's first element the
            # value's earliest row, which is all first-seen order needs.
            order = np.argsort(values.astype(np.uint16), kind="stable")
            sv = values[order]
            boundary = np.empty(n, dtype=bool)
            boundary[0] = True
            np.not_equal(sv[1:], sv[:-1], out=boundary[1:])
            first_idx = order[boundary]
            seen_order = np.argsort(first_idx)
            ordered = sv[boundary][seen_order]
            rank = np.empty(span, dtype=np.int64)
            rank[ordered] = np.arange(len(ordered), dtype=np.int64)
            return ordered.astype(values.dtype, copy=False), rank[values]
    uniq, first_idx, inverse = np.unique(
        values, return_index=True, return_inverse=True
    )
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq), dtype=np.int64)
    return uniq[order], rank[inverse]


class PathTable:
    """Interning table for component-id paths.

    Each distinct sorted component tuple gets a dense integer id.
    """

    def __init__(self) -> None:
        self._paths: List[ComponentPath] = []
        self._index: Dict[ComponentPath, int] = {}

    def intern(self, components: Sequence[int]) -> int:
        """Return the id for this component set, creating it if new."""
        return self.intern_canonical(tuple(sorted(set(components))))

    def intern_canonical(self, key: ComponentPath) -> int:
        """Intern an already sorted, de-duplicated component tuple.

        The columnar problem builder feeds tuples straight from the
        global :class:`PathSpace` (canonical by construction), skipping
        the per-path re-sort of :meth:`intern`.
        """
        existing = self._index.get(key)
        if existing is not None:
            return existing
        path_id = len(self._paths)
        self._paths.append(key)
        self._index[key] = path_id
        return path_id

    def components(self, path_id: int) -> ComponentPath:
        return self._paths[path_id]

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self):
        return iter(self._paths)


class PathSetTable:
    """Interning table for path sets (tuples of path ids)."""

    def __init__(self) -> None:
        self._sets: List[Tuple[int, ...]] = []
        self._index: Dict[Tuple[int, ...], int] = {}

    def intern(self, path_ids: Iterable[int]) -> int:
        key = tuple(sorted(path_ids))
        existing = self._index.get(key)
        if existing is not None:
            return existing
        set_id = len(self._sets)
        self._sets.append(key)
        self._index[key] = set_id
        return set_id

    def paths(self, set_id: int) -> Tuple[int, ...]:
        return self._sets[set_id]

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self):
        return iter(self._sets)


class _FactoredSet:
    """A host-pair path set stored without materializing its paths.

    Every host pair in the same rack pair shares one switch-level path
    set (``switch_sid``); only the two endpoint hops differ.  Member
    node paths are ``(src,) + switch_path + (dst,)`` in switch-set
    order - exactly what :meth:`EcmpRouting.host_paths` enumerates - but
    they are interned lazily (:meth:`PathSpace.set_path_ids`) or one
    member at a time (:meth:`PathSpace.member_pids`), so a paper-scale
    trace never pays for the ~w paths x ~400K pairs expansion.
    """

    __slots__ = ("src", "dst", "switch_sid", "src_link", "dst_link", "pids")

    def __init__(self, src: int, dst: int, switch_sid: int,
                 src_link: int, dst_link: int) -> None:
        self.src = src
        self.dst = dst
        self.switch_sid = switch_sid
        self.src_link = src_link
        self.dst_link = dst_link
        self.pids: Optional[np.ndarray] = None

    def __getstate__(self):
        return (self.src, self.dst, self.switch_sid,
                self.src_link, self.dst_link, self.pids)

    def __setstate__(self, state):
        (self.src, self.dst, self.switch_sid,
         self.src_link, self.dst_link, self.pids) = state


class _FactoredCompSet:
    """A component path set stored as endpoint comps + a shared interior.

    ``ecomps`` are the component ids on *every* member path (the two
    host links of the pair); ``switch_gsid`` is the component path-set
    id of the rack pair's switch-level projections, shared by all host
    pairs of the rack pair.  Full member projections materialize lazily
    (:meth:`PathSpace.comp_set`); the compressed problem build consumes
    the parts directly (:meth:`PathSpace.comp_set_parts`).
    """

    __slots__ = ("ecomps", "switch_gsid", "gids")

    def __init__(self, ecomps: np.ndarray, switch_gsid: int) -> None:
        self.ecomps = ecomps
        self.switch_gsid = switch_gsid
        self.gids: Optional[np.ndarray] = None

    def __getstate__(self):
        return (self.ecomps, self.switch_gsid, self.gids)

    def __setstate__(self, state):
        self.ecomps, self.switch_gsid, self.gids = state


class _DenseCache:
    """A growable int64 array mapping dense ids to dense ids (-1 = miss).

    Reads never mutate; fills happen under the owning space's lock, so
    concurrent readers at worst see a stale array and recompute (fills
    are pure functions of stable ids).
    """

    __slots__ = ("_arr",)

    def __init__(self) -> None:
        self._arr = np.full(64, -1, dtype=np.int64)

    def _gather(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        arr = self._arr
        out = np.full(len(keys), -1, dtype=np.int64)
        in_range = keys < len(arr)
        out[in_range] = arr[keys[in_range]]
        return out, arr

    def lookup(self, keys: np.ndarray, fill, lock) -> np.ndarray:
        """Vectorized gather; ``fill(key)`` computes each distinct miss."""
        if len(keys) == 0:
            return np.empty(0, dtype=np.int64)
        out, _ = self._gather(keys)
        if np.any(out < 0):
            with lock:
                size = int(keys.max()) + 1
                arr = self._arr
                if size > len(arr):
                    grown = np.full(max(size, 2 * len(arr)), -1, dtype=np.int64)
                    grown[: len(arr)] = arr
                    self._arr = arr = grown
                out = arr[keys]
                # dict.fromkeys dedups without numpy's per-call unique
                # overhead (lookups are often tiny per-set arrays).
                for key in dict.fromkeys(keys[out < 0].tolist()):
                    arr[key] = fill(key)
                out = arr[keys]
        return out


class PathSpace:
    """Global interning space for one (topology, routing) pair.

    Node paths get dense ids (*pids*), node path sets dense ids
    (*sids*), and their component projections dense ids (*gids* for a
    single component path, *gsids* for an ordered component path set).
    The projections are memoized per ``include_devices`` flag, so e.g.
    the INT build of a trace resolves every chosen path once and the
    A1/A2/P builds of the same trace find them already cached - the
    array-level analogue of the object pipeline's
    :class:`~repro.telemetry.inputs.PathMemo`.

    The space is owned by a trace's :class:`~repro.types.FlowBatch` and
    shared by every telemetry/problem build of that trace; all ids are
    stable for the lifetime of the space, which is what lets the runner
    reuse them across traces of the same (topology, telemetry spec).
    """

    def __init__(self, topology: "Topology", routing: "EcmpRouting") -> None:
        self.topology = topology
        self.routing = routing
        # Node paths and node path sets.
        self._paths: List[Tuple[int, ...]] = []
        self._path_index: Dict[Tuple[int, ...], int] = {}
        self._sets: List[object] = []  # np.ndarray | _FactoredSet
        self._set_index: Dict[Tuple[int, ...], int] = {}
        self._pair_sid: Dict[Tuple[int, int], int] = {}
        self._rack_pair_sid: Dict[Tuple[int, int], int] = {}
        # Component projections (shared id space across device flags).
        self._comp_paths: List[ComponentPath] = []
        self._comp_index: Dict[ComponentPath, int] = {}
        self._comp_sets: List[np.ndarray] = []
        self._comp_set_index: Dict[Tuple[int, ...], int] = {}
        # Dense memo arrays, one trio per include_devices flag.
        self._pid_gid = (_DenseCache(), _DenseCache())
        self._pid_gsid = (_DenseCache(), _DenseCache())
        self._sid_gsid = (_DenseCache(), _DenseCache())
        # Per-pid link ids as CSR, grown lazily (see :meth:`link_csr`).
        self._link_flat: List[int] = []
        self._link_off: List[int] = [0]
        self._link_hwm = 0
        self._link_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # Per-gid component ids as CSR (see :meth:`comp_csr`).
        self._cc_flat: List[int] = []
        self._cc_off: List[int] = [0]
        self._cc_hwm = 0
        self._cc_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # A space is shared by every trace of a (topology, routing) pair;
        # under the thread executor two trace units may intern
        # concurrently.  Lookups are GIL-atomic dict reads; only the
        # miss paths take this lock.
        self._lock = threading.RLock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Node paths and path sets
    # ------------------------------------------------------------------
    @property
    def n_paths(self) -> int:
        return len(self._paths)

    @property
    def n_sets(self) -> int:
        return len(self._sets)

    def intern_path(self, nodes: Sequence[int]) -> int:
        key = tuple(nodes)
        pid = self._path_index.get(key)
        if pid is None:
            with self._lock:
                pid = self._path_index.get(key)
                if pid is None:
                    pid = len(self._paths)
                    self._paths.append(key)
                    self._path_index[key] = pid
        return pid

    def path_nodes(self, pid: int) -> Tuple[int, ...]:
        return self._paths[pid]

    def intern_set(self, paths: Sequence[Sequence[int]]) -> int:
        """Intern an *ordered* sequence of node paths; order is
        preserved (the simulator's per-set ECMP choice indexes into
        it).  Callers with repeat lookups memoize the sid themselves
        (:meth:`pair_set`), so this always re-derives the pid key."""
        pids = tuple(self.intern_path(p) for p in paths)
        sid = self._set_index.get(pids)
        if sid is None:
            with self._lock:
                sid = self._set_index.get(pids)
                if sid is None:
                    sid = len(self._sets)
                    self._sets.append(np.asarray(pids, dtype=np.int64))
                    self._set_index[pids] = sid
        return sid

    def set_path_ids(self, sid: int) -> np.ndarray:
        """Path ids of a node path set, in interned order.

        Factored pair sets materialize (and intern) their member paths
        on first access; the hot pipeline never calls this for them.
        """
        entry = self._sets[sid]
        if isinstance(entry, _FactoredSet):
            if entry.pids is None:
                with self._lock:
                    if entry.pids is None:
                        middles = self._sets[entry.switch_sid]
                        pids = tuple(
                            self.intern_path(
                                (entry.src,) + self._paths[mid] + (entry.dst,)
                            )
                            for mid in middles.tolist()
                        )
                        self._set_index.setdefault(pids, sid)
                        entry.pids = np.asarray(pids, dtype=np.int64)
            return entry.pids
        return entry

    def set_is_factored(self, sid: int) -> bool:
        return isinstance(self._sets[sid], _FactoredSet)

    def set_factored(self, sid: int) -> _FactoredSet:
        entry = self._sets[sid]
        if not isinstance(entry, _FactoredSet):
            raise TypeError(f"set {sid} is not a factored pair set")
        return entry

    def set_size(self, sid: int) -> int:
        """Member count of a set, without materializing factored sets."""
        entry = self._sets[sid]
        if isinstance(entry, _FactoredSet):
            return len(self._sets[entry.switch_sid])
        return len(entry)

    def member_pids(self, sid: int, choice: np.ndarray) -> np.ndarray:
        """Path ids of the chosen members of a set.

        For factored sets only the chosen members are interned (the
        simulator picks one path per flow, so a trace materializes at
        most one full node path per flow instead of the whole ~w-wide
        candidate set per pair).
        """
        entry = self._sets[sid]
        if isinstance(entry, _FactoredSet):
            if entry.pids is not None:
                return entry.pids[choice]
            middles = self._sets[entry.switch_sid]
            paths = self._paths
            mapping = {
                int(j): self.intern_path(
                    (entry.src,) + paths[int(middles[int(j)])] + (entry.dst,)
                )
                for j in np.unique(choice).tolist()
            }
            return np.fromiter(
                (mapping[j] for j in choice.tolist()),
                dtype=np.int64,
                count=len(choice),
            )
        return entry[choice]

    def pair_set(self, src: int, dst: int) -> int:
        """The ECMP path set for a host pair, interned *factored*.

        The set is stored as (src, dst, switch-level sid): every host
        pair of a rack pair shares one switch-level path set, so the
        per-pair cost is O(1) instead of O(paths).  Member order equals
        :meth:`EcmpRouting.host_paths` order exactly.
        """
        key = (src, dst)
        sid = self._pair_sid.get(key)
        if sid is None:
            with self._lock:
                sid = self._pair_sid.get(key)
                if sid is None:
                    topo = self.topology
                    src_rack = topo.rack_of(src)
                    dst_rack = topo.rack_of(dst)
                    rkey = (src_rack, dst_rack)
                    switch_sid = self._rack_pair_sid.get(rkey)
                    if switch_sid is None:
                        # switch_paths(a, a) is the trivial single-node
                        # path, covering same-rack pairs.
                        switch_sid = self.intern_set(
                            self.routing.switch_paths(src_rack, dst_rack)
                        )
                        self._rack_pair_sid[rkey] = switch_sid
                    sid = len(self._sets)
                    self._sets.append(
                        _FactoredSet(
                            src, dst, switch_sid,
                            topo.link_id(src, src_rack),
                            topo.link_id(dst_rack, dst),
                        )
                    )
                    self._pair_sid[key] = sid
        return sid

    def pair_sets(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`pair_set` over aligned host arrays."""
        if len(src) == 0:
            return np.empty(0, dtype=np.int64)
        packed = src.astype(np.int64) * np.int64(self.topology.n_nodes) + dst
        uniq, inverse = np.unique(packed, return_inverse=True)
        n_nodes = self.topology.n_nodes
        sids = np.fromiter(
            (self.pair_set(int(key) // n_nodes, int(key) % n_nodes) for key in uniq),
            dtype=np.int64,
            count=len(uniq),
        )
        return sids[inverse]

    # ------------------------------------------------------------------
    # Component projections
    # ------------------------------------------------------------------
    @property
    def n_comp_paths(self) -> int:
        return len(self._comp_paths)

    def intern_components(self, components: Sequence[int]) -> int:
        key = tuple(sorted(set(components)))
        gid = self._comp_index.get(key)
        if gid is None:
            with self._lock:
                gid = self._comp_index.get(key)
                if gid is None:
                    gid = len(self._comp_paths)
                    self._comp_paths.append(key)
                    self._comp_index[key] = gid
        return gid

    def comp_path(self, gid: int) -> ComponentPath:
        """Sorted, de-duplicated component tuple of one component path."""
        return self._comp_paths[gid]

    def intern_comp_set(self, gids: Sequence[int]) -> int:
        key = tuple(gids)
        gsid = self._comp_set_index.get(key)
        if gsid is None:
            with self._lock:
                gsid = self._comp_set_index.get(key)
                if gsid is None:
                    gsid = len(self._comp_sets)
                    self._comp_sets.append(np.asarray(key, dtype=np.int64))
                    self._comp_set_index[key] = gsid
        return gsid

    def intern_factored_comp_set(
        self, ecomps: Tuple[int, ...], switch_gsid: int
    ) -> int:
        """Intern a component path set as endpoint comps + shared interior.

        ``ecomps`` (sorted component ids, present on every member path)
        plus the rack pair's interior projection set ``switch_gsid``
        describe the full set without enumerating per-pair projections.
        """
        key = ("f", ecomps, switch_gsid)
        gsid = self._comp_set_index.get(key)
        if gsid is None:
            with self._lock:
                gsid = self._comp_set_index.get(key)
                if gsid is None:
                    gsid = len(self._comp_sets)
                    self._comp_sets.append(
                        _FactoredCompSet(
                            np.asarray(ecomps, dtype=np.int64), switch_gsid
                        )
                    )
                    self._comp_set_index[key] = gsid
        return gsid

    def comp_set(self, gsid: int) -> np.ndarray:
        """Component-path ids of one component path set (ordered, with
        multiplicity - two ECMP node paths may share a projection).

        Factored sets expand lazily: each member's full projection is
        the (disjoint) union of the endpoint comps and one interior
        projection.  Only adapters and lazy object views call this for
        factored sets; the compressed pipeline uses
        :meth:`comp_set_parts`.
        """
        entry = self._comp_sets[gsid]
        if isinstance(entry, _FactoredCompSet):
            if entry.gids is None:
                with self._lock:
                    if entry.gids is None:
                        interior = self.comp_set(entry.switch_gsid)
                        e = tuple(entry.ecomps.tolist())
                        entry.gids = np.fromiter(
                            (
                                self.intern_components(
                                    e + self._comp_paths[int(g)]
                                )
                                for g in interior.tolist()
                            ),
                            dtype=np.int64,
                            count=len(interior),
                        )
            return entry.gids
        return entry

    def comp_set_is_factored(self, gsid: int) -> bool:
        return isinstance(self._comp_sets[gsid], _FactoredCompSet)

    def comp_set_parts(
        self, gsid: int
    ) -> Tuple[np.ndarray, np.ndarray, Tuple]:
        """(endpoint comps, member projection gids, interior-sharing key).

        For a factored set the members are the *interior* projections
        (shared across every host pair of the rack pair) and the key is
        ``("f", switch_gsid)``; for a plain set the members are the full
        projections, the endpoint array is empty, and the key is
        ``("p", gsid)``.  Two sets with equal keys share identical
        member arrays - the compressed problem build interns its
        interior path table once per distinct key.
        """
        entry = self._comp_sets[gsid]
        if isinstance(entry, _FactoredCompSet):
            return (
                entry.ecomps,
                self.comp_set(entry.switch_gsid),
                ("f", entry.switch_gsid),
            )
        return _EMPTY_I64, entry, ("p", gsid)

    def _project_path(self, pid: int, include_devices: bool) -> int:
        comps = self.topology.path_components(self._paths[pid], include_devices)
        return self.intern_components(comps)

    def path_gids(self, pids: np.ndarray, include_devices: bool) -> np.ndarray:
        """Component-path id of each node path (vectorized, memoized)."""
        cache = self._pid_gid[int(include_devices)]
        return cache.lookup(
            pids, lambda pid: self._project_path(pid, include_devices), self._lock
        )

    def exact_gsids(self, pids: np.ndarray, include_devices: bool) -> np.ndarray:
        """Component path-*set* id of each exactly-known node path."""
        cache = self._pid_gsid[int(include_devices)]

        def fill(pid: int) -> int:
            gid = self._project_path(pid, include_devices)
            return self.intern_comp_set((gid,))

        return cache.lookup(pids, fill, self._lock)

    def set_gsids(self, sids: np.ndarray, include_devices: bool) -> np.ndarray:
        """Component path-set id of each node path set.

        Factored pair sets project to *factored* component sets: the
        endpoint host links plus the rack pair's interior projection
        set, so the projection cost of a pair is O(1) once its rack
        pair has been seen.
        """
        cache = self._sid_gsid[int(include_devices)]

        def fill(sid: int) -> int:
            entry = self._sets[sid]
            if isinstance(entry, _FactoredSet):
                switch_gsid = int(
                    self.set_gsids(
                        np.asarray([entry.switch_sid], dtype=np.int64),
                        include_devices,
                    )[0]
                )
                if entry.src_link <= entry.dst_link:
                    ecomps = (entry.src_link, entry.dst_link)
                else:
                    ecomps = (entry.dst_link, entry.src_link)
                return self.intern_factored_comp_set(ecomps, switch_gsid)
            gids = self.path_gids(entry, include_devices)
            return self.intern_comp_set(gids.tolist())

        return cache.lookup(sids, fill, self._lock)

    # ------------------------------------------------------------------
    # Per-path link ids (used by the vectorized simulator and latency
    # model: drop probabilities and flap crossings are per-pid facts).
    # ------------------------------------------------------------------
    def path_link_ids(self, pid: int) -> Tuple[int, ...]:
        """Link ids along a node path, hop by hop (with multiplicity)."""
        nodes = self._paths[pid]
        link_id = self.topology.link_id
        return tuple(link_id(u, v) for u, v in zip(nodes, nodes[1:]))

    def comp_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of component ids per component path, covering every gid.

        The columnar problem builder gathers local path tables straight
        out of these arrays instead of iterating component tuples.
        """
        with self._lock:
            n = len(self._comp_paths)
            if self._cc_hwm < n:
                for gid in range(self._cc_hwm, n):
                    comps = self._comp_paths[gid]
                    self._cc_flat.extend(comps)
                    self._cc_off.append(self._cc_off[-1] + len(comps))
                self._cc_hwm = n
                self._cc_arrays = None
            if self._cc_arrays is None:
                self._cc_arrays = (
                    np.asarray(self._cc_flat, dtype=np.int64),
                    np.asarray(self._cc_off, dtype=np.int64),
                )
            return self._cc_arrays

    def link_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of link ids per node path, covering every interned pid.

        Link ids are pure topology facts, so the CSR is grown once per
        new path and reused across traces - the simulator computes all
        per-path drop probabilities of a trace with one vectorized
        reduce over it.
        """
        with self._lock:
            n = len(self._paths)
            if self._link_hwm < n:
                for pid in range(self._link_hwm, n):
                    links = self.path_link_ids(pid)
                    self._link_flat.extend(links)
                    self._link_off.append(self._link_off[-1] + len(links))
                self._link_hwm = n
                self._link_arrays = None
            if self._link_arrays is None:
                self._link_arrays = (
                    np.asarray(self._link_flat, dtype=np.int64),
                    np.asarray(self._link_off, dtype=np.int64),
                )
            return self._link_arrays

    def paths_cross_links(
        self, pids: np.ndarray, links: Iterable[int]
    ) -> np.ndarray:
        """Boolean per pid in ``pids``: does the path cross any of
        ``links``?  One whole-array pass over the link CSR."""
        link_arr = np.asarray(sorted(set(links)), dtype=np.int64)
        if len(link_arr) == 0 or len(pids) == 0:
            return np.zeros(len(pids), dtype=bool)
        flat_links, link_off = self.link_csr()
        crossed = np.zeros(len(link_off) - 1, dtype=bool)
        nonempty = np.diff(link_off) > 0
        if len(flat_links) and np.any(nonempty):
            hit = np.isin(flat_links, link_arr).astype(np.int64)
            crossed[nonempty] = (
                np.add.reduceat(hit, link_off[:-1][nonempty]) > 0
            )
        return crossed[pids]
