"""ECMP path enumeration over Clos-like fabrics.

The inference model (paper section 3.2) assumes "a flow F is routed via
ECMP; F takes one of w paths chosen uniformly at random".  This module
computes those path sets: all shortest paths between rack switches over
the switch-only subgraph, enumerated from a BFS predecessor DAG and
cached per rack pair (every host pair in the same rack pair shares the
same switch-level path set, so the cache is tiny relative to the number
of flows).

In a Clos, shortest paths are automatically valley-free (up/down), so no
separate valley-free filter is required; a ``max_paths`` guard protects
against pathological topologies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import RoutingError
from ..topology.base import Topology

NodePath = Tuple[int, ...]


class EcmpRouting:
    """Per-topology ECMP path provider with rack-pair caching.

    Parameters
    ----------
    topology:
        The fabric to route over.
    max_paths:
        Safety cap on the number of equal-cost paths enumerated per pair.
        Clos path-set sizes are small (k^2/4 in a fat-tree); hitting the
        cap raises, because silently truncating would bias inference.
    """

    def __init__(self, topology: Topology, max_paths: int = 4096) -> None:
        self._topo = topology
        self._max_paths = max_paths
        self._switch_cache: Dict[Tuple[int, int], Tuple[NodePath, ...]] = {}
        self._probe_cache: Dict[Tuple[int, int], Tuple[NodePath, ...]] = {}
        self._path_space = None

    @property
    def topology(self) -> Topology:
        return self._topo

    def path_space(self):
        """The shared :class:`~repro.routing.paths.PathSpace` of this
        routing instance.

        Lazily created, then reused by every trace built over this
        routing - path and path-set ids are assigned once per
        (topology, routing) pair and persist across traces, which is
        what makes the columnar pipeline's interning cost amortize to
        zero over an experiment's trace batch.
        """
        if self._path_space is None:
            from .paths import PathSpace

            self._path_space = PathSpace(self._topo, self)
        return self._path_space

    # ------------------------------------------------------------------
    # Switch-level path sets
    # ------------------------------------------------------------------
    def switch_paths(self, src: int, dst: int) -> Tuple[NodePath, ...]:
        """All shortest switch-only paths between two switches.

        Paths include both endpoints.  ``switch_paths(a, a)`` is the
        trivial single-node path.
        """
        if src == dst:
            return ((src,),)
        key = (src, dst)
        cached = self._switch_cache.get(key)
        if cached is not None:
            return cached
        reverse = self._switch_cache.get((dst, src))
        if reverse is not None:
            paths = tuple(tuple(reversed(p)) for p in reverse)
            self._switch_cache[key] = paths
            return paths
        paths = self._all_shortest_paths(src, dst)
        self._switch_cache[key] = paths
        return paths

    def _all_shortest_paths(self, src: int, dst: int) -> Tuple[NodePath, ...]:
        topo = self._topo
        dist = self._bfs_distances(dst)
        if dist.get(src) is None:
            raise RoutingError(
                f"no switch path from {topo.name(src)} to {topo.name(dst)}"
            )
        results: List[NodePath] = []
        stack: List[Tuple[int, Tuple[int, ...]]] = [(src, (src,))]
        while stack:
            node, prefix = stack.pop()
            if node == dst:
                results.append(prefix)
                if len(results) > self._max_paths:
                    raise RoutingError(
                        f"more than {self._max_paths} equal-cost paths "
                        f"between {topo.name(src)} and {topo.name(dst)}"
                    )
                continue
            next_dist = dist[node] - 1
            for nbr, _ in topo.neighbors(node):
                if dist.get(nbr) == next_dist:
                    stack.append((nbr, prefix + (nbr,)))
        results.sort()
        return tuple(results)

    def _bfs_distances(self, target: int) -> Dict[int, int]:
        """Hop distance to ``target`` over the switch-only subgraph."""
        topo = self._topo
        dist: Dict[int, int] = {target: 0}
        frontier = [target]
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                for nbr, _ in topo.neighbors(node):
                    if topo.role(nbr) == "host" or nbr in dist:
                        continue
                    dist[nbr] = dist[node] + 1
                    nxt.append(nbr)
            frontier = nxt
        return dist

    # ------------------------------------------------------------------
    # Host-level path sets
    # ------------------------------------------------------------------
    def host_paths(self, src_host: int, dst_host: int) -> Tuple[NodePath, ...]:
        """All ECMP paths between two hosts, endpoints included."""
        topo = self._topo
        if src_host == dst_host:
            raise RoutingError("src and dst hosts must differ")
        src_rack = topo.rack_of(src_host)
        dst_rack = topo.rack_of(dst_host)
        if src_rack == dst_rack:
            return ((src_host, src_rack, dst_host),)
        switch_level = self.switch_paths(src_rack, dst_rack)
        return tuple((src_host,) + middle + (dst_host,) for middle in switch_level)

    # ------------------------------------------------------------------
    # Probe paths (A1: host <-> core, NetBouncer-style)
    # ------------------------------------------------------------------
    def probe_paths(self, host: int, core: int) -> Tuple[NodePath, ...]:
        """All shortest paths from a host up to a core/spine switch.

        A1 probes are bounced off the core switch back to the sender
        (NetBouncer's IP-in-IP trick), so the probe traverses exactly
        these links - twice, which leaves the component set unchanged.
        """
        topo = self._topo
        rack = topo.rack_of(host)
        key = (rack, core)
        cached = self._probe_cache.get(key)
        if cached is None:
            cached = self.switch_paths(rack, core)
            self._probe_cache[key] = cached
        return tuple((host,) + middle for middle in cached)

    # ------------------------------------------------------------------
    # Cache statistics (useful when sizing experiments)
    # ------------------------------------------------------------------
    @property
    def cached_pairs(self) -> int:
        return len(self._switch_cache)


def wcmp_weights(paths: Tuple[NodePath, ...], capacities=None) -> Tuple[float, ...]:
    """Per-path WCMP weights (paper: "Equation 1 can also be adapted to
    include path weights, like in WCMP [61]").

    With no capacity information, weights are uniform.  With a mapping
    from link id or node pair to capacity, each path is weighted by its
    bottleneck capacity and the result normalized to sum to 1.
    """
    if not paths:
        raise RoutingError("cannot weight an empty path set")
    if capacities is None:
        return tuple(1.0 / len(paths) for _ in paths)
    weights: List[float] = []
    for path in paths:
        bottleneck = float("inf")
        for edge in zip(path, path[1:]):
            cap = capacities.get(edge) or capacities.get((edge[1], edge[0]))
            if cap is None:
                raise RoutingError(f"missing capacity for edge {edge}")
            bottleneck = min(bottleneck, cap)
        weights.append(bottleneck)
    total = sum(weights)
    if total <= 0:
        raise RoutingError("total path capacity must be positive")
    return tuple(w / total for w in weights)
