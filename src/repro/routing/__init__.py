"""Routing substrate: ECMP path enumeration and path interning."""

from .ecmp import EcmpRouting, wcmp_weights
from .paths import PathSetTable, PathSpace, PathTable

__all__ = [
    "EcmpRouting", "wcmp_weights", "PathTable", "PathSetTable", "PathSpace",
]
