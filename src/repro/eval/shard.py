"""Static sharding: contiguous index-range adapters over the work-unit layer.

A *shard* is a contiguous range of trace indices.  Sharding is the
static scheduling policy over :mod:`repro.eval.units`: a
:class:`ShardRecorder` is a :class:`~repro.eval.units.UnitRecorder`
whose unit for every grid call is its shard's
:func:`shard_bounds` range, and the merge replays recorded units
through the shared :class:`~repro.eval.units.UnitReplayer` - the same
streaming ``_SummaryAccumulator`` fold that merges per-trace units in a
local run.  Serial, sharded-in-process, sharded-subprocess, and
fleet-brokered executions therefore all produce bit-identical
:class:`~repro.eval.harness.EvalSummary` metrics for fixed seeds - in
any shard/unit count and any completion order.  (The dynamic
scheduling policy over the same layer - a SQLite queue of leased work
units - lives in :mod:`repro.eval.broker` / :mod:`repro.eval.fleet`.)

Three layers:

* **Splitting** - :func:`shard_bounds` / :class:`ShardSpec` compute the
  balanced contiguous index ranges.
* **Grid hooks** - :class:`ShardRecorder` (execute my range, record
  wire units per grid call) and :class:`ShardReplayer` (execute
  nothing, fold recorded units), installed via ``RunnerConfig.shard``.
  Recording is call-indexed, so a whole *experiment* - any number of
  sequential ``run_grid`` invocations - can be sharded, not just one
  grid: the merge re-runs the experiment driver with a replayer and
  every grid call picks up its merged results in order.
* **Drivers** - :func:`run_sharded` executes one grid's shards locally
  (optionally each shard in its own OS process) and merges;
  :func:`merge_payloads` validates and combines shard files produced by
  distributed workers (e.g. ``repro-flock run ... --shards N
  --shard-index I``).

Sharding assumes the experiment's sequence of grid calls is a pure
function of the experiment *spec* (name, preset, seed, overrides) -
never of evaluation results.  Spec-based experiments satisfy this by
construction: :func:`~repro.eval.spec.run_spec` issues one grid call
per scheme point, in spec order, and any result-dependent work (the
table1 calibrate phase) happens at spec-*build* time, identically and
unsharded in every worker and in the merge.  Experiments registered
with ``shardable=False`` (probe-only timing experiments; ``table1``,
whose build-time calibration dominates its cost) are refused by the
CLI.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .runner import RunnerConfig, run_grid
from .serialize import SCHEMA_VERSION, check_schema_version
from .units import UnitRecorder, UnitReplayer, check_call_coverage

SHARD_FORMAT = "flock-shard-v1"

#: Payload metadata keys that must agree across merged shard files.
#: ``scheme`` and ``overrides`` capture the CLI's ``--scheme`` /
#: ``--set`` flags: the merge rebuilds the experiment spec from this
#: metadata, so anything that changes the spec must round-trip here.
_META_KEYS = ("experiment", "preset", "seed", "scheme", "overrides")


def shard_bounds(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Balanced contiguous ``[start, stop)`` ranges covering ``n_items``.

    The first ``n_items % n_shards`` shards take one extra item; with
    more shards than items the tail shards are empty (a valid, if
    wasteful, configuration).
    """
    if n_shards < 1:
        raise ExperimentError(f"n_shards must be >= 1, got {n_shards}")
    if n_items < 0:
        raise ExperimentError(f"n_items must be >= 0, got {n_items}")
    base, extra = divmod(n_items, n_shards)
    bounds = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


@dataclass(frozen=True)
class ShardSpec:
    """Which contiguous slice of a batch this worker owns: ``index`` of
    ``count`` total shards."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ExperimentError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ExperimentError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )

    def bounds(self, n_items: int) -> Tuple[int, int]:
        """This shard's ``[start, stop)`` range over ``n_items``."""
        return shard_bounds(n_items, self.count)[self.index]


class ShardRecorder(UnitRecorder):
    """``RunnerConfig.shard`` hook for a shard *worker*.

    The static-policy :class:`~repro.eval.units.UnitRecorder`: every
    grid call's executed unit is this shard's balanced contiguous range
    of the call's traces.  Each call's executed units are recorded in
    wire form so a replayer can line them back up with the same call
    sequence.
    """

    def __init__(self, spec: ShardSpec):
        super().__init__()
        self.spec = spec

    def call_range(
        self, call_index: int, labels: Sequence[str], n_traces: int
    ) -> Tuple[int, int]:
        return self.spec.bounds(n_traces)

    def payload(self, **meta) -> Dict:
        """The shard's complete output as a JSON-compatible document."""
        return {
            "format": SHARD_FORMAT,
            "v": SCHEMA_VERSION,
            "shard_index": self.spec.index,
            "n_shards": self.spec.count,
            "calls": self.calls,
            **meta,
        }


#: The merge-side hook is the shared work-unit replayer; the name stays
#: for the shard layer's public API (CLI, tests, downstream scripts).
ShardReplayer = UnitReplayer


def _validate_payload_shape(payload) -> None:
    """Structural validation of one shard document.

    Shard files come from other machines; a truncated write, a stale
    checkout's wire format, or a hand edit must surface as
    :class:`ExperimentError`, never as a raw ``TypeError``/``KeyError``
    from deep inside the merge.
    """
    if not isinstance(payload, dict):
        raise ExperimentError(
            f"shard payload must be an object, got {type(payload).__name__}"
        )
    if payload.get("format") != SHARD_FORMAT:
        raise ExperimentError(
            f"not a {SHARD_FORMAT} document: format={payload.get('format')!r}"
        )
    check_schema_version(payload, "shard")
    if not isinstance(payload.get("shard_index"), int):
        raise ExperimentError(
            f"shard file has invalid shard_index: {payload.get('shard_index')!r}"
        )
    calls = payload.get("calls")
    if not isinstance(calls, list):
        raise ExperimentError(f"shard file has invalid calls: {calls!r}")
    for call in calls:
        if not (
            isinstance(call, dict)
            and isinstance(call.get("labels"), list)
            and isinstance(call.get("n_traces"), int)
            and isinstance(call.get("units"), list)
            and all(
                isinstance(unit, (list, tuple)) and len(unit) == 2
                and isinstance(unit[0], int) and isinstance(unit[1], list)
                for unit in call["units"]
            )
        ):
            raise ExperimentError(
                "shard file has a malformed grid-call record "
                "(expected {labels, n_traces, units: [[idx, results], ...]})"
            )


def merge_payloads(payloads: Sequence[Dict]) -> Tuple[List[Dict], Dict]:
    """Validate shard payloads and merge them into replayable calls.

    Returns ``(calls, meta)``: the merged per-call unit lists (each
    call's units sorted by trace index), and the shared metadata of the
    shard set.  Raises :class:`ExperimentError` unless the payloads
    form exactly one complete shard set - same metadata, every shard
    index 0..N-1 present once, every call's indices covering its trace
    range exactly - and the merged experiment evaluated at least one
    trace (a merge of only-empty shards must fail loudly, not report a
    vacuous score).

    Payload order does not matter: merging is keyed by trace index, so
    shards can complete and be merged in any order.
    """
    if not payloads:
        raise ExperimentError("no shard payloads to merge")
    for payload in payloads:
        _validate_payload_shape(payload)
    first = payloads[0]
    n_shards = first.get("n_shards")
    if not isinstance(n_shards, int) or n_shards < 1:
        raise ExperimentError(f"invalid n_shards in shard file: {n_shards!r}")
    meta = {key: first.get(key) for key in _META_KEYS if key in first}
    for payload in payloads:
        if payload.get("n_shards") != n_shards:
            raise ExperimentError(
                f"shard files disagree on n_shards: {n_shards} vs "
                f"{payload.get('n_shards')}"
            )
        for key in _META_KEYS:
            if payload.get(key) != first.get(key):
                raise ExperimentError(
                    f"shard files disagree on {key!r}: "
                    f"{first.get(key)!r} vs {payload.get(key)!r}"
                )
    indices = sorted(payload.get("shard_index") for payload in payloads)
    if indices != list(range(n_shards)):
        raise ExperimentError(
            f"incomplete or duplicated shard set: expected indices "
            f"{list(range(n_shards))}, got {indices}"
        )
    n_calls = {len(payload["calls"]) for payload in payloads}
    if len(n_calls) != 1:
        raise ExperimentError(
            f"shard files recorded different grid-call counts: {sorted(n_calls)}"
        )

    merged: List[Dict] = []
    total_units = 0
    for call_idx in range(n_calls.pop()):
        calls = [payload["calls"][call_idx] for payload in payloads]
        labels, n_traces = calls[0]["labels"], calls[0]["n_traces"]
        for call in calls:
            if call["labels"] != labels or call["n_traces"] != n_traces:
                raise ExperimentError(
                    f"shard files disagree on the shape of grid call {call_idx}"
                )
        units = sorted(
            (unit for call in calls for unit in call["units"]),
            key=lambda unit: unit[0],
        )
        check_call_coverage(call_idx, n_traces, units, "shard")
        total_units += len(units)
        merged.append({"labels": labels, "n_traces": n_traces, "units": units})
    if merged and total_units == 0:
        raise ExperimentError(
            "merged shards contain no evaluated traces; refusing to report "
            "metrics computed from zero traces"
        )
    return merged, meta


def _run_shard_payload(setups, traces, spec: ShardSpec, config: RunnerConfig):
    """Execute one shard's contiguous-range units; return its wire payload
    (pool-friendly)."""
    recorder = ShardRecorder(spec)
    run_grid(setups, traces, replace(config, shard=recorder))
    return recorder.payload()


def run_sharded(
    setups: Sequence,
    traces: Sequence,
    n_shards: int,
    config: Optional[RunnerConfig] = None,
    shard_jobs: int = 1,
) -> Dict[str, object]:
    """Evaluate a grid by splitting its traces into ``n_shards`` shards.

    The broker-less in-process path over the work-unit layer: each
    shard's contiguous-range units execute through :func:`run_grid`
    under ``config`` (executor, jobs, cache all apply *within* a
    shard); ``shard_jobs > 1`` additionally runs shards concurrently,
    each in its own OS process, with only serialized results crossing
    back.  The merged summaries are bit-identical to
    ``run_grid(setups, traces, config)``.
    """
    config = config or RunnerConfig()
    if config.shard is not None:
        raise ExperimentError("run_sharded cannot nest inside another shard")
    specs = [ShardSpec(i, n_shards) for i in range(n_shards)]
    if shard_jobs > 1 and n_shards > 1:
        with ProcessPoolExecutor(max_workers=min(shard_jobs, n_shards)) as pool:
            payloads = list(
                pool.map(
                    _run_shard_payload,
                    [setups] * n_shards,
                    [traces] * n_shards,
                    specs,
                    [config] * n_shards,
                )
            )
    else:
        payloads = [
            _run_shard_payload(setups, traces, spec, config) for spec in specs
        ]
    return merge_shards(setups, traces, payloads, config)


def merge_shards(
    setups: Sequence,
    traces: Sequence,
    payloads: Sequence[Dict],
    config: Optional[RunnerConfig] = None,
) -> Dict[str, object]:
    """Merge one grid's shard payloads into full ``EvalSummary`` objects.

    The fold is the runner's own streaming accumulator, driven in
    replay mode, so the merge is exactly the code path a serial run
    aggregates through.
    """
    calls, _meta = merge_payloads(payloads)
    replayer = ShardReplayer(calls)
    summaries = run_grid(
        setups, traces, replace(config or RunnerConfig(), shard=replayer)
    )
    replayer.assert_exhausted()
    return summaries
