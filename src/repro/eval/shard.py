"""Shard a trace batch across workers, processes, or machines.

A *shard* is a contiguous range of trace indices.  Each shard executes
its range through the unchanged :func:`~repro.eval.runner.run_grid`
machinery and keeps only wire-format results (the
:mod:`repro.eval.serialize` codec; ``TraceResult.problem`` never goes on
the wire).  A merge then replays every shard's recorded units through
the same streaming ``_SummaryAccumulator`` fold that merges per-trace
units in a local run, so serial, sharded-in-process, and
sharded-subprocess executions produce bit-identical
:class:`~repro.eval.harness.EvalSummary` metrics for fixed seeds - in
any shard count and any shard completion order.

Three layers:

* **Splitting** - :func:`shard_bounds` / :class:`ShardSpec` compute the
  balanced contiguous index ranges.
* **Grid hooks** - :class:`ShardRecorder` (execute my range, record
  wire units per grid call) and :class:`ShardReplayer` (execute
  nothing, fold recorded units), installed via ``RunnerConfig.shard``.
  Recording is call-indexed, so a whole *experiment* - any number of
  sequential ``run_grid`` invocations - can be sharded, not just one
  grid: the merge re-runs the experiment driver with a replayer and
  every grid call picks up its merged results in order.
* **Drivers** - :func:`run_sharded` executes one grid's shards locally
  (optionally each shard in its own OS process) and merges;
  :func:`merge_payloads` validates and combines shard files produced by
  distributed workers (e.g. ``repro-flock run ... --shards N
  --shard-index I``).

Sharding assumes the experiment's sequence of grid calls is a pure
function of the experiment *spec* (name, preset, seed, overrides) -
never of evaluation results.  Spec-based experiments satisfy this by
construction: :func:`~repro.eval.spec.run_spec` issues one grid call
per scheme point, in spec order, and any result-dependent work (the
table1 calibrate phase) happens at spec-*build* time, identically and
unsharded in every worker and in the merge.  Experiments registered
with ``shardable=False`` (probe-only timing experiments; ``table1``,
whose build-time calibration dominates its cost) are refused by the
CLI.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .runner import RunnerConfig, run_grid
from .serialize import trace_result_from_wire, trace_result_to_wire

SHARD_FORMAT = "flock-shard-v1"

#: Payload metadata keys that must agree across merged shard files.
#: ``scheme`` and ``overrides`` capture the CLI's ``--scheme`` /
#: ``--set`` flags: the merge rebuilds the experiment spec from this
#: metadata, so anything that changes the spec must round-trip here.
_META_KEYS = ("experiment", "preset", "seed", "scheme", "overrides")


def shard_bounds(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Balanced contiguous ``[start, stop)`` ranges covering ``n_items``.

    The first ``n_items % n_shards`` shards take one extra item; with
    more shards than items the tail shards are empty (a valid, if
    wasteful, configuration).
    """
    if n_shards < 1:
        raise ExperimentError(f"n_shards must be >= 1, got {n_shards}")
    if n_items < 0:
        raise ExperimentError(f"n_items must be >= 0, got {n_items}")
    base, extra = divmod(n_items, n_shards)
    bounds = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


@dataclass(frozen=True)
class ShardSpec:
    """Which contiguous slice of a batch this worker owns: ``index`` of
    ``count`` total shards."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ExperimentError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ExperimentError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )

    def bounds(self, n_items: int) -> Tuple[int, int]:
        """This shard's ``[start, stop)`` range over ``n_items``."""
        return shard_bounds(n_items, self.count)[self.index]


class ShardRecorder:
    """``RunnerConfig.shard`` hook for a shard *worker*.

    Each ``run_grid`` call executes only this shard's index range and
    records every executed unit's per-setup results in wire form,
    grouped per call so a replayer can line them back up with the same
    call sequence.
    """

    is_replay = False

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.calls: List[Dict] = []

    def select_call(self, labels: Sequence[str], n_traces: int) -> range:
        """Open a new grid-call record; return the indices to execute."""
        self.calls.append(
            {"labels": list(labels), "n_traces": n_traces, "units": []}
        )
        start, stop = self.spec.bounds(n_traces)
        return range(start, stop)

    def record(self, trace_idx: int, results: Sequence) -> None:
        """Serialize one executed unit into the open call record."""
        self.calls[-1]["units"].append(
            [trace_idx, [trace_result_to_wire(r) for r in results]]
        )

    def payload(self, **meta) -> Dict:
        """The shard's complete output as a JSON-compatible document."""
        return {
            "format": SHARD_FORMAT,
            "shard_index": self.spec.index,
            "n_shards": self.spec.count,
            "calls": self.calls,
            **meta,
        }


class ShardReplayer:
    """``RunnerConfig.shard`` hook for the *merge*.

    Feeds merged recorded units back into ``run_grid`` call by call;
    nothing is executed.  Each replayed call is validated against the
    live grid's shape (setup labels and trace count) so a shard file
    from a different experiment, preset, or seed cannot be merged
    silently.
    """

    is_replay = True

    def __init__(self, calls: Sequence[Dict]):
        self._calls = list(calls)
        self._cursor = 0

    def replay_call(self, labels: Sequence[str], n_traces: int):
        """Results for the next grid call: ``[(trace_idx, [TraceResult])]``."""
        if self._cursor >= len(self._calls):
            raise ExperimentError(
                "shard replay exhausted: the experiment issued more grid "
                "calls than the shard files recorded"
            )
        call = self._calls[self._cursor]
        self._cursor += 1
        if call["labels"] != list(labels) or call["n_traces"] != n_traces:
            raise ExperimentError(
                f"shard replay mismatch at call {self._cursor - 1}: recorded "
                f"({call['labels']}, {call['n_traces']} traces) vs live "
                f"({list(labels)}, {n_traces} traces)"
            )
        return [
            (idx, [trace_result_from_wire(w) for w in wires])
            for idx, wires in call["units"]
        ]

    def assert_exhausted(self) -> None:
        """Require that every recorded grid call was replayed.

        A driver that issues fewer grid calls than the shards recorded
        (e.g. the experiment was edited between recording and merging)
        would otherwise silently drop the tail calls and report a
        complete-looking but partial result.
        """
        if self._cursor != len(self._calls):
            raise ExperimentError(
                f"shard replay incomplete: the shard files recorded "
                f"{len(self._calls)} grid call(s) but only {self._cursor} "
                "were replayed; the experiment driver no longer matches "
                "the one the shards ran"
            )


def _validate_payload_shape(payload) -> None:
    """Structural validation of one shard document.

    Shard files come from other machines; a truncated write or hand
    edit must surface as :class:`ExperimentError`, never as a raw
    ``TypeError``/``KeyError`` from deep inside the merge.
    """
    if not isinstance(payload, dict):
        raise ExperimentError(
            f"shard payload must be an object, got {type(payload).__name__}"
        )
    if payload.get("format") != SHARD_FORMAT:
        raise ExperimentError(
            f"not a {SHARD_FORMAT} document: format={payload.get('format')!r}"
        )
    if not isinstance(payload.get("shard_index"), int):
        raise ExperimentError(
            f"shard file has invalid shard_index: {payload.get('shard_index')!r}"
        )
    calls = payload.get("calls")
    if not isinstance(calls, list):
        raise ExperimentError(f"shard file has invalid calls: {calls!r}")
    for call in calls:
        if not (
            isinstance(call, dict)
            and isinstance(call.get("labels"), list)
            and isinstance(call.get("n_traces"), int)
            and isinstance(call.get("units"), list)
            and all(
                isinstance(unit, (list, tuple)) and len(unit) == 2
                and isinstance(unit[0], int) and isinstance(unit[1], list)
                for unit in call["units"]
            )
        ):
            raise ExperimentError(
                "shard file has a malformed grid-call record "
                "(expected {labels, n_traces, units: [[idx, results], ...]})"
            )


def merge_payloads(payloads: Sequence[Dict]) -> Tuple[List[Dict], Dict]:
    """Validate shard payloads and merge them into replayable calls.

    Returns ``(calls, meta)``: the merged per-call unit lists (each
    call's units sorted by trace index), and the shared metadata of the
    shard set.  Raises :class:`ExperimentError` unless the payloads
    form exactly one complete shard set - same metadata, every shard
    index 0..N-1 present once, every call's indices covering its trace
    range exactly - and the merged experiment evaluated at least one
    trace (a merge of only-empty shards must fail loudly, not report a
    vacuous score).

    Payload order does not matter: merging is keyed by trace index, so
    shards can complete and be merged in any order.
    """
    if not payloads:
        raise ExperimentError("no shard payloads to merge")
    for payload in payloads:
        _validate_payload_shape(payload)
    first = payloads[0]
    n_shards = first.get("n_shards")
    if not isinstance(n_shards, int) or n_shards < 1:
        raise ExperimentError(f"invalid n_shards in shard file: {n_shards!r}")
    meta = {key: first.get(key) for key in _META_KEYS if key in first}
    for payload in payloads:
        if payload.get("n_shards") != n_shards:
            raise ExperimentError(
                f"shard files disagree on n_shards: {n_shards} vs "
                f"{payload.get('n_shards')}"
            )
        for key in _META_KEYS:
            if payload.get(key) != first.get(key):
                raise ExperimentError(
                    f"shard files disagree on {key!r}: "
                    f"{first.get(key)!r} vs {payload.get(key)!r}"
                )
    indices = sorted(payload.get("shard_index") for payload in payloads)
    if indices != list(range(n_shards)):
        raise ExperimentError(
            f"incomplete or duplicated shard set: expected indices "
            f"{list(range(n_shards))}, got {indices}"
        )
    n_calls = {len(payload["calls"]) for payload in payloads}
    if len(n_calls) != 1:
        raise ExperimentError(
            f"shard files recorded different grid-call counts: {sorted(n_calls)}"
        )

    merged: List[Dict] = []
    total_units = 0
    for call_idx in range(n_calls.pop()):
        calls = [payload["calls"][call_idx] for payload in payloads]
        labels, n_traces = calls[0]["labels"], calls[0]["n_traces"]
        for call in calls:
            if call["labels"] != labels or call["n_traces"] != n_traces:
                raise ExperimentError(
                    f"shard files disagree on the shape of grid call {call_idx}"
                )
        units = sorted(
            (unit for call in calls for unit in call["units"]),
            key=lambda unit: unit[0],
        )
        covered = [unit[0] for unit in units]
        if covered != list(range(n_traces)):
            raise ExperimentError(
                f"grid call {call_idx} has incomplete shard coverage: "
                f"expected traces 0..{n_traces - 1}, got {covered}"
            )
        total_units += len(units)
        merged.append({"labels": labels, "n_traces": n_traces, "units": units})
    if merged and total_units == 0:
        raise ExperimentError(
            "merged shards contain no evaluated traces; refusing to report "
            "metrics computed from zero traces"
        )
    return merged, meta


def _run_shard_payload(setups, traces, spec: ShardSpec, config: RunnerConfig):
    """Execute one shard and return its wire payload (pool-friendly)."""
    recorder = ShardRecorder(spec)
    run_grid(setups, traces, replace(config, shard=recorder))
    return recorder.payload()


def run_sharded(
    setups: Sequence,
    traces: Sequence,
    n_shards: int,
    config: Optional[RunnerConfig] = None,
    shard_jobs: int = 1,
) -> Dict[str, object]:
    """Evaluate a grid by splitting its traces into ``n_shards`` shards.

    Each shard runs through :func:`run_grid` under ``config`` (executor,
    jobs, cache all apply *within* a shard); ``shard_jobs > 1``
    additionally runs shards concurrently, each in its own OS process,
    with only serialized results crossing back.  The merged summaries
    are bit-identical to ``run_grid(setups, traces, config)``.
    """
    config = config or RunnerConfig()
    if config.shard is not None:
        raise ExperimentError("run_sharded cannot nest inside another shard")
    specs = [ShardSpec(i, n_shards) for i in range(n_shards)]
    if shard_jobs > 1 and n_shards > 1:
        with ProcessPoolExecutor(max_workers=min(shard_jobs, n_shards)) as pool:
            payloads = list(
                pool.map(
                    _run_shard_payload,
                    [setups] * n_shards,
                    [traces] * n_shards,
                    specs,
                    [config] * n_shards,
                )
            )
    else:
        payloads = [
            _run_shard_payload(setups, traces, spec, config) for spec in specs
        ]
    return merge_shards(setups, traces, payloads, config)


def merge_shards(
    setups: Sequence,
    traces: Sequence,
    payloads: Sequence[Dict],
    config: Optional[RunnerConfig] = None,
) -> Dict[str, object]:
    """Merge one grid's shard payloads into full ``EvalSummary`` objects.

    The fold is the runner's own streaming accumulator, driven in
    replay mode, so the merge is exactly the code path a serial run
    aggregates through.
    """
    calls, _meta = merge_payloads(payloads)
    replayer = ShardReplayer(calls)
    summaries = run_grid(
        setups, traces, replace(config or RunnerConfig(), shard=replayer)
    )
    replayer.assert_exhausted()
    return summaries
