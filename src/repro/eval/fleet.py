"""Fleet evaluation: broker-driven workers and the result collector.

The dynamic scheduling policy over :mod:`repro.eval.units` (the static
one is :mod:`repro.eval.shard`).  One submitter decomposes an
experiment into work units and loads them into a SQLite
:class:`~repro.eval.broker.Broker`; any number of workers - started at
any time, on any machine sharing the broker file - pull units, execute
them through the ordinary :func:`~repro.eval.spec.run_spec` machinery,
and write wire-codec results back; the collector reassembles the full
:class:`~repro.eval.spec.ExperimentResult`, bit-identical to a serial
``repro-flock run`` for the same spec.

Flow::

    submit(path, "fig2", preset="tiny")        # units -> broker
    work(path)  x N processes                  # lease, run, complete
    result = collect(path)                     # fold + replay

Fault tolerance comes from the broker's lease lifecycle: a worker that
dies mid-unit simply stops renewing its claim, the lease expires, and
the unit is re-leased to whoever claims next; determinism (all
randomness flows from per-trace seeds) makes the re-run's results
identical to what the dead worker would have produced.  Workers with
nothing claimable but leases still outstanding sleep until the next
lease expiry, so a fleet of N workers survives any N-1 of them
crashing.  A unit that keeps *failing* (the experiment itself raises)
moves to ``failed`` after the broker's ``max_attempts`` - the last
traceback is stored on the unit row (``fleet status --detail``) - and
:func:`collect` refuses to produce a result until someone intervenes.

Hardening (exercised by :mod:`repro.eval.chaos`):

* **Heartbeats**: while a unit executes, a background ticker renews
  the lease every ``heartbeat_seconds`` (default: a third of the
  lease), so a unit legitimately running many multiples of
  ``lease_seconds`` is never re-leased out from under a live worker
  and never double-counted.  A worker that truly dies stops
  heartbeating and the ordinary expiry path takes over.
* **Backoff**: every broker operation goes through a
  :class:`~repro.retry.RetryPolicy` (exponential backoff + jitter), so
  transient ``database is locked`` contention costs milliseconds, not
  a dead worker.
* **Checksums**: the worker checksums each result payload before it
  crosses the wire; :func:`collect` audits stored payloads and
  re-queues corrupted units instead of folding garbage.

Cost model matches sharding: every worker re-runs the spec builder and
pays trace generation per *point* it touches (amortized across that
worker's units via ``run_spec``'s ``point_cache``); only problem
building and inference are divided.  Prefer ``unit_traces`` well above
1 unless retries are the dominant concern.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Optional

from ..errors import ExperimentError, FleetError
from ..retry import DEFAULT_BROKER_RETRY, RetryPolicy
from .broker import (
    Broker,
    ExperimentRow,
    FleetCounts,
    LeasedUnit,
    _validate_budgets,
    plan_fingerprint,
)
from .runner import RunnerConfig
from .serialize import encode_unit_payload
from .spec import (
    ExperimentResult,
    build_experiment_spec,
    get_experiment,
    run_spec,
    shardable_experiment_names,
)
from .units import (
    SingleUnitRecorder,
    UnitReplayer,
    assemble_calls,
    plan_calls,
    plan_units,
)


@dataclass(frozen=True)
class SubmitReport:
    """What a submission loaded into the broker."""

    path: Path
    experiment: str
    preset: str
    n_calls: int
    n_units: int
    name: str = ""  #: experiment name inside the broker (default: registry name)
    priority: int = 0
    resumed: bool = False  #: an interrupted submission was picked back up
    n_enqueued: int = 0  #: units inserted by *this* call (< n_units on resume)


@dataclass(frozen=True)
class WorkerReport:
    """One worker run's tally."""

    worker: str
    completed: int
    failed: int
    stale: int  #: completions discarded because the lease had expired
    renewed: int = 0  #: successful mid-unit heartbeat lease renewals
    io_retries: int = 0  #: transient broker faults absorbed by backoff


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


#: Units longer than this fraction of the lease get their lease renewed
#: by the heartbeat ticker (``heartbeat_seconds=None`` resolves to
#: ``lease_seconds * HEARTBEAT_FRACTION``).
HEARTBEAT_FRACTION = 1.0 / 3.0


class _HeartbeatTicker:
    """Renew one unit's lease from a background thread while it runs.

    The ticker opens its own broker connection (SQLite connections are
    per-thread) and renews every ``interval`` seconds until stopped.  A
    renewal that comes back ``None`` means the lease was lost (expired
    and reaped, or re-leased) - the ticker stops; the worker's eventual
    ``complete`` will be discarded as stale, which is the correct
    outcome.  Renewal errors are swallowed: a transient broker fault
    must not kill the unit mid-flight, and if renewal keeps failing the
    lease simply expires and the ordinary crash path takes over.
    """

    def __init__(
        self,
        broker_path,
        unit_id: int,
        worker: str,
        interval: float,
        clock: Callable[[], float] = time.time,
        retry: RetryPolicy = DEFAULT_BROKER_RETRY,
    ) -> None:
        self._broker_path = broker_path
        self._unit_id = unit_id
        self._worker = worker
        self._interval = interval
        self._clock = clock
        self._retry = retry
        self._stop = threading.Event()
        self.lost = False
        self.renewals = 0
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{unit_id}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        try:
            broker = Broker.open(self._broker_path)
        except Exception:  # noqa: BLE001 - see class docstring
            return
        try:
            rng = self._retry.make_rng()
            while not self._stop.wait(self._interval):
                try:
                    expiry = self._retry.call(
                        broker.renew, self._unit_id, self._worker,
                        now=self._clock(), rng=rng,
                    )
                except Exception:  # noqa: BLE001 - keep the unit alive
                    continue
                if expiry is None:
                    self.lost = True
                    return
                self.renewals += 1
        finally:
            broker.close()

    def stop(self) -> int:
        """Stop the ticker and return how many renewals it made."""
        self._stop.set()
        self._thread.join(timeout=30.0)
        return self.renewals


def _format_unit_error(exc: BaseException, limit: int = 8000) -> str:
    """The traceback a failed unit stores for ``fleet status --detail``."""
    text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    ).rstrip()
    if len(text) > limit:
        text = "...\n" + text[-limit:]
    return text


#: Units inserted per journaled enqueue transaction.  Small enough that
#: a killed submitter redoes at most one batch; large enough that the
#: per-transaction overhead is noise.
SUBMIT_BATCH = 64


def submit(
    broker_path,
    experiment: str,
    preset: str = "ci",
    seed: Optional[int] = None,
    scheme: Optional[str] = None,
    overrides: Optional[Dict[str, object]] = None,
    unit_traces: int = 1,
    lease_seconds: float = 60.0,
    max_attempts: int = 3,
    name: Optional[str] = None,
    priority: int = 0,
    if_exists: str = "fail",
    on_batch: Optional[Callable[[int, int], None]] = None,
    batch_size: int = SUBMIT_BATCH,
) -> SubmitReport:
    """Decompose an experiment into work units and enqueue them.

    The spec is built once here to compute the :class:`CallPlan`
    sequence (the schema workers validate against); nothing is
    evaluated.  Fails on experiments registered ``shardable=False`` -
    the fleet shares sharding's purity requirement on the grid-call
    sequence.

    The broker file is created if absent and extended otherwise: one
    broker holds any number of experiments, each named (``name``,
    default: the registry name) and scheduled by ``priority`` (higher
    drains first).  Submission is **journaled and crash-safe**: the
    experiment row is written first in ``'enqueueing'`` state with the
    plan fingerprint, units land in batches of ``batch_size``, and the
    row only flips ``'ready'`` (claimable) once every planned unit is
    in.  A submitter killed mid-enqueue therefore strands nothing.

    ``if_exists`` governs a re-run against a broker that already holds
    this experiment name:

    * ``'fail'`` (default): raise - a re-run never silently
      double-enqueues.
    * ``'resume'``: if the stored plan fingerprint matches this
      submission exactly, pick up where the dead submitter stopped
      (verifying the already-inserted prefix) and finish the journal;
      a fingerprint mismatch - different grid, seed, decomposition -
      still fails loudly.  Resuming an already-``'ready'`` experiment
      is a no-op.

    ``on_batch(batch_index, inserted_so_far)`` is a fault-injection
    seam called after each batch commits (chaos kills submitters
    there).
    """
    if if_exists not in ("fail", "resume"):
        raise ExperimentError(
            f"if_exists must be 'fail' or 'resume', got {if_exists!r}"
        )
    if batch_size < 1:
        raise ExperimentError(f"batch_size must be >= 1, got {batch_size}")
    _validate_budgets(lease_seconds, max_attempts)
    entry = get_experiment(experiment)
    if not entry.shardable:
        raise ExperimentError(
            f"experiment {experiment!r} cannot be fleet-evaluated; "
            f"shardable experiments: {', '.join(shardable_experiment_names())}"
        )
    overrides = dict(overrides or {})
    spec = build_experiment_spec(
        experiment, preset=preset, seed=seed, scheme=scheme,
        overrides=overrides,
    )
    plan, units = plan_units(spec, unit_traces=unit_traces)
    if not units:
        raise ExperimentError(
            f"experiment {experiment!r} at preset {preset!r} produced no "
            "work units (no scheme point evaluates any trace)"
        )
    meta = {
        "experiment": experiment,
        "preset": preset,
        "seed": seed,
        "scheme": scheme,
        "overrides": overrides,
    }
    exp_name = name if name is not None else experiment
    fingerprint = plan_fingerprint(meta, plan, units)
    path = Path(broker_path)
    broker = (
        Broker.open(path) if path.exists() else Broker.create_empty(path)
    )
    with broker:
        row = broker.experiment(exp_name)
        resumed = False
        start = 0
        if row is None:
            experiment_id = broker.begin_experiment(
                exp_name, meta, plan, n_units=len(units), priority=priority,
                lease_seconds=lease_seconds, max_attempts=max_attempts,
                plan_hash=fingerprint,
            )
        else:
            if if_exists == "fail":
                raise FleetError(
                    f"experiment {exp_name!r} already exists in {path} "
                    f"(state: {row.state}); pass --if-exists resume to "
                    "continue an interrupted submission, or submit under "
                    "a different --name"
                )
            if row.plan_hash != fingerprint:
                raise FleetError(
                    f"refusing to resume experiment {exp_name!r} in {path}: "
                    "this submission's plan fingerprint "
                    f"({fingerprint}) differs from the journaled one "
                    f"({row.plan_hash}) - same name, different "
                    "grid/seed/decomposition; submit under a different "
                    "--name or to a fresh broker"
                )
            resumed = True
            experiment_id = row.id
            if row.state == "ready":
                return SubmitReport(
                    path=path, experiment=experiment, preset=preset,
                    n_calls=len(plan), n_units=len(units), name=exp_name,
                    priority=row.priority, resumed=True, n_enqueued=0,
                )
            existing = broker.enqueued_units(experiment_id)
            start = len(existing)
            if existing != list(units[:start]):
                raise FleetError(
                    f"refusing to resume experiment {exp_name!r} in {path}: "
                    f"the {start} already-enqueued unit(s) do not match "
                    "this submission's decomposition despite a matching "
                    "fingerprint - the broker file is damaged; submit to "
                    "a fresh broker"
                )
        enqueued = 0
        for batch_index, offset in enumerate(range(start, len(units), batch_size)):
            batch = units[offset:offset + batch_size]
            broker.enqueue_units(experiment_id, batch, start_index=offset)
            enqueued += len(batch)
            if on_batch is not None:
                on_batch(batch_index, offset + len(batch))
        broker.finish_enqueue(experiment_id)
    return SubmitReport(
        path=path, experiment=experiment, preset=preset,
        n_calls=len(plan), n_units=len(units), name=exp_name,
        priority=priority, resumed=resumed, n_enqueued=enqueued,
    )


def _spec_from_meta(meta: Dict[str, object]):
    return build_experiment_spec(
        str(meta["experiment"]),
        preset=str(meta.get("preset") or "ci"),
        seed=meta.get("seed"),
        scheme=meta.get("scheme"),
        overrides=meta.get("overrides") or {},
    )


class _ExperimentContext:
    """One experiment's validated spec + plan + point cache, per worker.

    Built lazily on the worker's first claim from that experiment (and
    eagerly for all experiments already ``'ready'`` at startup, so a
    stale checkout fails before any lease is burned).  The point cache
    amortizes trace generation across the units this worker runs for
    the experiment.
    """

    def __init__(self, row: ExperimentRow, submitted_plan) -> None:
        self.row = row
        self.spec = _spec_from_meta(row.meta)
        live_plan = plan_calls(self.spec)
        if live_plan != submitted_plan:
            raise ExperimentError(
                f"this checkout's grid plan for {row.meta['experiment']!r} "
                f"({len(live_plan)} call(s)) does not match the broker's "
                f"submitted plan ({len(submitted_plan)} call(s)); worker "
                "and submitter must run matching checkouts"
            )
        self.plan = submitted_plan
        self.point_cache: Dict = {}


def work(
    broker_path,
    worker_id: Optional[str] = None,
    runner: Optional[RunnerConfig] = None,
    max_units: Optional[int] = None,
    wait: bool = True,
    experiment: Optional[str] = None,
    on_claim: Optional[Callable[[LeasedUnit], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.time,
    heartbeat_seconds: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    fault_hook: Optional[Callable[[str], None]] = None,
    on_executed: Optional[Callable[[LeasedUnit], None]] = None,
    transform_wire: Optional[Callable[[LeasedUnit, str], str]] = None,
) -> WorkerReport:
    """Drain work units from a broker until none are claimable.

    The worker builds each experiment's spec from its broker journal
    row, validates its live grid plan against the submitted one (a
    stale checkout fails here, before any result is written), then
    loops: claim, execute through :func:`run_spec` under a
    :class:`SingleUnitRecorder`, store the wire payload.  Built
    ``(topology, routing, traces)`` triples are cached across units,
    per experiment.

    A multi-experiment broker is drained by experiment priority
    (descending) then FIFO; ``experiment`` restricts this worker to one
    experiment by name.  Experiments submitted *after* the worker
    started are picked up as their units are claimed.

    With ``wait=True`` (default) a worker that finds nothing pending
    while other leases are outstanding sleeps until the earliest lease
    expiry and retries - this is what lets a surviving worker pick up a
    crashed peer's unit.  ``max_units`` bounds how many units this call
    processes (testing / incremental draining).

    Robustness knobs: ``heartbeat_seconds`` paces the mid-unit lease
    renewal ticker (``None`` = a third of the broker's lease, ``<= 0``
    disables); ``retry`` is the backoff policy wrapped around every
    broker operation; ``clock``/``sleep`` are injectable for
    deterministic (chaos) tests.

    Fault-injection seams, in loop order: ``on_claim(leased)`` runs
    after each claim, before execution (simulated crash-at-claim /
    stall); ``on_executed(leased)`` runs after execution and after the
    heartbeat ticker stopped, before completion (simulated mid-unit
    crash / pre-completion stall); ``transform_wire(leased, text)``
    may damage the serialized payload after its checksum was taken
    (simulated wire corruption).  An exception from a seam propagates
    out of ``work`` with the lease still held - exactly what a real
    crash leaves behind.
    """
    worker = worker_id or default_worker_id()
    if runner is not None and runner.shard is not None:
        raise ExperimentError("fleet work cannot nest inside another shard")
    base = runner or RunnerConfig()
    policy = retry or DEFAULT_BROKER_RETRY
    retry_rng = policy.make_rng()
    completed = failed = stale = renewed = io_retries = 0

    def _count_retry(attempt: int, exc: BaseException) -> None:
        nonlocal io_retries
        io_retries += 1

    def _io(fn, *args, **kwargs):
        return policy.call(
            fn, *args, sleep=sleep, rng=retry_rng, on_retry=_count_retry,
            **kwargs,
        )

    with Broker.open(broker_path, fault_hook=fault_hook) as broker:
        if experiment is not None:
            broker.resolve_experiment(experiment)  # fail fast on a typo

        # Validate every already-ready experiment's plan up front, so a
        # stale checkout dies before burning any unit's attempt budget.
        contexts: Dict[int, _ExperimentContext] = {}
        for row in broker.experiments():
            if not row.ready:
                continue
            if experiment is not None and row.name != experiment:
                continue
            contexts[row.id] = _ExperimentContext(row, broker.plan(row.name))

        def _context(leased: LeasedUnit) -> _ExperimentContext:
            ctx = contexts.get(leased.experiment_id)
            if ctx is None:  # experiment submitted after startup
                row = broker.resolve_experiment(leased.experiment)
                ctx = _ExperimentContext(row, broker.plan(row.name))
                contexts[row.id] = ctx
            return ctx

        while max_units is None or completed + failed < max_units:
            leased = _io(broker.claim, worker, now=clock(), experiment=experiment)
            if leased is None:
                counts = _io(broker.counts, experiment=experiment)
                if counts.finished or not wait:
                    break
                expiry = _io(broker.next_lease_expiry)
                delay = 0.25 if expiry is None else max(
                    0.05, expiry - clock() + 0.05
                )
                sleep(delay)
                continue
            if on_claim is not None:
                on_claim(leased)
            ctx = _context(leased)
            heartbeat = (
                leased.lease_seconds * HEARTBEAT_FRACTION
                if heartbeat_seconds is None
                else heartbeat_seconds
            )
            ticker = None
            if heartbeat > 0:
                ticker = _HeartbeatTicker(
                    broker.path, leased.unit_id, worker, heartbeat,
                    clock=clock, retry=policy,
                )
                ticker.start()
            try:
                recorder = SingleUnitRecorder(leased.unit, ctx.plan)
                run_spec(
                    ctx.spec, replace(base, shard=recorder),
                    point_cache=ctx.point_cache,
                )
                payload = recorder.unit_payload()
            except Exception as exc:  # noqa: BLE001 - any unit failure retries
                outcome = _io(
                    broker.fail, leased.unit_id, worker,
                    _format_unit_error(exc), now=clock(),
                )
                if outcome is not None:
                    failed += 1
                continue
            finally:
                if ticker is not None:
                    renewed += ticker.stop()
            if on_executed is not None:
                on_executed(leased)
            wire, checksum = encode_unit_payload(payload)
            if transform_wire is not None:
                wire = transform_wire(leased, wire)
            if _io(
                broker.complete, leased.unit_id, worker,
                now=clock(), wire=wire, checksum=checksum,
            ):
                completed += 1
            else:
                stale += 1
    return WorkerReport(
        worker=worker, completed=completed, failed=failed, stale=stale,
        renewed=renewed, io_retries=io_retries,
    )


#: Completions the rolling unit-rate window looks back over.
PROGRESS_WINDOW = 20


def _progress(counts: FleetCounts, completion_times) -> Dict[str, object]:
    """Progress summary: done/total plus a rolling rate and ETA.

    The rate is measured over the last :data:`PROGRESS_WINDOW`
    completions (their own wall-clock span, so an idle fleet reports
    its historical rate rather than decaying toward zero), and the ETA
    covers the units that can still finish - pending and leased;
    permanently-failed units need ``fleet retry`` first.
    """
    out: Dict[str, object] = {
        "done": counts.done,
        "total": counts.total,
        "remaining": counts.pending + counts.leased,
        "rate_per_s": None,
        "eta_s": None,
    }
    # Guard the rate/ETA derivation: with fewer than two completions,
    # or completions carrying identical timestamps (coarse clocks,
    # injected test clocks), there is no measurable span - report null
    # rather than a division blow-up or an infinite ETA.
    window = completion_times[-PROGRESS_WINDOW:]
    if len(window) >= 2 and window[-1] > window[0]:
        rate = (len(window) - 1) / (window[-1] - window[0])
        if rate > 0:
            out["rate_per_s"] = rate
            out["eta_s"] = out["remaining"] / rate
    return out


def status(
    broker_path,
    detail: bool = False,
    experiment: Optional[str] = None,
) -> Dict[str, object]:
    """A broker's live state: meta, counts, progress/ETA, unit rows.

    Top-level ``counts``/``progress``/``errors`` aggregate over the
    whole broker (or the targeted ``experiment``); ``experiments``
    breaks the same facts out per experiment in priority order.  On a
    single-experiment broker the experiment's identity meta is also
    spread at top level (the pre-v3 shape).  Everything in the returned
    dict is JSON-serializable (``fleet status --json``).
    """
    with Broker.open(broker_path) as broker:
        rows = (
            [broker.resolve_experiment(experiment)]
            if experiment is not None
            else broker.experiments()
        )
        per = []
        for row in rows:
            counts = broker.counts(row.name)
            per.append({
                "name": row.name,
                "priority": row.priority,
                "state": row.state,
                **row.meta,
                "counts": counts.as_dict(),
                "progress": _progress(
                    counts, broker.completion_times(row.name)
                ),
                "errors": broker.errors(row.name),
            })
        agg = broker.counts(experiment)
        out: Dict[str, object] = {
            "path": str(broker.path),
            "counts": agg.as_dict(),
            "progress": _progress(agg, broker.completion_times(experiment)),
            "errors": broker.errors(experiment),
            "experiments": per,
        }
        if len(rows) == 1:
            out = {**rows[0].meta, **out}
        if detail:
            out["units"] = broker.unit_rows(experiment)
        return out


def retry(broker_path, experiment: Optional[str] = None) -> int:
    """Re-queue a broker's permanently-failed units; returns the count."""
    with Broker.open(broker_path) as broker:
        return broker.retry_failed(experiment)


def collect(
    broker_path,
    runner: Optional[RunnerConfig] = None,
    experiment: Optional[str] = None,
) -> ExperimentResult:
    """Fold a finished fleet's results into the full experiment result.

    Reassembles completed units into per-call records (exact trace
    coverage enforced), then re-runs the experiment driver with a
    :class:`UnitReplayer` installed - the identical fold ``merge``
    uses, streaming recorded results through the runner's own
    accumulators - so the collected metrics are bit-identical to a
    serial run.  Before any folding, every stored payload is
    checksum-audited (:meth:`Broker.verify_results`): corrupted
    results are discarded and their units re-queued rather than folded
    as garbage.  Refuses unfinished fleets and fleets with permanently
    failed units, with counts in the error.
    """
    if runner is not None and runner.shard is not None:
        raise ExperimentError("fleet collect cannot nest inside another shard")
    with Broker.open(broker_path) as broker:
        row = broker.resolve_experiment(experiment)
        if not row.ready:
            raise FleetError(
                f"cannot collect experiment {row.name!r}: its submission "
                "journal is still open (an interrupted 'fleet submit'); "
                "re-run the submission with --if-exists resume first"
            )
        corrupted = broker.verify_results()
        if corrupted:
            shown = ", ".join(str(u) for u in corrupted[:5])
            raise FleetError(
                f"{len(corrupted)} result payload(s) failed their checksum "
                f"(unit id(s) {shown}); the corrupted results were discarded "
                "and the units re-queued - run more workers, then collect "
                "again"
            )
        counts = broker.counts(row.name)
        if counts.failed:
            first_id, first_error = broker.errors(row.name)[0]
            raise ExperimentError(
                f"cannot collect: {counts.failed} of {counts.total} unit(s) "
                f"failed permanently (first: unit {first_id}: {first_error}); "
                "inspect 'fleet status', fix the cause, and resubmit"
            )
        if not counts.finished:
            raise ExperimentError(
                f"cannot collect an unfinished fleet: {counts.pending} "
                f"pending and {counts.leased} leased of {counts.total} "
                "unit(s); run more workers first"
            )
        plan = broker.plan(row.name)
        calls = assemble_calls(plan, broker.results(row.name))
        spec = _spec_from_meta(row.meta)
    replayer = UnitReplayer(calls)
    result = run_spec(
        spec, replace(runner or RunnerConfig(), shard=replayer)
    )
    replayer.assert_exhausted()
    return result


__all__ = [
    "FleetCounts",
    "HEARTBEAT_FRACTION",
    "SubmitReport",
    "WorkerReport",
    "collect",
    "default_worker_id",
    "retry",
    "status",
    "submit",
    "work",
]
