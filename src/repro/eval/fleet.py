"""Fleet evaluation: broker-driven workers and the result collector.

The dynamic scheduling policy over :mod:`repro.eval.units` (the static
one is :mod:`repro.eval.shard`).  One submitter decomposes an
experiment into work units and loads them into a SQLite
:class:`~repro.eval.broker.Broker`; any number of workers - started at
any time, on any machine sharing the broker file - pull units, execute
them through the ordinary :func:`~repro.eval.spec.run_spec` machinery,
and write wire-codec results back; the collector reassembles the full
:class:`~repro.eval.spec.ExperimentResult`, bit-identical to a serial
``repro-flock run`` for the same spec.

Flow::

    submit(path, "fig2", preset="tiny")        # units -> broker
    work(path)  x N processes                  # lease, run, complete
    result = collect(path)                     # fold + replay

Fault tolerance comes from the broker's lease lifecycle: a worker that
dies mid-unit simply stops renewing its claim, the lease expires, and
the unit is re-leased to whoever claims next; determinism (all
randomness flows from per-trace seeds) makes the re-run's results
identical to what the dead worker would have produced.  Workers with
nothing claimable but leases still outstanding sleep until the next
lease expiry, so a fleet of N workers survives any N-1 of them
crashing.  A unit that keeps *failing* (the experiment itself raises)
moves to ``failed`` after the broker's ``max_attempts`` and
:func:`collect` refuses to produce a result until someone intervenes.

Cost model matches sharding: every worker re-runs the spec builder and
pays trace generation per *point* it touches (amortized across that
worker's units via ``run_spec``'s ``point_cache``); only problem
building and inference are divided.  Prefer ``unit_traces`` well above
1 unless retries are the dominant concern.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Optional

from ..errors import ExperimentError
from .broker import Broker, FleetCounts, LeasedUnit
from .runner import RunnerConfig
from .spec import (
    ExperimentResult,
    build_experiment_spec,
    get_experiment,
    run_spec,
    shardable_experiment_names,
)
from .units import (
    SingleUnitRecorder,
    UnitReplayer,
    assemble_calls,
    plan_calls,
    plan_units,
)


@dataclass(frozen=True)
class SubmitReport:
    """What a submission loaded into the broker."""

    path: Path
    experiment: str
    preset: str
    n_calls: int
    n_units: int


@dataclass(frozen=True)
class WorkerReport:
    """One worker run's tally."""

    worker: str
    completed: int
    failed: int
    stale: int  #: completions discarded because the lease had expired


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def submit(
    broker_path,
    experiment: str,
    preset: str = "ci",
    seed: Optional[int] = None,
    scheme: Optional[str] = None,
    overrides: Optional[Dict[str, object]] = None,
    unit_traces: int = 1,
    lease_seconds: float = 60.0,
    max_attempts: int = 3,
) -> SubmitReport:
    """Decompose an experiment into work units and create its broker.

    The spec is built once here to compute the :class:`CallPlan`
    sequence (the schema workers validate against); nothing is
    evaluated.  Fails on experiments registered ``shardable=False`` -
    the fleet shares sharding's purity requirement on the grid-call
    sequence.
    """
    entry = get_experiment(experiment)
    if not entry.shardable:
        raise ExperimentError(
            f"experiment {experiment!r} cannot be fleet-evaluated; "
            f"shardable experiments: {', '.join(shardable_experiment_names())}"
        )
    overrides = dict(overrides or {})
    spec = build_experiment_spec(
        experiment, preset=preset, seed=seed, scheme=scheme,
        overrides=overrides,
    )
    plan, units = plan_units(spec, unit_traces=unit_traces)
    if not units:
        raise ExperimentError(
            f"experiment {experiment!r} at preset {preset!r} produced no "
            "work units (no scheme point evaluates any trace)"
        )
    meta = {
        "experiment": experiment,
        "preset": preset,
        "seed": seed,
        "scheme": scheme,
        "overrides": overrides,
    }
    Broker.create(
        broker_path, meta, plan, units,
        lease_seconds=lease_seconds, max_attempts=max_attempts,
    ).close()
    return SubmitReport(
        path=Path(broker_path), experiment=experiment, preset=preset,
        n_calls=len(plan), n_units=len(units),
    )


def _spec_from_meta(meta: Dict[str, object]):
    return build_experiment_spec(
        str(meta["experiment"]),
        preset=str(meta.get("preset") or "ci"),
        seed=meta.get("seed"),
        scheme=meta.get("scheme"),
        overrides=meta.get("overrides") or {},
    )


def work(
    broker_path,
    worker_id: Optional[str] = None,
    runner: Optional[RunnerConfig] = None,
    max_units: Optional[int] = None,
    wait: bool = True,
    on_claim: Optional[Callable[[LeasedUnit], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> WorkerReport:
    """Drain work units from a broker until none are claimable.

    The worker builds the experiment spec from broker metadata,
    validates its live grid plan against the submitted one (a stale
    checkout fails here, before any result is written), then loops:
    claim, execute through :func:`run_spec` under a
    :class:`SingleUnitRecorder`, store the wire payload.  Built
    ``(topology, routing, traces)`` triples are cached across units.

    With ``wait=True`` (default) a worker that finds nothing pending
    while other leases are outstanding sleeps until the earliest lease
    expiry and retries - this is what lets a surviving worker pick up a
    crashed peer's unit.  ``max_units`` bounds how many units this call
    processes (testing / incremental draining).  ``on_claim`` runs
    after each successful claim, before execution (tests use it to
    simulate stalls and crashes).
    """
    worker = worker_id or default_worker_id()
    if runner is not None and runner.shard is not None:
        raise ExperimentError("fleet work cannot nest inside another shard")
    base = runner or RunnerConfig()
    completed = failed = stale = 0
    with Broker.open(broker_path) as broker:
        meta = broker.experiment_meta()
        submitted_plan = broker.plan()
        spec = _spec_from_meta(meta)
        live_plan = plan_calls(spec)
        if live_plan != submitted_plan:
            raise ExperimentError(
                f"this checkout's grid plan for {meta['experiment']!r} "
                f"({len(live_plan)} call(s)) does not match the broker's "
                f"submitted plan ({len(submitted_plan)} call(s)); worker "
                "and submitter must run matching checkouts"
            )
        point_cache: Dict = {}
        while max_units is None or completed + failed < max_units:
            leased = broker.claim(worker)
            if leased is None:
                counts = broker.counts()
                if counts.finished or not wait:
                    break
                expiry = broker.next_lease_expiry()
                delay = 0.25 if expiry is None else max(
                    0.05, expiry - time.time() + 0.05
                )
                sleep(delay)
                continue
            if on_claim is not None:
                on_claim(leased)
            try:
                recorder = SingleUnitRecorder(leased.unit, submitted_plan)
                run_spec(
                    spec, replace(base, shard=recorder),
                    point_cache=point_cache,
                )
                payload = recorder.unit_payload()
            except Exception as exc:  # noqa: BLE001 - any unit failure retries
                outcome = broker.fail(leased.unit_id, worker, str(exc))
                if outcome is not None:
                    failed += 1
                continue
            if broker.complete(leased.unit_id, worker, payload):
                completed += 1
            else:
                stale += 1
    return WorkerReport(
        worker=worker, completed=completed, failed=failed, stale=stale
    )


#: Completions the rolling unit-rate window looks back over.
PROGRESS_WINDOW = 20


def _progress(counts: FleetCounts, completion_times) -> Dict[str, object]:
    """Progress summary: done/total plus a rolling rate and ETA.

    The rate is measured over the last :data:`PROGRESS_WINDOW`
    completions (their own wall-clock span, so an idle fleet reports
    its historical rate rather than decaying toward zero), and the ETA
    covers the units that can still finish - pending and leased;
    permanently-failed units need ``fleet retry`` first.
    """
    out: Dict[str, object] = {
        "done": counts.done,
        "total": counts.total,
        "remaining": counts.pending + counts.leased,
        "rate_per_s": None,
        "eta_s": None,
    }
    window = completion_times[-PROGRESS_WINDOW:]
    if len(window) >= 2 and window[-1] > window[0]:
        rate = (len(window) - 1) / (window[-1] - window[0])
        out["rate_per_s"] = rate
        out["eta_s"] = out["remaining"] / rate
    return out


def status(broker_path, detail: bool = False) -> Dict[str, object]:
    """A broker's live state: meta, counts, progress/ETA, unit rows."""
    with Broker.open(broker_path) as broker:
        counts = broker.counts()
        out: Dict[str, object] = {
            **broker.experiment_meta(),
            "counts": counts.as_dict(),
            "progress": _progress(counts, broker.completion_times()),
            "errors": broker.errors(),
        }
        if detail:
            out["units"] = broker.unit_rows()
        return out


def retry(broker_path) -> int:
    """Re-queue a broker's permanently-failed units; returns the count."""
    with Broker.open(broker_path) as broker:
        return broker.retry_failed()


def collect(
    broker_path, runner: Optional[RunnerConfig] = None
) -> ExperimentResult:
    """Fold a finished fleet's results into the full experiment result.

    Reassembles completed units into per-call records (exact trace
    coverage enforced), then re-runs the experiment driver with a
    :class:`UnitReplayer` installed - the identical fold ``merge``
    uses, streaming recorded results through the runner's own
    accumulators - so the collected metrics are bit-identical to a
    serial run.  Refuses unfinished fleets and fleets with permanently
    failed units, with counts in the error.
    """
    if runner is not None and runner.shard is not None:
        raise ExperimentError("fleet collect cannot nest inside another shard")
    with Broker.open(broker_path) as broker:
        counts = broker.counts()
        if counts.failed:
            first_id, first_error = broker.errors()[0]
            raise ExperimentError(
                f"cannot collect: {counts.failed} of {counts.total} unit(s) "
                f"failed permanently (first: unit {first_id}: {first_error}); "
                "inspect 'fleet status', fix the cause, and resubmit"
            )
        if not counts.finished:
            raise ExperimentError(
                f"cannot collect an unfinished fleet: {counts.pending} "
                f"pending and {counts.leased} leased of {counts.total} "
                "unit(s); run more workers first"
            )
        plan = broker.plan()
        calls = assemble_calls(plan, broker.results())
        meta = broker.experiment_meta()
        spec = _spec_from_meta(meta)
    replayer = UnitReplayer(calls)
    result = run_spec(
        spec, replace(runner or RunnerConfig(), shard=replayer)
    )
    replayer.assert_exhausted()
    return result


__all__ = [
    "FleetCounts",
    "SubmitReport",
    "WorkerReport",
    "collect",
    "default_worker_id",
    "status",
    "submit",
    "work",
]
