"""Wire codec for evaluation results (the shard layer's vocabulary).

A shard worker runs part of a trace batch in a separate process - or on
a separate machine - and must return *only* serialized results: compact,
JSON-compatible structures that rebuild into the exact objects a local
run would have produced.  This module is that codec.  It covers

* :class:`~repro.eval.metrics.TraceMetrics`  - ``[precision, recall]``
* :class:`~repro.types.Prediction`           - ``{"c","s","ll","hs"}``
* :class:`~repro.eval.harness.TraceResult`   - ``{"p","m","b","i"}``
* :class:`~repro.eval.metrics.AggregateMetrics` and
  :class:`~repro.eval.harness.EvalSummary`.

Design rules:

* **Versioned payloads.** Every top-level payload (``TraceResult``,
  ``EvalSummary``, shard documents, broker unit results) carries the
  wire schema version in a ``"v"`` field; decoders reject a mismatched
  version with a clear :class:`ExperimentError` so a fleet worker on a
  stale checkout fails loudly instead of merging garbage.  A missing
  field is tolerated (hand-built payloads from the same process), a
  *wrong* one never is.  Bump :data:`SCHEMA_VERSION` whenever any wire
  layout in this module changes.
* **Bit-identical floats.** Values pass through JSON's ``repr``-based
  float formatting, which round-trips IEEE-754 doubles exactly, so a
  merged shard run reproduces a serial run's metrics bit for bit.
  NumPy scalars are coerced to native Python numbers on encode (their
  64-bit values are preserved exactly).
* **``problem`` is dropped.** :class:`TraceResult.problem` never goes
  on the wire - the process executor already refuses to ship built
  problems over IPC, and a shard consumer only needs predictions,
  metrics, and timings.  Decoded results read back ``problem=None``.
* **Compact keys.** Single-letter keys keep shard files small; each
  codec function documents its layout.

Every decoder validates the payload shape and raises
:class:`~repro.errors.ExperimentError` on malformed input.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CheckpointError, ExperimentError
from ..types import Prediction
from .harness import EvalSummary, TraceResult
from .metrics import AggregateMetrics, TraceMetrics

#: Wire schema version.  Emitted in every top-level payload this module
#: (and the shard/broker layers on top of it) produces; checked on
#: decode.  Bump on any change to the wire layouts below.
SCHEMA_VERSION = 2


def payload_checksum(text: str) -> str:
    """Checksum of a serialized payload (hex, stable across platforms).

    SHA-256 truncated to 16 hex chars: collision-safe against the
    random corruption it guards (bit flips, truncation, torn writes),
    cheap to store beside every broker result row.
    """
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def encode_unit_payload(payload: Dict) -> Tuple[str, str]:
    """Serialize a unit-result payload for transport: ``(text, checksum)``.

    The checksum is computed over the exact serialized text, *before*
    the text crosses any wire or lands in broker storage, so any
    damage in between is detectable by re-hashing the stored text
    (:meth:`repro.eval.broker.Broker.verify_results`).
    """
    text = json.dumps(payload)
    return text, payload_checksum(text)


def check_schema_version(payload, what: str) -> None:
    """Reject a payload produced by a different wire schema version.

    A payload without a ``"v"`` field passes (legacy or hand-built
    input); one carrying the wrong version is from a checkout speaking
    a different codec and must not be decoded field by field.
    """
    if not isinstance(payload, dict):
        return
    version = payload.get("v")
    if version is not None and version != SCHEMA_VERSION:
        raise ExperimentError(
            f"{what} payload speaks wire schema v{version!r} but this "
            f"checkout speaks v{SCHEMA_VERSION}; producer and consumer "
            "must run matching checkouts"
        )


def _require(payload, keys, what: str) -> None:
    if not isinstance(payload, dict):
        raise ExperimentError(f"malformed {what} payload: {payload!r}")
    missing = [key for key in keys if key not in payload]
    if missing:
        raise ExperimentError(f"{what} payload is missing keys {missing}")


def _number(value, what: str) -> float:
    """Validate a JSON number (corrupted files must fail here, as an
    ExperimentError, not deep inside metric aggregation)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExperimentError(f"{what} must be a number, got {value!r}")
    return value


def _integer(value, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ExperimentError(f"{what} must be an integer, got {value!r}")
    return value


def trace_metrics_to_wire(metrics: TraceMetrics) -> List[float]:
    """``TraceMetrics -> [precision, recall]``."""
    return [float(metrics.precision), float(metrics.recall)]


def trace_metrics_from_wire(payload) -> TraceMetrics:
    if not (isinstance(payload, (list, tuple)) and len(payload) == 2):
        raise ExperimentError(f"malformed TraceMetrics payload: {payload!r}")
    return TraceMetrics(
        precision=_number(payload[0], "precision"),
        recall=_number(payload[1], "recall"),
    )


def prediction_to_wire(prediction: Prediction) -> Dict:
    """``Prediction -> {"c": components, "s": scores, "ll": ..., "hs": ...}``.

    ``"c"`` is the sorted component-id list; ``"s"`` is ``None`` or a
    ``[[component, score], ...]`` pair list (JSON objects only allow
    string keys, and component ids are ints).
    """
    scores = prediction.scores
    return {
        "c": sorted(int(c) for c in prediction.components),
        "s": None if scores is None else [
            [int(k), float(v)] for k, v in sorted(scores.items())
        ],
        "ll": float(prediction.log_likelihood),
        "hs": int(prediction.hypotheses_scanned),
    }


def prediction_from_wire(payload) -> Prediction:
    _require(payload, ("c", "s", "ll", "hs"), "Prediction")
    scores = payload["s"]
    components = payload["c"]
    if not isinstance(components, list):
        raise ExperimentError(f"Prediction components must be a list, got {components!r}")
    if scores is not None and not isinstance(scores, list):
        raise ExperimentError(f"Prediction scores must be null or a pair list, got {scores!r}")
    return Prediction(
        components=frozenset(_integer(c, "component id") for c in components),
        scores=None if scores is None else _score_dict(scores),
        log_likelihood=_number(payload["ll"], "log_likelihood"),
        hypotheses_scanned=_integer(payload["hs"], "hypotheses_scanned"),
    )


def _score_dict(pairs) -> Dict[int, float]:
    out: Dict[int, float] = {}
    for pair in pairs:
        if not (isinstance(pair, (list, tuple)) and len(pair) == 2):
            raise ExperimentError(
                f"Prediction score entries must be [component, score] "
                f"pairs, got {pair!r}"
            )
        out[_integer(pair[0], "score component")] = _number(
            pair[1], "score value"
        )
    return out


def trace_result_to_wire(result: TraceResult) -> Dict:
    """``TraceResult -> {"p": prediction, "m": metrics, "b": ..., "i": ...}``.

    ``result.problem`` is intentionally dropped (see module docstring).
    """
    return {
        "v": SCHEMA_VERSION,
        "p": prediction_to_wire(result.prediction),
        "m": trace_metrics_to_wire(result.metrics),
        "b": float(result.build_seconds),
        "i": float(result.inference_seconds),
    }


def trace_result_from_wire(payload) -> TraceResult:
    check_schema_version(payload, "TraceResult")
    _require(payload, ("p", "m", "b", "i"), "TraceResult")
    return TraceResult(
        prediction=prediction_from_wire(payload["p"]),
        metrics=trace_metrics_from_wire(payload["m"]),
        build_seconds=_number(payload["b"], "build_seconds"),
        inference_seconds=_number(payload["i"], "inference_seconds"),
        problem=None,
    )


def aggregate_metrics_to_wire(accuracy: AggregateMetrics) -> List:
    """``AggregateMetrics -> [precision, recall, mean_fscore, n_traces]``."""
    return [
        float(accuracy.precision),
        float(accuracy.recall),
        float(accuracy.mean_fscore),
        int(accuracy.n_traces),
    ]


def aggregate_metrics_from_wire(payload) -> AggregateMetrics:
    if not (isinstance(payload, (list, tuple)) and len(payload) == 4):
        raise ExperimentError(f"malformed AggregateMetrics payload: {payload!r}")
    return AggregateMetrics(
        precision=_number(payload[0], "precision"),
        recall=_number(payload[1], "recall"),
        mean_fscore=_number(payload[2], "mean_fscore"),
        n_traces=_integer(payload[3], "n_traces"),
    )


def eval_summary_to_wire(summary: EvalSummary) -> Dict:
    """``EvalSummary -> {"label", "t": per-trace, "a": accuracy, ...}``."""
    return {
        "v": SCHEMA_VERSION,
        "label": summary.setup_label,
        "t": [trace_result_to_wire(r) for r in summary.per_trace],
        "a": aggregate_metrics_to_wire(summary.accuracy),
        "mi": float(summary.mean_inference_seconds),
        "mb": float(summary.mean_build_seconds),
    }


def eval_summary_from_wire(payload) -> EvalSummary:
    check_schema_version(payload, "EvalSummary")
    _require(payload, ("label", "t", "a", "mi", "mb"), "EvalSummary")
    if not isinstance(payload["label"], str):
        raise ExperimentError(
            f"EvalSummary label must be a string, got {payload['label']!r}"
        )
    if not isinstance(payload["t"], list):
        raise ExperimentError(
            f"EvalSummary per-trace field must be a list, got {payload['t']!r}"
        )
    return EvalSummary(
        setup_label=payload["label"],
        per_trace=[trace_result_from_wire(r) for r in payload["t"]],
        accuracy=aggregate_metrics_from_wire(payload["a"]),
        mean_inference_seconds=_number(payload["mi"], "mean_inference_seconds"),
        mean_build_seconds=_number(payload["mb"], "mean_build_seconds"),
    )


# ----------------------------------------------------------------------
# Stream checkpoints
# ----------------------------------------------------------------------

#: Checkpoint document format tag + version.  A checkpoint additionally
#: carries :data:`SCHEMA_VERSION` (its Prediction payloads use the wire
#: codec above); both are checked on decode.
STREAM_CHECKPOINT_FORMAT = "flock-stream-checkpoint"
CHECKPOINT_VERSION = 1


def ndarray_to_wire(array: np.ndarray) -> Dict:
    """``ndarray -> {"d": dtype, "s": shape, "b": base64 bytes}``.

    Raw little-endian bytes in base64: bit-exact for float64 (the warm
    Δ vectors must survive a checkpoint round-trip bitwise, JSON float
    formatting notwithstanding) and compact for the int64 observation
    columns.
    """
    array = np.ascontiguousarray(array)
    if array.dtype.byteorder == ">":  # pragma: no cover - BE platforms
        array = array.astype(array.dtype.newbyteorder("<"))
    return {
        "d": array.dtype.str,
        "s": list(array.shape),
        "b": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def ndarray_from_wire(payload) -> np.ndarray:
    _require(payload, ("d", "s", "b"), "ndarray")
    try:
        dtype = np.dtype(payload["d"])
        raw = base64.b64decode(payload["b"], validate=True)
        array = np.frombuffer(raw, dtype=dtype).reshape(payload["s"])
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed ndarray payload: {exc}") from None
    return array.copy()  # frombuffer is read-only; state arrays mutate


def cycle_report_to_wire(report) -> Dict:
    """``CycleReport`` minus its wall-clock timings.

    ``build_seconds``/``localize_seconds`` are intentionally dropped:
    they are the only machine-dependent fields, and the crash/resume
    soaks compare wire-form reports for bit-identity across runs.
    """
    return {
        "v": SCHEMA_VERSION,
        "cy": int(report.cycle),
        "ts": float(report.t_start),
        "te": float(report.t_end),
        "rf": int(report.raw_flows),
        "gf": int(report.grouped_flows),
        "p": prediction_to_wire(report.prediction),
        "tr": sorted(int(c) for c in report.truth),
        "de": bool(report.detected),
        "ch": int(report.churn),
        "dg": bool(report.degraded),
        "dr": report.degrade_reason,
        "sh": int(report.shed_chunks),
        "co": int(report.coalesced_chunks),
        "bu": None if report.budget_seconds is None else float(report.budget_seconds),
    }


def cycle_report_from_wire(payload):
    check_schema_version(payload, "CycleReport")
    _require(
        payload,
        ("cy", "ts", "te", "rf", "gf", "p", "tr", "de", "ch", "dg", "dr",
         "sh", "co", "bu"),
        "CycleReport",
    )
    from .stream import CycleReport  # local: stream imports this module

    return CycleReport(
        cycle=_integer(payload["cy"], "cycle"),
        t_start=_number(payload["ts"], "t_start"),
        t_end=_number(payload["te"], "t_end"),
        raw_flows=_integer(payload["rf"], "raw_flows"),
        grouped_flows=_integer(payload["gf"], "grouped_flows"),
        prediction=prediction_from_wire(payload["p"]),
        truth=frozenset(_integer(c, "truth component") for c in payload["tr"]),
        detected=bool(payload["de"]),
        churn=_integer(payload["ch"], "churn"),
        build_seconds=0.0,
        localize_seconds=0.0,
        degraded=bool(payload["dg"]),
        degrade_reason=payload["dr"],
        shed_chunks=_integer(payload["sh"], "shed_chunks"),
        coalesced_chunks=_integer(payload["co"], "coalesced_chunks"),
        budget_seconds=(
            None if payload["bu"] is None else _number(payload["bu"], "budget")
        ),
    )


def _canonical_json(payload: Dict) -> str:
    """The exact text the checkpoint checksum covers.

    Canonical form (sorted keys, no whitespace) so that encode and
    decode recompute the identical string: JSON's ``repr``-based float
    formatting round-trips doubles exactly, and key order is pinned.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_stream_checkpoint(payload: Dict) -> str:
    """Wrap a checkpoint payload as a self-validating JSON document."""
    canonical = _canonical_json(payload)
    return json.dumps({
        "format": STREAM_CHECKPOINT_FORMAT,
        "ckpt_v": CHECKPOINT_VERSION,
        "v": SCHEMA_VERSION,
        "checksum": payload_checksum(canonical),
        "payload": payload,
    })


def decode_stream_checkpoint(text: str) -> Dict:
    """Validate and unwrap a checkpoint document.

    Rejects non-checkpoint files, version skew (both checkpoint-layout
    and wire-codec), and payloads whose recomputed canonical checksum
    mismatches - a torn write or bit rot must fail here, not as a
    corrupted monitor three cycles after resume.
    """
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint file is not valid JSON: {exc}"
        ) from None
    if not isinstance(doc, dict) or doc.get("format") != STREAM_CHECKPOINT_FORMAT:
        raise CheckpointError(
            "not a stream checkpoint file (missing format tag "
            f"{STREAM_CHECKPOINT_FORMAT!r})"
        )
    if doc.get("ckpt_v") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint layout v{doc.get('ckpt_v')!r} does not match this "
            f"checkout's v{CHECKPOINT_VERSION}; re-checkpoint from a "
            "matching checkout"
        )
    if doc.get("v") != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint speaks wire schema v{doc.get('v')!r} but this "
            f"checkout speaks v{SCHEMA_VERSION}"
        )
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointError("checkpoint payload must be an object")
    if payload_checksum(_canonical_json(payload)) != doc.get("checksum"):
        raise CheckpointError(
            "checkpoint payload fails its checksum - the file was "
            "damaged after it was written; fall back to an older "
            "checkpoint or restart the stream cold"
        )
    return payload
