"""Scheme-running harness: telemetry -> problem -> localize -> metrics.

A :class:`SchemeSetup` pairs a localizer with the telemetry input it
consumes (the paper annotates every scheme this way: "Flock (A1+A2+P)",
"NetBouncer (INT)", "007 (A2)", ...).  The harness builds the inference
problem for each trace, runs localization, times it, and scores the
prediction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.problem import InferenceProblem
from ..simulation.failures import PER_FLOW
from ..telemetry.inputs import TelemetryConfig, build_observations
from ..types import Prediction
from .metrics import AggregateMetrics, TraceMetrics, aggregate, evaluate_prediction
from .scenarios import Trace


@dataclass(frozen=True)
class SchemeSetup:
    """A named localizer plus the telemetry it ingests."""

    name: str
    localizer: object
    telemetry: TelemetryConfig

    def labeled(self) -> str:
        return f"{self.name} ({self.telemetry.spec})"


@dataclass
class TraceResult:
    """Outcome of one scheme on one trace."""

    prediction: Prediction
    metrics: TraceMetrics
    build_seconds: float
    inference_seconds: float
    problem: InferenceProblem


@dataclass
class EvalSummary:
    """Aggregated outcome of one scheme over many traces."""

    setup_label: str
    per_trace: List[TraceResult]
    accuracy: AggregateMetrics
    mean_inference_seconds: float

    @property
    def fscore(self) -> float:
        return self.accuracy.fscore


def build_problem(trace: Trace, telemetry: TelemetryConfig) -> InferenceProblem:
    """Build a scheme's inference problem for a trace.

    The telemetry analysis mode follows the trace's scenario: a
    per-flow-analysis trace (link flap) overrides the config's mode,
    exactly as the paper switches analyses per failure type.
    """
    config = telemetry
    if trace.analysis == PER_FLOW and telemetry.analysis != PER_FLOW:
        config = replace(telemetry, analysis=PER_FLOW)
    rng = np.random.default_rng(trace.seed + 0x5EED)
    observations = build_observations(
        trace.records, trace.topology, trace.routing, config, rng
    )
    return InferenceProblem.from_observations(
        observations,
        n_components=trace.topology.n_components,
        n_links=trace.topology.n_links,
    )


def run_on_trace(setup: SchemeSetup, trace: Trace) -> TraceResult:
    """Run one scheme on one trace and score it."""
    t0 = time.perf_counter()
    problem = build_problem(trace, setup.telemetry)
    t1 = time.perf_counter()
    prediction = setup.localizer.localize(problem)
    t2 = time.perf_counter()
    metrics = evaluate_prediction(prediction, trace.ground_truth, trace.topology)
    return TraceResult(
        prediction=prediction,
        metrics=metrics,
        build_seconds=t1 - t0,
        inference_seconds=t2 - t1,
        problem=problem,
    )


def evaluate(setup: SchemeSetup, traces: Sequence[Trace]) -> EvalSummary:
    """Run one scheme over a batch of traces and aggregate."""
    results = [run_on_trace(setup, trace) for trace in traces]
    acc = aggregate([r.metrics for r in results])
    mean_t = (
        sum(r.inference_seconds for r in results) / len(results)
        if results
        else 0.0
    )
    return EvalSummary(
        setup_label=setup.labeled(),
        per_trace=results,
        accuracy=acc,
        mean_inference_seconds=mean_t,
    )


def evaluate_many(
    setups: Sequence[SchemeSetup], traces: Sequence[Trace]
) -> Dict[str, EvalSummary]:
    """Evaluate several schemes on the same traces (the paper's tables)."""
    return {setup.labeled(): evaluate(setup, traces) for setup in setups}
