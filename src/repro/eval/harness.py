"""Scheme-running harness: telemetry -> problem -> localize -> metrics.

A :class:`SchemeSetup` pairs a localizer with the telemetry input it
consumes (the paper annotates every scheme this way: "Flock (A1+A2+P)",
"NetBouncer (INT)", "007 (A2)", ...).  Setups are usually constructed
by name through the scheme registry (:func:`repro.eval.schemes.make_setup`),
and whole evaluation grids by declarative experiment specs
(:mod:`repro.eval.spec`); this module is the execution substrate both
sit on.  The harness builds the inference problem for each trace, runs
localization, times it, and scores the prediction.

Execution architecture
----------------------

:func:`evaluate` and :func:`evaluate_many` are thin front-ends over the
runner subsystem in :mod:`repro.eval.runner`:

* The grid of (scheme, trace) work is partitioned into per-*trace*
  units so schemes sharing a telemetry spec build their observations
  once per trace through a :class:`~repro.eval.runner.ProblemCache`.
* A :class:`~repro.eval.runner.RunnerConfig` selects the executor
  (``serial`` / ``thread`` / ``process``) and worker count;
  ``evaluate_many(..., jobs=N)`` is shorthand for an N-worker process
  pool.  Results are streamed into per-scheme accumulators as units
  complete, then frozen into :class:`EvalSummary` objects.
* All randomness derives from each trace's seed, so every executor
  produces bit-identical metrics for fixed seeds.
* Batches can additionally be sharded across OS processes or machines
  (:mod:`repro.eval.shard`), with only wire-format results
  (:mod:`repro.eval.serialize`) crossing back; merged summaries stay
  bit-identical to serial ones.

The timing split matters for the runtime figures (Fig. 4c/4d):
``build_seconds`` is problem construction (telemetry -> observations ->
:class:`InferenceProblem`) and ``inference_seconds`` is localization
proper; :class:`EvalSummary` reports the mean of each separately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.problem import InferenceProblem
from ..simulation.failures import PER_FLOW
from ..telemetry.inputs import (
    PathMemo,
    TelemetryConfig,
    build_observation_batch,
    build_observations,
)
from ..types import Prediction
from .metrics import AggregateMetrics, TraceMetrics, aggregate, evaluate_prediction
from .scenarios import Trace


@dataclass(frozen=True)
class SchemeSetup:
    """A named localizer plus the telemetry it ingests."""

    name: str
    localizer: object
    telemetry: TelemetryConfig

    def labeled(self) -> str:
        return f"{self.name} ({self.telemetry.spec})"


@dataclass
class TraceResult:
    """Outcome of one scheme on one trace.

    ``problem`` is ``None`` for results produced by the process
    executor or decoded from the shard wire format
    (:mod:`repro.eval.serialize`) - shipping the built problem over
    IPC or between machines is not worth it; rebuild with
    :func:`build_problem` if you need it.
    """

    prediction: Prediction
    metrics: TraceMetrics
    build_seconds: float
    inference_seconds: float
    problem: Optional[InferenceProblem]


@dataclass
class EvalSummary:
    """Aggregated outcome of one scheme over many traces.

    Serializable via :func:`repro.eval.serialize.eval_summary_to_wire`;
    a summary merged from shard outputs (:mod:`repro.eval.shard`) is
    bit-identical in metrics to one computed by a serial run.
    """

    setup_label: str
    per_trace: List[TraceResult]
    accuracy: AggregateMetrics
    mean_inference_seconds: float
    mean_build_seconds: float = 0.0

    @property
    def fscore(self) -> float:
        return self.accuracy.fscore


def effective_telemetry(trace: Trace, telemetry: TelemetryConfig) -> TelemetryConfig:
    """The telemetry config a trace is actually built with.

    The telemetry analysis mode follows the trace's scenario: a
    per-flow-analysis trace (link flap) overrides the config's mode,
    exactly as the paper switches analyses per failure type.  Problem
    caching keys on this, not the raw config.
    """
    if trace.analysis == PER_FLOW and telemetry.analysis != PER_FLOW:
        return replace(telemetry, analysis=PER_FLOW)
    return telemetry


def build_problem(
    trace: Trace,
    telemetry: TelemetryConfig,
    memo: Optional[PathMemo] = None,
) -> InferenceProblem:
    """Build a scheme's inference problem for a trace.

    A trace carrying a columnar :class:`~repro.types.FlowBatch` builds
    through the struct-of-arrays pipeline (vectorized masking +
    ``np.unique`` grouping; path lookups memoized in the batch's shared
    :class:`~repro.routing.paths.PathSpace`); a records-only trace
    (e.g. a deserialized dataset) takes the object pipeline.  Both
    yield bit-identical problems for the same trace and seed.  ``memo``
    shares path-component lookups between object-pipeline builds of the
    same trace (pure topology functions, so sharing cannot change
    results).
    """
    config = effective_telemetry(trace, telemetry)
    rng = np.random.default_rng(trace.seed + 0x5EED)
    if trace.batch is not None:
        obs = build_observation_batch(trace.batch, config, rng)
        return InferenceProblem.from_batch(
            obs,
            n_components=trace.topology.n_components,
            n_links=trace.topology.n_links,
        )
    observations = build_observations(
        trace.records, trace.topology, trace.routing, config, rng, memo
    )
    return InferenceProblem.from_observations(
        observations,
        n_components=trace.topology.n_components,
        n_links=trace.topology.n_links,
    )


def timed_build(
    trace: Trace,
    telemetry: TelemetryConfig,
    memo: Optional[PathMemo] = None,
) -> Tuple[InferenceProblem, float]:
    """Build a problem and measure construction time."""
    t0 = time.perf_counter()
    problem = build_problem(trace, telemetry, memo)
    return problem, time.perf_counter() - t0


def score_problem(
    setup: SchemeSetup,
    trace: Trace,
    problem: InferenceProblem,
    build_seconds: float,
) -> TraceResult:
    """Localize on an already-built problem and score the prediction."""
    t0 = time.perf_counter()
    prediction = setup.localizer.localize(problem)
    inference_seconds = time.perf_counter() - t0
    metrics = evaluate_prediction(prediction, trace.ground_truth, trace.topology)
    return TraceResult(
        prediction=prediction,
        metrics=metrics,
        build_seconds=build_seconds,
        inference_seconds=inference_seconds,
        problem=problem,
    )


def run_on_trace(setup: SchemeSetup, trace: Trace) -> TraceResult:
    """Run one scheme on one trace and score it."""
    problem, build_seconds = timed_build(trace, setup.telemetry)
    return score_problem(setup, trace, problem, build_seconds)


def summarize(setup: SchemeSetup, results: Sequence[TraceResult]) -> EvalSummary:
    """Freeze a scheme's per-trace results into an EvalSummary."""
    acc = aggregate([r.metrics for r in results])
    n = len(results)
    return EvalSummary(
        setup_label=setup.labeled(),
        per_trace=list(results),
        accuracy=acc,
        mean_inference_seconds=(
            sum(r.inference_seconds for r in results) / n if n else 0.0
        ),
        mean_build_seconds=(
            sum(r.build_seconds for r in results) / n if n else 0.0
        ),
    )


def evaluate(
    setup: SchemeSetup,
    traces: Sequence[Trace],
    runner: Optional["RunnerConfig"] = None,
) -> EvalSummary:
    """Run one scheme over a batch of traces and aggregate."""
    from .runner import run_grid

    return run_grid([setup], traces, runner)[setup.labeled()]


def evaluate_many(
    setups: Sequence[SchemeSetup],
    traces: Sequence[Trace],
    runner: Optional["RunnerConfig"] = None,
    *,
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
) -> Dict[str, EvalSummary]:
    """Evaluate several schemes on the same traces (the paper's tables).

    ``runner`` gives full control over execution; ``jobs``/``executor``
    are conveniences (``jobs=4`` alone means a 4-worker process pool).
    Raises :class:`~repro.errors.ExperimentError` when two setups share
    a label, since their results would silently overwrite each other.
    """
    from .runner import RunnerConfig, run_grid

    config = RunnerConfig.resolve(runner, jobs, executor)
    return run_grid(setups, traces, config)
