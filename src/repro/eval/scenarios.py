"""Trace generation: topology + traffic + failure scenario -> telemetry.

A :class:`Trace` bundles everything one experiment repetition needs:
the topology and routing, the injected ground truth, and the simulated
flow records that telemetry inputs are derived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import ExperimentError
from ..routing.ecmp import EcmpRouting
from ..simulation.failures import FailureScenario, Injection
from ..simulation.flowsim import FlowLevelSimulator
from ..topology.base import Topology
from ..traffic.flows import FlowSpec, generate_passive_flows
from ..traffic.matrix import SkewedTraffic, TrafficMatrix, UniformTraffic
from ..traffic.probes import a1_probe_plan
from ..types import FlowRecord, GroundTruth

UNIFORM = "uniform"
SKEWED = "skewed"


@dataclass
class Trace:
    """One simulated monitoring interval."""

    topology: Topology
    routing: EcmpRouting
    injection: Injection
    records: List[FlowRecord]
    seed: int
    meta: Dict = field(default_factory=dict)

    @property
    def ground_truth(self) -> GroundTruth:
        return self.injection.ground_truth

    @property
    def analysis(self) -> str:
        return self.injection.analysis


def make_matrix(
    topology: Topology, pattern: str, rng: np.random.Generator
) -> TrafficMatrix:
    """Build the paper's uniform or skewed traffic matrix."""
    if pattern == UNIFORM:
        return UniformTraffic(topology)
    if pattern == SKEWED:
        return SkewedTraffic(topology, rng)
    raise ExperimentError(f"unknown traffic pattern {pattern!r}")


def make_trace(
    topology: Topology,
    routing: EcmpRouting,
    scenario: FailureScenario,
    seed: int,
    n_passive: int = 2000,
    n_probes: int = 500,
    traffic: str = UNIFORM,
    packets_per_probe: int = 40,
    mean_flow_bytes: float = 200_000.0,
) -> Trace:
    """Inject a scenario, generate traffic and probes, and simulate.

    ``traffic`` alternates between the paper's two patterns; section 6.3
    runs half of all traces with each.
    """
    rng = np.random.default_rng(seed)
    injection = scenario.inject(topology, rng)
    specs: List[FlowSpec] = []
    if n_passive > 0:
        matrix = make_matrix(topology, traffic, rng)
        specs.extend(
            generate_passive_flows(
                routing, matrix, n_passive, rng, mean_bytes=mean_flow_bytes
            )
        )
    if n_probes > 0:
        specs.extend(
            a1_probe_plan(
                topology, routing, n_probes, rng,
                packets_per_probe=packets_per_probe,
            )
        )
    simulator = FlowLevelSimulator(topology)
    records = simulator.simulate(specs, injection, rng)
    return Trace(
        topology=topology,
        routing=routing,
        injection=injection,
        records=records,
        seed=seed,
        meta={
            "traffic": traffic,
            "n_passive": n_passive,
            "n_probes": n_probes,
            "scenario": type(scenario).__name__,
        },
    )


def make_trace_batch(
    topology: Topology,
    routing: EcmpRouting,
    scenarios: List[FailureScenario],
    base_seed: int,
    alternate_traffic: bool = True,
    **kwargs,
) -> List[Trace]:
    """One trace per scenario, alternating uniform/skewed traffic.

    Mirrors section 6.3: "half the traces used uniform random traffic
    and the other half used a skewed traffic pattern".
    """
    traces = []
    for i, scenario in enumerate(scenarios):
        pattern = UNIFORM
        if alternate_traffic and i % 2 == 1:
            pattern = SKEWED
        traces.append(
            make_trace(
                topology,
                routing,
                scenario,
                seed=base_seed + i,
                traffic=pattern,
                **kwargs,
            )
        )
    return traces
