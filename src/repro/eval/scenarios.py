"""Trace generation: topology + traffic + failure scenario -> telemetry.

A :class:`Trace` bundles everything one experiment repetition needs:
the topology and routing, the injected ground truth, and the simulated
flows that telemetry inputs are derived from.  Simulation is columnar
end to end (:class:`~repro.types.FlowBatch`); ``trace.records``
materializes the object-pipeline view lazily for legacy consumers
(the agent/collector path, dataset serialization, diagnostics).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import ExperimentError
from ..routing.ecmp import EcmpRouting
from ..simulation.failures import FailureScenario, Injection
from ..simulation.flowsim import FlowLevelSimulator
from ..topology.base import Topology
from ..traffic.flows import SpecBatch, generate_passive_flow_batch
from ..traffic.matrix import SkewedTraffic, TrafficMatrix, UniformTraffic
from ..traffic.probes import a1_probe_batch
from ..types import FlowBatch, FlowRecord, GroundTruth

UNIFORM = "uniform"
SKEWED = "skewed"


class Trace:
    """One simulated monitoring interval.

    Holds either the columnar ``batch`` (the native representation the
    simulator produces), a ``records`` list (legacy construction, e.g.
    deserialized datasets), or both.  ``records`` is a property: when
    only the batch exists, the object view is materialized on first
    access and cached, so legacy consumers pay the per-record cost only
    if they actually iterate records.
    """

    def __init__(
        self,
        topology: Topology,
        routing: EcmpRouting,
        injection: Injection,
        records: Optional[List[FlowRecord]] = None,
        seed: int = 0,
        meta: Optional[Dict] = None,
        batch: Optional[FlowBatch] = None,
    ) -> None:
        if records is None and batch is None:
            raise ExperimentError("a trace needs flow records or a flow batch")
        self.topology = topology
        self.routing = routing
        self.injection = injection
        self.seed = seed
        self.meta = {} if meta is None else meta
        self.batch = batch
        self._records = records

    @property
    def records(self) -> List[FlowRecord]:
        """Object-pipeline view of the trace's flows (lazy, cached)."""
        if self._records is None:
            self._records = self.batch.records()
        return self._records

    @property
    def n_flows(self) -> int:
        """Flow count without materializing the record view."""
        if self.batch is not None:
            return len(self.batch)
        return len(self._records)

    @property
    def ground_truth(self) -> GroundTruth:
        return self.injection.ground_truth

    @property
    def analysis(self) -> str:
        return self.injection.analysis


def make_matrix(
    topology: Topology, pattern: str, rng: np.random.Generator
) -> TrafficMatrix:
    """Build the paper's uniform or skewed traffic matrix."""
    if pattern == UNIFORM:
        return UniformTraffic(topology)
    if pattern == SKEWED:
        return SkewedTraffic(topology, rng)
    raise ExperimentError(f"unknown traffic pattern {pattern!r}")


def make_trace(
    topology: Topology,
    routing: EcmpRouting,
    scenario: FailureScenario,
    seed: int,
    n_passive: int = 2000,
    n_probes: int = 500,
    traffic: str = UNIFORM,
    packets_per_probe: int = 40,
    mean_flow_bytes: float = 200_000.0,
    rng_mode: str = "grouped",
) -> Trace:
    """Inject a scenario, generate traffic and probes, and simulate.

    ``traffic`` alternates between the paper's two patterns; section 6.3
    runs half of all traces with each.  The whole build is columnar:
    flows never exist as per-record Python objects, and path ids come
    from the routing's shared :class:`~repro.routing.paths.PathSpace`,
    so interning work amortizes across every trace of the batch.
    """
    rng = np.random.default_rng(seed)
    injection = scenario.inject(topology, rng)
    space = routing.path_space()
    batches: List[SpecBatch] = []
    if n_passive > 0:
        matrix = make_matrix(topology, traffic, rng)
        batches.append(
            generate_passive_flow_batch(
                routing, matrix, n_passive, rng, space,
                mean_bytes=mean_flow_bytes,
            )
        )
    if n_probes > 0:
        batches.append(
            a1_probe_batch(
                topology, routing, n_probes, rng, space,
                packets_per_probe=packets_per_probe,
            )
        )
    specs = SpecBatch.concat(batches) if batches else SpecBatch.empty(space)
    simulator = FlowLevelSimulator(topology)
    batch = simulator.simulate_batch(specs, injection, rng, rng_mode=rng_mode)
    return Trace(
        topology=topology,
        routing=routing,
        injection=injection,
        batch=batch,
        seed=seed,
        meta={
            "traffic": traffic,
            "n_passive": n_passive,
            "n_probes": n_probes,
            "scenario": type(scenario).__name__,
        },
    )


def make_trace_batch(
    topology: Topology,
    routing: EcmpRouting,
    scenarios: List[FailureScenario],
    base_seed: int,
    alternate_traffic: bool = True,
    **kwargs,
) -> List[Trace]:
    """One trace per scenario, alternating uniform/skewed traffic.

    Mirrors section 6.3: "half the traces used uniform random traffic
    and the other half used a skewed traffic pattern".
    """
    traces = []
    for i, scenario in enumerate(scenarios):
        pattern = UNIFORM
        if alternate_traffic and i % 2 == 1:
            pattern = SKEWED
        traces.append(
            make_trace(
                topology,
                routing,
                scenario,
                seed=base_seed + i,
                traffic=pattern,
                **kwargs,
            )
        )
    return traces
