"""Evaluation layer: metrics, traces, harness, per-figure experiments."""

from .dataset import generate_suite, load_trace, save_trace
from .harness import (
    EvalSummary,
    SchemeSetup,
    TraceResult,
    build_problem,
    effective_telemetry,
    evaluate,
    evaluate_many,
    run_on_trace,
)
from .runner import EXECUTORS, ProblemCache, RunnerConfig, RunnerStats, run_grid
from .serialize import (
    eval_summary_from_wire,
    eval_summary_to_wire,
    trace_result_from_wire,
    trace_result_to_wire,
)
from .shard import (
    ShardRecorder,
    ShardReplayer,
    ShardSpec,
    merge_payloads,
    merge_shards,
    run_sharded,
    shard_bounds,
)
from .metrics import (
    AggregateMetrics,
    TraceMetrics,
    aggregate,
    error_reduction,
    evaluate_prediction,
    fscore,
)
from .scenarios import SKEWED, UNIFORM, Trace, make_matrix, make_trace, make_trace_batch

__all__ = [
    "generate_suite",
    "save_trace",
    "load_trace",
    "SchemeSetup",
    "TraceResult",
    "EvalSummary",
    "build_problem",
    "effective_telemetry",
    "run_on_trace",
    "evaluate",
    "evaluate_many",
    "EXECUTORS",
    "ProblemCache",
    "RunnerConfig",
    "RunnerStats",
    "run_grid",
    "ShardSpec",
    "ShardRecorder",
    "ShardReplayer",
    "shard_bounds",
    "run_sharded",
    "merge_shards",
    "merge_payloads",
    "eval_summary_to_wire",
    "eval_summary_from_wire",
    "trace_result_to_wire",
    "trace_result_from_wire",
    "TraceMetrics",
    "AggregateMetrics",
    "aggregate",
    "evaluate_prediction",
    "fscore",
    "error_reduction",
    "Trace",
    "make_trace",
    "make_trace_batch",
    "make_matrix",
    "UNIFORM",
    "SKEWED",
]
