"""Evaluation layer: metrics, traces, harness, per-figure experiments."""

from .dataset import generate_suite, load_trace, save_trace
from .harness import (
    EvalSummary,
    SchemeSetup,
    TraceResult,
    build_problem,
    effective_telemetry,
    evaluate,
    evaluate_many,
    run_on_trace,
)
from .runner import EXECUTORS, ProblemCache, RunnerConfig, RunnerStats, run_grid
from .metrics import (
    AggregateMetrics,
    TraceMetrics,
    aggregate,
    error_reduction,
    evaluate_prediction,
    fscore,
)
from .scenarios import SKEWED, UNIFORM, Trace, make_matrix, make_trace, make_trace_batch

__all__ = [
    "generate_suite",
    "save_trace",
    "load_trace",
    "SchemeSetup",
    "TraceResult",
    "EvalSummary",
    "build_problem",
    "effective_telemetry",
    "run_on_trace",
    "evaluate",
    "evaluate_many",
    "EXECUTORS",
    "ProblemCache",
    "RunnerConfig",
    "RunnerStats",
    "run_grid",
    "TraceMetrics",
    "AggregateMetrics",
    "aggregate",
    "evaluate_prediction",
    "fscore",
    "error_reduction",
    "Trace",
    "make_trace",
    "make_trace_batch",
    "make_matrix",
    "UNIFORM",
    "SKEWED",
]
