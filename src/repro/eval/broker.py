"""SQLite work-unit broker: the fleet's queue and results database.

One broker file holds one submitted experiment, decomposed into
:class:`~repro.eval.units.WorkUnit` rows (the *keyfields*: experiment
metadata + each unit's grid call and trace range) and a ``results``
table of wire-codec payloads keyed by unit id (the *resultfields*).
Workers on any machine open the same file, lease units, and write
results back; because a unit's inputs and outputs are both rows,
retries and resumption are free - re-running a worker against a
half-finished broker just drains what's left.

Unit lifecycle::

    pending --claim--> leased --complete--> done
       ^                 |
       |   lease expired | or fail(), attempts < max_attempts
       +-----------------+
                         |
                         | attempts >= max_attempts
                         v
                       failed

* **Leases** bound the damage of a crashed worker: a claim holds for
  ``lease_seconds``; an expired lease is reaped back to ``pending`` on
  the next broker operation, so the unit is re-run by whoever claims
  next.  A completion, failure report, or :meth:`~Broker.renew` from a
  worker that lost its lease - including one whose lease expired but
  was not yet reaped - is discarded (results are deterministic, but
  exactly-one-writer keeps the results table unambiguous).
* **Heartbeats**: a worker executing a unit longer than its lease
  renews mid-unit via :meth:`~Broker.renew` (the fleet worker runs a
  background ticker; see ``heartbeat_seconds``).  Renewal extends the
  lease from *now*, and a late renewal after expiry is discarded
  exactly like a late completion, so a stalled worker cannot
  resurrect a lease another worker may already hold.
* **Checksummed results**: every stored payload carries a checksum
  computed by the worker *before* the payload went on the wire;
  :meth:`~Broker.verify_results` (run by ``fleet collect``) detects
  transport/storage corruption and re-queues the unit instead of
  letting garbage fold into the experiment result.
* **Bounded retries**: every claim counts as an attempt; a unit whose
  lease expires (or whose execution raises) after ``max_attempts``
  claims moves to ``failed`` with the error recorded, and
  :func:`~repro.eval.fleet.collect` refuses to assemble a result until
  someone intervenes.
* **Schema safety**: the broker stores the wire-codec
  :data:`~repro.eval.serialize.SCHEMA_VERSION` and the submitted
  :class:`~repro.eval.units.CallPlan` sequence; opening a broker from
  a checkout speaking a different wire version fails loudly, and
  workers additionally validate their live grid against the stored
  plan before any result is written.

Concurrency: WAL journal mode plus short ``BEGIN IMMEDIATE``
transactions make claim/complete safe across processes and machines
sharing the file (NFS caveats apply as usual for SQLite; same-host
multi-process is the designed case).  All timestamps come through the
``now`` parameters so tests can drive lease expiry deterministically.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError, FleetError
from .serialize import SCHEMA_VERSION, encode_unit_payload, payload_checksum
from .units import (
    CallPlan,
    WorkUnit,
    call_plans_from_wire,
    call_plans_to_wire,
    unit_payload_entries,
)

BROKER_FORMAT = "flock-broker-v2"

#: Formats this checkout recognizes but no longer speaks (v1 predates
#: result checksums and mid-unit lease renewal).
OUTDATED_FORMATS = ("flock-broker-v1",)

#: Experiment-identity keys stored in broker meta (mirrors the shard
#: payload's ``_META_KEYS`` contract: everything that changes the spec).
EXPERIMENT_META_KEYS = ("experiment", "preset", "seed", "scheme", "overrides")

_SCHEMA = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE units (
    id            INTEGER PRIMARY KEY,
    call_index    INTEGER NOT NULL,
    start         INTEGER NOT NULL,
    stop          INTEGER NOT NULL,
    seeds         TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'pending',
    attempts      INTEGER NOT NULL DEFAULT 0,
    worker        TEXT,
    lease_expires REAL,
    error         TEXT
);
CREATE INDEX units_by_status ON units(status, id);
CREATE TABLE results (
    unit_id      INTEGER PRIMARY KEY REFERENCES units(id),
    payload      TEXT NOT NULL,
    checksum     TEXT NOT NULL,
    worker       TEXT NOT NULL,
    completed_at REAL NOT NULL
);
"""

STATUSES = ("pending", "leased", "done", "failed")


@dataclass(frozen=True)
class FleetCounts:
    """Live unit-lifecycle counts (``repro-flock fleet status``)."""

    pending: int = 0
    leased: int = 0
    done: int = 0
    failed: int = 0

    @property
    def total(self) -> int:
        return self.pending + self.leased + self.done + self.failed

    @property
    def finished(self) -> bool:
        return self.pending == 0 and self.leased == 0

    def as_dict(self) -> Dict[str, int]:
        return {status: getattr(self, status) for status in STATUSES}


@dataclass(frozen=True)
class LeasedUnit:
    """One claimed unit: the work plus its lease bookkeeping."""

    unit_id: int
    unit: WorkUnit
    attempt: int
    lease_expires: float


def _encode_meta(value) -> str:
    return json.dumps(value)


class Broker:
    """One experiment's work-unit queue + results database.

    Construct via :meth:`create` (submitter) or :meth:`open` (workers,
    status, collector).  Usable as a context manager; every public
    method is one short transaction, so a single ``Broker`` instance
    can be shared across a worker's whole run but not across threads.
    """

    def __init__(
        self,
        path: Path,
        connection: sqlite3.Connection,
        fault_hook: Optional[Callable[[str], None]] = None,
    ):
        self.path = path
        self._conn = connection
        #: Test/chaos seam: called with the operation name at the top of
        #: every lifecycle method, *before* any transaction opens, so it
        #: can raise ``sqlite3.OperationalError`` to simulate the
        #: transient lock contention :class:`~repro.retry.RetryPolicy`
        #: is expected to absorb.
        self.fault_hook = fault_hook

    def _fault(self, op: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(op)

    # -- construction --------------------------------------------------

    @staticmethod
    def _connect(path: Path) -> sqlite3.Connection:
        conn = sqlite3.connect(str(path), timeout=30.0, isolation_level=None)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA busy_timeout=30000")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    @classmethod
    def create(
        cls,
        path,
        meta: Dict[str, object],
        plan: Sequence[CallPlan],
        units: Sequence[WorkUnit],
        lease_seconds: float = 60.0,
        max_attempts: int = 3,
        now: Optional[float] = None,
    ) -> "Broker":
        """Initialize a new broker file with an experiment's unit set."""
        path = Path(path)
        if path.exists():
            raise ExperimentError(
                f"broker file {path} already exists; submit to a fresh path "
                "(workers resume a half-finished fleet by just running "
                "against the existing file)"
            )
        if not units:
            raise ExperimentError("refusing to create a broker with no work units")
        if lease_seconds <= 0:
            raise ExperimentError(
                f"lease_seconds must be > 0, got {lease_seconds}"
            )
        if max_attempts < 1:
            raise ExperimentError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        unknown = sorted(set(meta) - set(EXPERIMENT_META_KEYS))
        if unknown:
            raise ExperimentError(f"unknown broker meta keys: {unknown}")
        conn = cls._connect(path)
        try:
            conn.executescript(_SCHEMA)
            rows = {
                "format": BROKER_FORMAT,
                "schema_version": SCHEMA_VERSION,
                "plan": call_plans_to_wire(plan),
                "lease_seconds": float(lease_seconds),
                "max_attempts": int(max_attempts),
                "created_at": now if now is not None else time.time(),
            }
            for key in EXPERIMENT_META_KEYS:
                rows[key] = meta.get(key)
            conn.execute("BEGIN IMMEDIATE")
            conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [(key, _encode_meta(value)) for key, value in rows.items()],
            )
            conn.executemany(
                "INSERT INTO units (call_index, start, stop, seeds) "
                "VALUES (?, ?, ?, ?)",
                [
                    (u.call_index, u.start, u.stop, json.dumps(list(u.seeds)))
                    for u in units
                ],
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.close()
            raise
        return cls(path, conn)

    @classmethod
    def open(
        cls, path, fault_hook: Optional[Callable[[str], None]] = None
    ) -> "Broker":
        """Open an existing broker, validating format + wire schema."""
        path = Path(path)
        if not path.exists():
            raise ExperimentError(f"broker file {path} does not exist")
        try:
            conn = cls._connect(path)
        except sqlite3.DatabaseError as exc:
            raise ExperimentError(
                f"{path} is not a broker database: {exc}"
            ) from None
        try:
            try:
                rows = dict(conn.execute("SELECT key, value FROM meta"))
            except sqlite3.DatabaseError as exc:
                raise ExperimentError(
                    f"{path} is not a broker database: {exc}"
                ) from None
            fmt = json.loads(rows.get("format", "null"))
            if fmt in OUTDATED_FORMATS:
                raise ExperimentError(
                    f"broker {path} was created as {fmt} by an older "
                    f"checkout; this checkout speaks {BROKER_FORMAT} "
                    "(result checksums + lease renewal) - resubmit the "
                    "fleet to a fresh broker file"
                )
            if fmt != BROKER_FORMAT:
                raise ExperimentError(
                    f"{path} is not a {BROKER_FORMAT} database (format={fmt!r})"
                )
            version = json.loads(rows.get("schema_version", "null"))
            if version != SCHEMA_VERSION:
                raise ExperimentError(
                    f"broker {path} speaks wire schema v{version!r} but this "
                    f"checkout speaks v{SCHEMA_VERSION}; run the fleet on "
                    "matching checkouts"
                )
        except BaseException:
            conn.close()
            raise
        return cls(path, conn, fault_hook=fault_hook)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- metadata ------------------------------------------------------

    def meta(self) -> Dict[str, object]:
        """All meta rows, JSON-decoded."""
        return {
            key: json.loads(value)
            for key, value in self._conn.execute("SELECT key, value FROM meta")
        }

    def experiment_meta(self) -> Dict[str, object]:
        """The experiment-identity subset of :meth:`meta`."""
        meta = self.meta()
        return {key: meta.get(key) for key in EXPERIMENT_META_KEYS}

    def plan(self) -> List[CallPlan]:
        return call_plans_from_wire(self.meta()["plan"])

    @property
    def lease_seconds(self) -> float:
        return float(self.meta()["lease_seconds"])

    @property
    def max_attempts(self) -> int:
        return int(self.meta()["max_attempts"])

    # -- lifecycle -----------------------------------------------------

    def _reap_unit(
        self, unit_id: int, attempts: int, worker, max_attempts: int
    ) -> str:
        """Within an open transaction: recycle one expired lease.

        Lease bookkeeping (``worker``/``lease_expires``) is cleared on
        both paths so a stale holder can never leak into the next
        attempt; an exhausted unit keeps the expiry diagnosis in
        ``error``.  Returns the unit's new status.
        """
        if attempts >= max_attempts:
            self._conn.execute(
                "UPDATE units SET status = 'failed', worker = NULL, "
                "lease_expires = NULL, error = ? WHERE id = ?",
                (
                    f"lease expired after {attempts} attempt(s); "
                    f"last worker: {worker}",
                    unit_id,
                ),
            )
            return "failed"
        self._conn.execute(
            "UPDATE units SET status = 'pending', worker = NULL, "
            "lease_expires = NULL WHERE id = ?",
            (unit_id,),
        )
        return "pending"

    def _reap_expired(self, now: float, max_attempts: int) -> int:
        """Within an open transaction: recycle expired leases.

        Expired units with attempts left go back to ``pending``; the
        rest move to ``failed`` with the expiry recorded.
        """
        expired = self._conn.execute(
            "SELECT id, attempts, worker FROM units "
            "WHERE status = 'leased' AND lease_expires < ?",
            (now,),
        ).fetchall()
        for unit_id, attempts, worker in expired:
            self._reap_unit(unit_id, attempts, worker, max_attempts)
        return len(expired)

    def claim(
        self, worker: str, now: Optional[float] = None
    ) -> Optional[LeasedUnit]:
        """Atomically lease the oldest pending unit (reaping expired
        leases first).  Returns ``None`` when nothing is claimable."""
        self._fault("claim")
        now = now if now is not None else time.time()
        meta = self.meta()
        lease_seconds = float(meta["lease_seconds"])
        max_attempts = int(meta["max_attempts"])
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._reap_expired(now, max_attempts)
            row = self._conn.execute(
                "SELECT id, call_index, start, stop, seeds, attempts "
                "FROM units WHERE status = 'pending' ORDER BY id LIMIT 1"
            ).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return None
            unit_id, call_index, start, stop, seeds, attempts = row
            expires = now + lease_seconds
            self._conn.execute(
                "UPDATE units SET status = 'leased', attempts = ?, "
                "worker = ?, lease_expires = ?, error = NULL WHERE id = ?",
                (attempts + 1, worker, expires, unit_id),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        unit = WorkUnit(call_index, start, stop, seeds=tuple(json.loads(seeds)))
        return LeasedUnit(
            unit_id=unit_id, unit=unit, attempt=attempts + 1,
            lease_expires=expires,
        )

    def complete(
        self,
        unit_id: int,
        worker: str,
        payload: Optional[Dict] = None,
        now: Optional[float] = None,
        wire: Optional[str] = None,
        checksum: Optional[str] = None,
    ) -> bool:
        """Mark a leased unit done and store its result payload.

        The payload may arrive as an object (``payload``, encoded and
        checksummed here) or pre-encoded (``wire`` + ``checksum``, the
        fleet worker's path: the checksum is computed over the payload
        *before* it crosses any wire, so corruption in transit is
        detectable by :meth:`verify_results`).

        Returns ``False`` (and stores nothing) when the worker no
        longer holds the unit's lease - it stalled past expiry (the
        late completion is discarded and the lease reaped, whether or
        not anyone re-claimed it yet) or the unit was re-leased - so
        exactly one result row ever exists per unit.
        """
        self._fault("complete")
        if wire is None:
            if payload is None:
                raise FleetError(
                    "complete() needs either a payload object or a "
                    "pre-encoded wire + checksum"
                )
            wire, checksum = encode_unit_payload(payload)
        elif checksum is None:
            raise FleetError("pre-encoded completions must carry a checksum")
        now = now if now is not None else time.time()
        max_attempts = self.max_attempts
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT status, worker, lease_expires, attempts "
                "FROM units WHERE id = ?",
                (unit_id,),
            ).fetchone()
            if row is None:
                raise ExperimentError(f"unknown unit id {unit_id}")
            status, holder, lease_expires, attempts = row
            if status != "leased" or holder != worker:
                self._conn.execute("COMMIT")
                return False
            if lease_expires is not None and lease_expires < now:
                # Late completion: the lease already ran out, so the
                # unit may be (or be about to be) someone else's.
                self._reap_unit(unit_id, attempts, holder, max_attempts)
                self._conn.execute("COMMIT")
                return False
            self._conn.execute(
                "UPDATE units SET status = 'done', lease_expires = NULL "
                "WHERE id = ?",
                (unit_id,),
            )
            self._conn.execute(
                "INSERT INTO results "
                "(unit_id, payload, checksum, worker, completed_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (unit_id, wire, checksum, worker, now),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return True

    def renew(
        self, unit_id: int, worker: str, now: Optional[float] = None
    ) -> Optional[float]:
        """Extend a held lease (the worker heartbeat).

        Returns the new expiry when the worker still holds a live
        lease.  A renewal after expiry is discarded exactly like a late
        completion - the unit is reaped (re-queued or failed) and
        ``None`` comes back, telling the worker its result will be
        stale.  ``None`` also means the unit moved on (completed,
        re-leased, failed).
        """
        self._fault("renew")
        now = now if now is not None else time.time()
        meta = self.meta()
        lease_seconds = float(meta["lease_seconds"])
        max_attempts = int(meta["max_attempts"])
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT status, worker, lease_expires, attempts "
                "FROM units WHERE id = ?",
                (unit_id,),
            ).fetchone()
            if row is None:
                raise ExperimentError(f"unknown unit id {unit_id}")
            status, holder, lease_expires, attempts = row
            if status != "leased" or holder != worker:
                self._conn.execute("COMMIT")
                return None
            if lease_expires is not None and lease_expires < now:
                self._reap_unit(unit_id, attempts, holder, max_attempts)
                self._conn.execute("COMMIT")
                return None
            expires = now + lease_seconds
            self._conn.execute(
                "UPDATE units SET lease_expires = ? WHERE id = ?",
                (expires, unit_id),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return expires

    def fail(
        self,
        unit_id: int,
        worker: str,
        error: str,
        now: Optional[float] = None,
    ) -> Optional[str]:
        """Record a failed execution attempt for a leased unit.

        Returns the unit's new status (``'pending'`` while retries
        remain, ``'failed'`` once attempts are exhausted), or ``None``
        when the worker no longer held the lease (including a lease
        that expired un-reaped - the late failure report is discarded
        like a late completion).
        """
        self._fault("fail")
        now = now if now is not None else time.time()
        max_attempts = self.max_attempts
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT status, worker, attempts, lease_expires "
                "FROM units WHERE id = ?",
                (unit_id,),
            ).fetchone()
            if row is None:
                raise ExperimentError(f"unknown unit id {unit_id}")
            status, holder, attempts, lease_expires = row
            if status != "leased" or holder != worker:
                self._conn.execute("COMMIT")
                return None
            if lease_expires is not None and lease_expires < now:
                self._reap_unit(unit_id, attempts, holder, max_attempts)
                self._conn.execute("COMMIT")
                return None
            new_status = "failed" if attempts >= max_attempts else "pending"
            self._conn.execute(
                "UPDATE units SET status = ?, worker = NULL, "
                "lease_expires = NULL, error = ? WHERE id = ?",
                (new_status, error, unit_id),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return new_status

    def retry_failed(self) -> int:
        """Re-queue permanently-failed units after a fix.

        Failed units go back to ``pending`` with their attempt budget
        and error reset, so the ordinary lease lifecycle (and its
        bounded retries) applies afresh.  Returns how many units were
        re-queued.  Completed work is untouched - a failed unit never
        has a results row.
        """
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            failed = [
                unit_id
                for (unit_id,) in self._conn.execute(
                    "SELECT id FROM units WHERE status = 'failed' ORDER BY id"
                )
            ]
            self._conn.executemany(
                "UPDATE units SET status = 'pending', attempts = 0, "
                "worker = NULL, lease_expires = NULL, error = NULL "
                "WHERE id = ?",
                [(unit_id,) for unit_id in failed],
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return len(failed)

    def verify_results(self) -> List[int]:
        """Checksum-audit stored payloads; re-queue corrupted units.

        Recomputes each result row's checksum over the stored payload
        text.  A mismatch means the payload was damaged between the
        worker's serialization and here (wire corruption, torn write,
        bit rot); the result row is deleted and the unit re-queued as
        ``pending`` - its attempt budget intact, since the *work*
        didn't fail - so the fleet simply re-runs it.  Returns the
        re-queued unit ids.  ``fleet collect`` runs this before
        folding anything.
        """
        self._fault("verify_results")
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            corrupt = [
                unit_id
                for unit_id, payload, checksum in self._conn.execute(
                    "SELECT unit_id, payload, checksum FROM results "
                    "ORDER BY unit_id"
                )
                if payload_checksum(payload) != checksum
            ]
            for unit_id in corrupt:
                self._conn.execute(
                    "DELETE FROM results WHERE unit_id = ?", (unit_id,)
                )
                self._conn.execute(
                    "UPDATE units SET status = 'pending', worker = NULL, "
                    "lease_expires = NULL, error = NULL WHERE id = ?",
                    (unit_id,),
                )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return corrupt

    # -- introspection -------------------------------------------------

    def counts(self) -> FleetCounts:
        self._fault("counts")
        rows = dict(
            self._conn.execute(
                "SELECT status, COUNT(*) FROM units GROUP BY status"
            )
        )
        return FleetCounts(**{status: rows.get(status, 0) for status in STATUSES})

    def next_lease_expiry(self) -> Optional[float]:
        """Earliest outstanding lease expiry (workers sleep until it)."""
        self._fault("next_lease_expiry")
        row = self._conn.execute(
            "SELECT MIN(lease_expires) FROM units WHERE status = 'leased'"
        ).fetchone()
        return row[0]

    def unit_rows(self) -> List[Dict[str, object]]:
        """Every unit's full row (``fleet status`` detail view)."""
        rows = self._conn.execute(
            "SELECT id, call_index, start, stop, seeds, status, attempts, "
            "worker, lease_expires, error FROM units ORDER BY id"
        ).fetchall()
        return [
            {
                "id": r[0], "call_index": r[1], "start": r[2], "stop": r[3],
                "seeds": json.loads(r[4]), "status": r[5], "attempts": r[6],
                "worker": r[7], "lease_expires": r[8], "error": r[9],
            }
            for r in rows
        ]

    def errors(self) -> List[Tuple[int, str]]:
        """(unit id, error) for units that failed permanently."""
        return [
            (unit_id, error)
            for unit_id, error in self._conn.execute(
                "SELECT id, error FROM units WHERE status = 'failed' ORDER BY id"
            )
        ]

    def completion_times(self) -> List[float]:
        """Ascending wall-clock completion times of done units."""
        return [
            t
            for (t,) in self._conn.execute(
                "SELECT completed_at FROM results ORDER BY completed_at"
            )
        ]

    def results(self) -> List[Tuple[WorkUnit, List]]:
        """Completed units with their recorded wire entries, unit order.

        Every payload is checksum-verified on the way out (defense in
        depth behind :meth:`verify_results`, which re-queues instead of
        raising); a mismatch here means the database changed under us.
        """
        rows = self._conn.execute(
            "SELECT u.call_index, u.start, u.stop, u.seeds, r.payload, "
            "r.checksum "
            "FROM results r JOIN units u ON u.id = r.unit_id ORDER BY r.unit_id"
        ).fetchall()
        out = []
        for call_index, start, stop, seeds, payload, checksum in rows:
            if payload_checksum(payload) != checksum:
                raise FleetError(
                    f"result payload for unit covering call {call_index} "
                    f"traces [{start}, {stop}) fails its checksum; run "
                    "verify_results()/'fleet collect' to re-queue it"
                )
            unit = WorkUnit(
                call_index, start, stop, seeds=tuple(json.loads(seeds))
            )
            entries = unit_payload_entries(json.loads(payload))
            out.append((unit, entries))
        return out
