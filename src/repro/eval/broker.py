"""SQLite work-unit broker: the fleet's queue and results database.

One broker file holds any number of submitted *experiments*, each
decomposed into :class:`~repro.eval.units.WorkUnit` rows (the
*keyfields*: experiment metadata + each unit's grid call and trace
range) and a shared ``results`` table of wire-codec payloads keyed by
unit id (the *resultfields*).  Workers on any machine open the same
file, lease units, and write results back; because a unit's inputs and
outputs are both rows, retries and resumption are free - re-running a
worker against a half-finished broker just drains what's left.

Unit lifecycle::

    pending --claim--> leased --complete--> done
       ^                 |
       |   lease expired | or fail(), attempts < max_attempts
       +-----------------+
                         |
                         | attempts >= max_attempts
                         v
                       failed

* **Experiments**: the ``experiments`` table journals each submission
  (identity meta, call plan, plan fingerprint, scheduling priority,
  per-experiment lease/attempt budgets).  Units are namespaced by
  ``experiment_id``; a claim drains ready experiments by **priority
  (descending), then unit id (FIFO)**, so one broker file serves a
  whole evaluation campaign and urgent experiments jump the queue.
* **Journaled enqueue**: a submission is two-phase - the experiment
  row is written first in ``'enqueueing'`` state (the journal entry,
  carrying the planned unit count and the plan fingerprint), units are
  inserted in batches, and only :meth:`~Broker.finish_enqueue` flips
  the row to ``'ready'``.  Workers never claim from an
  ``'enqueueing'`` experiment, so a submitter killed mid-enqueue
  strands nothing: re-running the same submission sees the journal
  row, verifies the fingerprint, and resumes inserting exactly where
  the dead submitter stopped (a *different* plan under the same name
  fails loudly instead).
* **Leases** bound the damage of a crashed worker: a claim holds for
  the experiment's ``lease_seconds``; an expired lease is reaped back
  to ``pending`` on the next broker operation, so the unit is re-run
  by whoever claims next.  A completion, failure report, or
  :meth:`~Broker.renew` from a worker that lost its lease - including
  one whose lease expired but was not yet reaped - is discarded
  (results are deterministic, but exactly-one-writer keeps the results
  table unambiguous).
* **Heartbeats**: a worker executing a unit longer than its lease
  renews mid-unit via :meth:`~Broker.renew` (the fleet worker runs a
  background ticker; see ``heartbeat_seconds``).  Renewal extends the
  lease from *now*, and a late renewal after expiry is discarded
  exactly like a late completion, so a stalled worker cannot
  resurrect a lease another worker may already hold.
* **Checksummed results**: every stored payload carries a checksum
  computed by the worker *before* the payload went on the wire;
  :meth:`~Broker.verify_results` (run by ``fleet collect``) detects
  transport/storage corruption and re-queues the unit instead of
  letting garbage fold into the experiment result.
* **Bounded retries**: every claim counts as an attempt; a unit whose
  lease expires (or whose execution raises) after the experiment's
  ``max_attempts`` claims moves to ``failed`` with the error recorded,
  and :func:`~repro.eval.fleet.collect` refuses to assemble a result
  until someone intervenes.
* **Schema safety**: the broker stores the wire-codec
  :data:`~repro.eval.serialize.SCHEMA_VERSION` and each experiment's
  submitted :class:`~repro.eval.units.CallPlan` sequence; opening a
  broker from a checkout speaking a different wire version fails
  loudly, and workers additionally validate their live grid against
  the stored plan before any result is written.  A ``flock-broker-v2``
  file (single-experiment layout) is migrated in place to v3 on open;
  v1 files (no checksums, no renewal) are rejected with guidance.

Concurrency: WAL journal mode plus short ``BEGIN IMMEDIATE``
transactions make claim/complete safe across processes and machines
sharing the file (NFS caveats apply as usual for SQLite; same-host
multi-process is the designed case).  All timestamps come through the
``now`` parameters so tests can drive lease expiry deterministically.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError, FleetError
from .serialize import SCHEMA_VERSION, encode_unit_payload, payload_checksum
from .units import (
    CallPlan,
    WorkUnit,
    call_plans_from_wire,
    call_plans_to_wire,
    unit_payload_entries,
)

BROKER_FORMAT = "flock-broker-v3"

#: Formats this checkout recognizes but no longer speaks (v1 predates
#: result checksums and mid-unit lease renewal).
OUTDATED_FORMATS = ("flock-broker-v1",)

#: Formats this checkout upgrades in place on :meth:`Broker.open` (v2
#: is the single-experiment layout: one plan in the ``meta`` table, no
#: ``experiments`` journal).
MIGRATABLE_FORMATS = ("flock-broker-v2",)

#: Experiment-identity keys stored per experiment row (mirrors the
#: shard payload's ``_META_KEYS`` contract: everything that changes
#: the spec).
EXPERIMENT_META_KEYS = ("experiment", "preset", "seed", "scheme", "overrides")

#: Journal states of an experiment row.  Units are only claimable from
#: ``'ready'`` experiments; ``'enqueueing'`` marks an in-flight (or
#: crashed) submission.
EXPERIMENT_STATES = ("enqueueing", "ready")

_SCHEMA = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE experiments (
    id            INTEGER PRIMARY KEY,
    name          TEXT NOT NULL UNIQUE,
    meta          TEXT NOT NULL,
    plan          TEXT NOT NULL,
    plan_hash     TEXT NOT NULL,
    priority      INTEGER NOT NULL DEFAULT 0,
    state         TEXT NOT NULL DEFAULT 'enqueueing',
    n_units       INTEGER NOT NULL,
    lease_seconds REAL NOT NULL,
    max_attempts  INTEGER NOT NULL,
    created_at    REAL NOT NULL
);
CREATE TABLE units (
    id            INTEGER PRIMARY KEY,
    experiment_id INTEGER NOT NULL REFERENCES experiments(id),
    unit_index    INTEGER NOT NULL,
    call_index    INTEGER NOT NULL,
    start         INTEGER NOT NULL,
    stop          INTEGER NOT NULL,
    seeds         TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'pending',
    attempts      INTEGER NOT NULL DEFAULT 0,
    worker        TEXT,
    lease_expires REAL,
    error         TEXT,
    UNIQUE (experiment_id, unit_index)
);
CREATE INDEX units_by_status ON units(status, id);
CREATE TABLE results (
    unit_id      INTEGER PRIMARY KEY REFERENCES units(id),
    payload      TEXT NOT NULL,
    checksum     TEXT NOT NULL,
    worker       TEXT NOT NULL,
    completed_at REAL NOT NULL
);
"""

STATUSES = ("pending", "leased", "done", "failed")


def plan_fingerprint(
    meta: Dict[str, object],
    plan: Sequence[CallPlan],
    units: Sequence[WorkUnit],
) -> str:
    """Stable fingerprint of one submission's full identity.

    Covers the experiment meta, the grid-call plan, and the exact unit
    decomposition (so the same experiment submitted with a different
    ``unit_traces`` is a *different* plan).  A crashed-and-rerun
    ``fleet submit`` may resume enqueueing only when fingerprints
    match; anything else fails loudly.
    """
    doc = {
        "meta": {key: meta.get(key) for key in EXPERIMENT_META_KEYS},
        "plan": call_plans_to_wire(plan),
        "units": [
            [u.call_index, u.start, u.stop, list(u.seeds)] for u in units
        ],
    }
    return payload_checksum(json.dumps(doc, sort_keys=True))


@dataclass(frozen=True)
class FleetCounts:
    """Live unit-lifecycle counts (``repro-flock fleet status``)."""

    pending: int = 0
    leased: int = 0
    done: int = 0
    failed: int = 0

    @property
    def total(self) -> int:
        return self.pending + self.leased + self.done + self.failed

    @property
    def finished(self) -> bool:
        return self.pending == 0 and self.leased == 0

    def as_dict(self) -> Dict[str, int]:
        return {status: getattr(self, status) for status in STATUSES}


@dataclass(frozen=True)
class ExperimentRow:
    """One experiment's journal row (identity + scheduling + state)."""

    id: int
    name: str
    meta: Dict[str, object]
    plan_hash: str
    priority: int
    state: str
    n_units: int
    lease_seconds: float
    max_attempts: int
    created_at: float

    @property
    def ready(self) -> bool:
        return self.state == "ready"


@dataclass(frozen=True)
class LeasedUnit:
    """One claimed unit: the work plus its lease bookkeeping."""

    unit_id: int
    unit: WorkUnit
    attempt: int
    lease_expires: float
    experiment_id: int = 1
    experiment: str = ""
    lease_seconds: float = 0.0


def _encode_meta(value) -> str:
    return json.dumps(value)


def _validate_budgets(lease_seconds: float, max_attempts: int) -> None:
    if lease_seconds <= 0:
        raise ExperimentError(
            f"lease_seconds must be > 0, got {lease_seconds}"
        )
    if max_attempts < 1:
        raise ExperimentError(
            f"max_attempts must be >= 1, got {max_attempts}"
        )


_EXPERIMENT_COLUMNS = (
    "id, name, meta, plan_hash, priority, state, n_units, "
    "lease_seconds, max_attempts, created_at"
)


def _experiment_row(row) -> ExperimentRow:
    return ExperimentRow(
        id=row[0], name=row[1], meta=json.loads(row[2]), plan_hash=row[3],
        priority=row[4], state=row[5], n_units=row[6],
        lease_seconds=row[7], max_attempts=row[8], created_at=row[9],
    )


class Broker:
    """A multi-experiment work-unit queue + results database.

    Construct via :meth:`create_empty` / :meth:`create` (submitter) or
    :meth:`open` (workers, status, collector).  Usable as a context
    manager; every public method is one short transaction, so a single
    ``Broker`` instance can be shared across a worker's whole run but
    not across threads.
    """

    def __init__(
        self,
        path: Path,
        connection: sqlite3.Connection,
        fault_hook: Optional[Callable[[str], None]] = None,
    ):
        self.path = path
        self._conn = connection
        #: Test/chaos seam: called with the operation name at the top of
        #: every lifecycle method, *before* any transaction opens, so it
        #: can raise ``sqlite3.OperationalError`` to simulate the
        #: transient lock contention :class:`~repro.retry.RetryPolicy`
        #: is expected to absorb.
        self.fault_hook = fault_hook

    def _fault(self, op: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(op)

    # -- construction --------------------------------------------------

    @staticmethod
    def _connect(path: Path) -> sqlite3.Connection:
        conn = sqlite3.connect(str(path), timeout=30.0, isolation_level=None)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA busy_timeout=30000")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    @classmethod
    def create_empty(cls, path, now: Optional[float] = None) -> "Broker":
        """Initialize a new broker file with no experiments yet."""
        path = Path(path)
        if path.exists():
            raise ExperimentError(
                f"broker file {path} already exists; open it to add "
                "experiments, or submit to a fresh path"
            )
        conn = cls._connect(path)
        try:
            conn.execute("BEGIN IMMEDIATE")
            for statement in _SCHEMA.split(";"):
                if statement.strip():
                    conn.execute(statement)
            rows = {
                "format": BROKER_FORMAT,
                "schema_version": SCHEMA_VERSION,
                "created_at": now if now is not None else time.time(),
            }
            conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [(key, _encode_meta(value)) for key, value in rows.items()],
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.close()
            raise
        return cls(path, conn)

    @classmethod
    def create(
        cls,
        path,
        meta: Dict[str, object],
        plan: Sequence[CallPlan],
        units: Sequence[WorkUnit],
        lease_seconds: float = 60.0,
        max_attempts: int = 3,
        now: Optional[float] = None,
        name: Optional[str] = None,
        priority: int = 0,
    ) -> "Broker":
        """Initialize a new broker file holding one ready experiment.

        Convenience over :meth:`create_empty` + the journaled enqueue
        API; the experiment is named after ``meta['experiment']``
        unless ``name`` says otherwise.
        """
        _validate_budgets(lease_seconds, max_attempts)
        broker = cls.create_empty(path, now=now)
        try:
            experiment_id = broker.begin_experiment(
                name if name is not None else str(meta.get("experiment")),
                meta, plan, n_units=len(units), priority=priority,
                lease_seconds=lease_seconds, max_attempts=max_attempts,
                now=now, plan_hash=plan_fingerprint(meta, plan, units),
            )
            broker.enqueue_units(experiment_id, units, start_index=0)
            broker.finish_enqueue(experiment_id)
        except BaseException:
            broker.close()
            raise
        return broker

    @classmethod
    def open(
        cls, path, fault_hook: Optional[Callable[[str], None]] = None
    ) -> "Broker":
        """Open an existing broker, validating format + wire schema.

        A v2 (single-experiment) broker is migrated to the v3 layout in
        place - its one experiment becomes a ``'ready'`` journal row -
        so long-running fleets survive the checkout upgrade.
        """
        path = Path(path)
        if not path.exists():
            raise ExperimentError(f"broker file {path} does not exist")
        try:
            conn = cls._connect(path)
        except sqlite3.DatabaseError as exc:
            raise ExperimentError(
                f"{path} is not a broker database: {exc}"
            ) from None
        try:
            try:
                rows = dict(conn.execute("SELECT key, value FROM meta"))
            except sqlite3.DatabaseError as exc:
                raise ExperimentError(
                    f"{path} is not a broker database: {exc}"
                ) from None
            fmt = json.loads(rows.get("format", "null"))
            if fmt in OUTDATED_FORMATS:
                raise ExperimentError(
                    f"broker {path} was created as {fmt} by an older "
                    f"checkout; this checkout speaks {BROKER_FORMAT} "
                    "(result checksums + lease renewal) - resubmit the "
                    "fleet to a fresh broker file"
                )
            version = json.loads(rows.get("schema_version", "null"))
            if version != SCHEMA_VERSION:
                raise ExperimentError(
                    f"broker {path} speaks wire schema v{version!r} but this "
                    f"checkout speaks v{SCHEMA_VERSION}; run the fleet on "
                    "matching checkouts"
                )
            if fmt in MIGRATABLE_FORMATS:
                cls._migrate_v2(conn)
                fmt = BROKER_FORMAT
            if fmt != BROKER_FORMAT:
                raise ExperimentError(
                    f"{path} is not a {BROKER_FORMAT} database (format={fmt!r})"
                )
        except BaseException:
            conn.close()
            raise
        return cls(path, conn, fault_hook=fault_hook)

    @staticmethod
    def _migrate_v2(conn: sqlite3.Connection) -> None:
        """Upgrade a v2 single-experiment broker to the v3 layout.

        The v2 meta rows (plan, lease/attempt budgets, experiment
        identity) become one ``'ready'`` experiment row; units are
        re-pointed at it.  Runs in one transaction and re-checks the
        format after taking the write lock, so concurrent openers
        migrate exactly once.
        """
        conn.execute("BEGIN IMMEDIATE")
        try:
            rows = dict(conn.execute("SELECT key, value FROM meta"))
            if json.loads(rows.get("format", "null")) == BROKER_FORMAT:
                conn.execute("COMMIT")  # someone else migrated first
                return
            meta = {
                key: json.loads(rows.get(key, "null"))
                for key in EXPERIMENT_META_KEYS
            }
            plan_wire = json.loads(rows["plan"])
            lease_seconds = float(json.loads(rows["lease_seconds"]))
            max_attempts = int(json.loads(rows["max_attempts"]))
            created_at = float(json.loads(rows.get("created_at", "0")))
            unit_rows = conn.execute(
                "SELECT id, call_index, start, stop, seeds FROM units "
                "ORDER BY id"
            ).fetchall()
            units = [
                WorkUnit(r[1], r[2], r[3], seeds=tuple(json.loads(r[4])))
                for r in unit_rows
            ]
            fingerprint = plan_fingerprint(
                meta, call_plans_from_wire(plan_wire), units
            )
            conn.execute(
                "CREATE TABLE experiments ("
                "id INTEGER PRIMARY KEY, name TEXT NOT NULL UNIQUE, "
                "meta TEXT NOT NULL, plan TEXT NOT NULL, "
                "plan_hash TEXT NOT NULL, "
                "priority INTEGER NOT NULL DEFAULT 0, "
                "state TEXT NOT NULL DEFAULT 'enqueueing', "
                "n_units INTEGER NOT NULL, lease_seconds REAL NOT NULL, "
                "max_attempts INTEGER NOT NULL, created_at REAL NOT NULL)"
            )
            conn.execute(
                "INSERT INTO experiments (id, name, meta, plan, plan_hash, "
                "priority, state, n_units, lease_seconds, max_attempts, "
                "created_at) VALUES (1, ?, ?, ?, ?, 0, 'ready', ?, ?, ?, ?)",
                (
                    str(meta.get("experiment")), json.dumps(meta),
                    json.dumps(plan_wire), fingerprint, len(units),
                    lease_seconds, max_attempts, created_at,
                ),
            )
            conn.execute("ALTER TABLE units ADD COLUMN experiment_id INTEGER")
            conn.execute("ALTER TABLE units ADD COLUMN unit_index INTEGER")
            conn.execute("UPDATE units SET experiment_id = 1")
            conn.executemany(
                "UPDATE units SET unit_index = ? WHERE id = ?",
                [(index, row[0]) for index, row in enumerate(unit_rows)],
            )
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'format'",
                (_encode_meta(BROKER_FORMAT),),
            )
            conn.executemany(
                "DELETE FROM meta WHERE key = ?",
                [
                    (key,)
                    for key in (
                        "plan", "lease_seconds", "max_attempts",
                        *EXPERIMENT_META_KEYS,
                    )
                ],
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- experiments (journaled submission) ----------------------------

    def begin_experiment(
        self,
        name: str,
        meta: Dict[str, object],
        plan: Sequence[CallPlan],
        n_units: int,
        priority: int = 0,
        lease_seconds: float = 60.0,
        max_attempts: int = 3,
        now: Optional[float] = None,
        plan_hash: Optional[str] = None,
    ) -> int:
        """Phase one of a submission: write the experiment journal row.

        The row lands in ``'enqueueing'`` state with the plan, the
        submission fingerprint (``plan_hash``, computed by the caller
        over the full unit decomposition via :func:`plan_fingerprint`),
        the planned ``n_units`` (so a resumed submission knows when it
        is done), and the scheduling knobs.  No units exist yet and
        none are claimable until :meth:`finish_enqueue`.  Returns the
        new experiment id; a name collision raises (the caller decides
        whether that means resume or error).
        """
        self._fault("begin_experiment")
        if not name or not isinstance(name, str):
            raise FleetError(f"experiment name must be a non-empty string, got {name!r}")
        if n_units < 1:
            raise ExperimentError(
                "refusing to journal an experiment with no work units"
            )
        _validate_budgets(lease_seconds, max_attempts)
        unknown = sorted(set(meta) - set(EXPERIMENT_META_KEYS))
        if unknown:
            raise ExperimentError(f"unknown broker meta keys: {unknown}")
        full_meta = {key: meta.get(key) for key in EXPERIMENT_META_KEYS}
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            exists = self._conn.execute(
                "SELECT 1 FROM experiments WHERE name = ?", (name,)
            ).fetchone()
            if exists:
                raise FleetError(
                    f"experiment {name!r} already exists in {self.path}"
                )
            cursor = self._conn.execute(
                "INSERT INTO experiments (name, meta, plan, plan_hash, "
                "priority, state, n_units, lease_seconds, max_attempts, "
                "created_at) VALUES (?, ?, ?, ?, ?, 'enqueueing', ?, ?, ?, ?)",
                (
                    name, json.dumps(full_meta),
                    json.dumps(call_plans_to_wire(plan)),
                    plan_hash if plan_hash is not None else "",
                    int(priority), int(n_units), float(lease_seconds),
                    int(max_attempts),
                    now if now is not None else time.time(),
                ),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return cursor.lastrowid

    def enqueue_units(
        self,
        experiment_id: int,
        units: Sequence[WorkUnit],
        start_index: int,
    ) -> None:
        """Phase two of a submission: insert one batch of units.

        ``start_index`` is the position of ``units[0]`` in the full
        decomposition; the ``(experiment_id, unit_index)`` uniqueness
        constraint turns an accidental double-insert (two racing
        resumed submitters) into a loud error instead of duplicate
        work.  Only ``'enqueueing'`` experiments accept units.
        """
        self._fault("enqueue_units")
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT state FROM experiments WHERE id = ?",
                (experiment_id,),
            ).fetchone()
            if row is None:
                raise ExperimentError(
                    f"unknown experiment id {experiment_id}"
                )
            if row[0] != "enqueueing":
                raise FleetError(
                    f"experiment id {experiment_id} is {row[0]!r}; units "
                    "can only be enqueued while the submission journal "
                    "is open"
                )
            self._conn.executemany(
                "INSERT INTO units (experiment_id, unit_index, call_index, "
                "start, stop, seeds) VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (
                        experiment_id, start_index + offset, u.call_index,
                        u.start, u.stop, json.dumps(list(u.seeds)),
                    )
                    for offset, u in enumerate(units)
                ],
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def finish_enqueue(self, experiment_id: int) -> None:
        """Phase three: verify the unit count and open for claiming."""
        self._fault("finish_enqueue")
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT state, n_units FROM experiments WHERE id = ?",
                (experiment_id,),
            ).fetchone()
            if row is None:
                raise ExperimentError(
                    f"unknown experiment id {experiment_id}"
                )
            state, n_units = row
            if state == "ready":
                self._conn.execute("COMMIT")
                return
            (inserted,) = self._conn.execute(
                "SELECT COUNT(*) FROM units WHERE experiment_id = ?",
                (experiment_id,),
            ).fetchone()
            if inserted != n_units:
                raise FleetError(
                    f"cannot finish enqueueing experiment id "
                    f"{experiment_id}: {inserted} of {n_units} planned "
                    "unit(s) inserted"
                )
            self._conn.execute(
                "UPDATE experiments SET state = 'ready' WHERE id = ?",
                (experiment_id,),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def experiments(self) -> List[ExperimentRow]:
        """All experiment rows, highest priority first, then id."""
        rows = self._conn.execute(
            f"SELECT {_EXPERIMENT_COLUMNS} FROM experiments "
            "ORDER BY priority DESC, id"
        ).fetchall()
        return [_experiment_row(r) for r in rows]

    def experiment(self, name: str) -> Optional[ExperimentRow]:
        row = self._conn.execute(
            f"SELECT {_EXPERIMENT_COLUMNS} FROM experiments WHERE name = ?",
            (name,),
        ).fetchone()
        return None if row is None else _experiment_row(row)

    def _sole_experiment(self) -> ExperimentRow:
        rows = self.experiments()
        if not rows:
            raise FleetError(f"broker {self.path} holds no experiments")
        if len(rows) > 1:
            names = ", ".join(sorted(r.name for r in rows))
            raise FleetError(
                f"broker {self.path} holds {len(rows)} experiments "
                f"({names}); pass --experiment to pick one"
            )
        return rows[0]

    def resolve_experiment(self, name: Optional[str]) -> ExperimentRow:
        """``name`` when given (must exist), else the sole experiment."""
        if name is None:
            return self._sole_experiment()
        row = self.experiment(name)
        if row is None:
            known = ", ".join(sorted(r.name for r in self.experiments()))
            raise FleetError(
                f"broker {self.path} has no experiment {name!r}"
                + (f"; known: {known}" if known else " (broker is empty)")
            )
        return row

    def unit_count(self, experiment_id: int) -> int:
        """Units inserted so far for one experiment (resume cursor)."""
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM units WHERE experiment_id = ?",
            (experiment_id,),
        ).fetchone()
        return count

    def enqueued_units(self, experiment_id: int) -> List[WorkUnit]:
        """The experiment's inserted units in ``unit_index`` order
        (a resumed submission verifies its prefix against these)."""
        rows = self._conn.execute(
            "SELECT call_index, start, stop, seeds FROM units "
            "WHERE experiment_id = ? ORDER BY unit_index",
            (experiment_id,),
        ).fetchall()
        return [
            WorkUnit(r[0], r[1], r[2], seeds=tuple(json.loads(r[3])))
            for r in rows
        ]

    # -- metadata ------------------------------------------------------

    def meta(self) -> Dict[str, object]:
        """The broker-global meta rows, JSON-decoded."""
        return {
            key: json.loads(value)
            for key, value in self._conn.execute("SELECT key, value FROM meta")
        }

    def experiment_meta(
        self, experiment: Optional[str] = None
    ) -> Dict[str, object]:
        """One experiment's identity meta (sole experiment by default)."""
        return dict(self.resolve_experiment(experiment).meta)

    def plan(self, experiment: Optional[str] = None) -> List[CallPlan]:
        row = self.resolve_experiment(experiment)
        (wire,) = self._conn.execute(
            "SELECT plan FROM experiments WHERE id = ?", (row.id,)
        ).fetchone()
        return call_plans_from_wire(json.loads(wire))

    @property
    def lease_seconds(self) -> float:
        return float(self._sole_experiment().lease_seconds)

    @property
    def max_attempts(self) -> int:
        return int(self._sole_experiment().max_attempts)

    # -- lifecycle -----------------------------------------------------

    def _reap_unit(
        self, unit_id: int, attempts: int, worker, max_attempts: int
    ) -> str:
        """Within an open transaction: recycle one expired lease.

        Lease bookkeeping (``worker``/``lease_expires``) is cleared on
        both paths so a stale holder can never leak into the next
        attempt; an exhausted unit keeps the expiry diagnosis in
        ``error``.  Returns the unit's new status.
        """
        if attempts >= max_attempts:
            self._conn.execute(
                "UPDATE units SET status = 'failed', worker = NULL, "
                "lease_expires = NULL, error = ? WHERE id = ?",
                (
                    f"lease expired after {attempts} attempt(s); "
                    f"last worker: {worker}",
                    unit_id,
                ),
            )
            return "failed"
        self._conn.execute(
            "UPDATE units SET status = 'pending', worker = NULL, "
            "lease_expires = NULL WHERE id = ?",
            (unit_id,),
        )
        return "pending"

    def _reap_expired(self, now: float) -> int:
        """Within an open transaction: recycle expired leases.

        Expired units with attempts left go back to ``pending``; the
        rest move to ``failed`` with the expiry recorded.  Attempt
        budgets are per experiment.
        """
        expired = self._conn.execute(
            "SELECT u.id, u.attempts, u.worker, e.max_attempts "
            "FROM units u JOIN experiments e ON e.id = u.experiment_id "
            "WHERE u.status = 'leased' AND u.lease_expires < ?",
            (now,),
        ).fetchall()
        for unit_id, attempts, worker, max_attempts in expired:
            self._reap_unit(unit_id, attempts, worker, max_attempts)
        return len(expired)

    def _unit_lease_row(self, unit_id: int):
        """One unit's lease state joined with its experiment's budgets."""
        row = self._conn.execute(
            "SELECT u.status, u.worker, u.lease_expires, u.attempts, "
            "e.lease_seconds, e.max_attempts "
            "FROM units u JOIN experiments e ON e.id = u.experiment_id "
            "WHERE u.id = ?",
            (unit_id,),
        ).fetchone()
        if row is None:
            raise ExperimentError(f"unknown unit id {unit_id}")
        return row

    def claim(
        self,
        worker: str,
        now: Optional[float] = None,
        experiment: Optional[str] = None,
    ) -> Optional[LeasedUnit]:
        """Atomically lease the next claimable unit (reaping expired
        leases first).

        Eligible units come from ``'ready'`` experiments only, ordered
        by experiment priority (descending) then unit id (FIFO), so
        higher-priority experiments drain first and ties interleave in
        submission order.  ``experiment`` restricts the claim to one
        experiment by name.  Returns ``None`` when nothing is
        claimable.
        """
        self._fault("claim")
        now = now if now is not None else time.time()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._reap_expired(now)
            query = (
                "SELECT u.id, u.call_index, u.start, u.stop, u.seeds, "
                "u.attempts, e.id, e.name, e.lease_seconds "
                "FROM units u JOIN experiments e ON e.id = u.experiment_id "
                "WHERE u.status = 'pending' AND e.state = 'ready' "
            )
            params: Tuple = ()
            if experiment is not None:
                query += "AND e.name = ? "
                params = (experiment,)
            row = self._conn.execute(
                query + "ORDER BY e.priority DESC, u.id LIMIT 1", params
            ).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return None
            (
                unit_id, call_index, start, stop, seeds, attempts,
                experiment_id, experiment_name, lease_seconds,
            ) = row
            expires = now + lease_seconds
            self._conn.execute(
                "UPDATE units SET status = 'leased', attempts = ?, "
                "worker = ?, lease_expires = ?, error = NULL WHERE id = ?",
                (attempts + 1, worker, expires, unit_id),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        unit = WorkUnit(call_index, start, stop, seeds=tuple(json.loads(seeds)))
        return LeasedUnit(
            unit_id=unit_id, unit=unit, attempt=attempts + 1,
            lease_expires=expires, experiment_id=experiment_id,
            experiment=experiment_name, lease_seconds=lease_seconds,
        )

    def complete(
        self,
        unit_id: int,
        worker: str,
        payload: Optional[Dict] = None,
        now: Optional[float] = None,
        wire: Optional[str] = None,
        checksum: Optional[str] = None,
    ) -> bool:
        """Mark a leased unit done and store its result payload.

        The payload may arrive as an object (``payload``, encoded and
        checksummed here) or pre-encoded (``wire`` + ``checksum``, the
        fleet worker's path: the checksum is computed over the payload
        *before* it crosses any wire, so corruption in transit is
        detectable by :meth:`verify_results`).

        Returns ``False`` (and stores nothing) when the worker no
        longer holds the unit's lease - it stalled past expiry (the
        late completion is discarded and the lease reaped, whether or
        not anyone re-claimed it yet) or the unit was re-leased - so
        exactly one result row ever exists per unit.
        """
        self._fault("complete")
        if wire is None:
            if payload is None:
                raise FleetError(
                    "complete() needs either a payload object or a "
                    "pre-encoded wire + checksum"
                )
            wire, checksum = encode_unit_payload(payload)
        elif checksum is None:
            raise FleetError("pre-encoded completions must carry a checksum")
        now = now if now is not None else time.time()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            status, holder, lease_expires, attempts, _, max_attempts = (
                self._unit_lease_row(unit_id)
            )
            if status != "leased" or holder != worker:
                self._conn.execute("COMMIT")
                return False
            if lease_expires is not None and lease_expires < now:
                # Late completion: the lease already ran out, so the
                # unit may be (or be about to be) someone else's.
                self._reap_unit(unit_id, attempts, holder, max_attempts)
                self._conn.execute("COMMIT")
                return False
            self._conn.execute(
                "UPDATE units SET status = 'done', lease_expires = NULL "
                "WHERE id = ?",
                (unit_id,),
            )
            self._conn.execute(
                "INSERT INTO results "
                "(unit_id, payload, checksum, worker, completed_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (unit_id, wire, checksum, worker, now),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return True

    def renew(
        self, unit_id: int, worker: str, now: Optional[float] = None
    ) -> Optional[float]:
        """Extend a held lease (the worker heartbeat).

        Returns the new expiry when the worker still holds a live
        lease.  A renewal after expiry is discarded exactly like a late
        completion - the unit is reaped (re-queued or failed) and
        ``None`` comes back, telling the worker its result will be
        stale.  ``None`` also means the unit moved on (completed,
        re-leased, failed).
        """
        self._fault("renew")
        now = now if now is not None else time.time()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            status, holder, lease_expires, attempts, lease_seconds, max_attempts = (
                self._unit_lease_row(unit_id)
            )
            if status != "leased" or holder != worker:
                self._conn.execute("COMMIT")
                return None
            if lease_expires is not None and lease_expires < now:
                self._reap_unit(unit_id, attempts, holder, max_attempts)
                self._conn.execute("COMMIT")
                return None
            expires = now + lease_seconds
            self._conn.execute(
                "UPDATE units SET lease_expires = ? WHERE id = ?",
                (expires, unit_id),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return expires

    def fail(
        self,
        unit_id: int,
        worker: str,
        error: str,
        now: Optional[float] = None,
    ) -> Optional[str]:
        """Record a failed execution attempt for a leased unit.

        Returns the unit's new status (``'pending'`` while retries
        remain, ``'failed'`` once attempts are exhausted), or ``None``
        when the worker no longer held the lease (including a lease
        that expired un-reaped - the late failure report is discarded
        like a late completion).
        """
        self._fault("fail")
        now = now if now is not None else time.time()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            status, holder, lease_expires, attempts, _, max_attempts = (
                self._unit_lease_row(unit_id)
            )
            if status != "leased" or holder != worker:
                self._conn.execute("COMMIT")
                return None
            if lease_expires is not None and lease_expires < now:
                self._reap_unit(unit_id, attempts, holder, max_attempts)
                self._conn.execute("COMMIT")
                return None
            new_status = "failed" if attempts >= max_attempts else "pending"
            self._conn.execute(
                "UPDATE units SET status = ?, worker = NULL, "
                "lease_expires = NULL, error = ? WHERE id = ?",
                (new_status, error, unit_id),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return new_status

    def _experiment_filter(
        self, experiment: Optional[str], column: str = "u.experiment_id"
    ) -> Tuple[str, Tuple]:
        """(SQL clause, params) restricting a unit query by experiment."""
        if experiment is None:
            return "", ()
        row = self.resolve_experiment(experiment)
        return f"AND {column} = ? ", (row.id,)

    def retry_failed(self, experiment: Optional[str] = None) -> int:
        """Re-queue permanently-failed units after a fix.

        Failed units go back to ``pending`` with their attempt budget
        and error reset, so the ordinary lease lifecycle (and its
        bounded retries) applies afresh.  Returns how many units were
        re-queued.  Completed work is untouched - a failed unit never
        has a results row.
        """
        clause, params = self._experiment_filter(
            experiment, column="experiment_id"
        )
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            failed = [
                unit_id
                for (unit_id,) in self._conn.execute(
                    "SELECT id FROM units WHERE status = 'failed' "
                    + clause + "ORDER BY id",
                    params,
                )
            ]
            self._conn.executemany(
                "UPDATE units SET status = 'pending', attempts = 0, "
                "worker = NULL, lease_expires = NULL, error = NULL "
                "WHERE id = ?",
                [(unit_id,) for unit_id in failed],
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return len(failed)

    def verify_results(self) -> List[int]:
        """Checksum-audit stored payloads; re-queue corrupted units.

        Recomputes each result row's checksum over the stored payload
        text.  A mismatch means the payload was damaged between the
        worker's serialization and here (wire corruption, torn write,
        bit rot); the result row is deleted and the unit re-queued as
        ``pending`` - its attempt budget intact, since the *work*
        didn't fail - so the fleet simply re-runs it.  Returns the
        re-queued unit ids.  ``fleet collect`` runs this before
        folding anything.
        """
        self._fault("verify_results")
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            corrupt = [
                unit_id
                for unit_id, payload, checksum in self._conn.execute(
                    "SELECT unit_id, payload, checksum FROM results "
                    "ORDER BY unit_id"
                )
                if payload_checksum(payload) != checksum
            ]
            for unit_id in corrupt:
                self._conn.execute(
                    "DELETE FROM results WHERE unit_id = ?", (unit_id,)
                )
                self._conn.execute(
                    "UPDATE units SET status = 'pending', worker = NULL, "
                    "lease_expires = NULL, error = NULL WHERE id = ?",
                    (unit_id,),
                )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return corrupt

    # -- introspection -------------------------------------------------

    def counts(self, experiment: Optional[str] = None) -> FleetCounts:
        self._fault("counts")
        clause, params = self._experiment_filter(
            experiment, column="experiment_id"
        )
        rows = dict(
            self._conn.execute(
                "SELECT status, COUNT(*) FROM units WHERE 1=1 "
                + clause + "GROUP BY status",
                params,
            )
        )
        return FleetCounts(**{status: rows.get(status, 0) for status in STATUSES})

    def counts_by_experiment(self) -> Dict[str, FleetCounts]:
        """Per-experiment lifecycle counts, priority order."""
        tallies = {
            (eid, status): count
            for eid, status, count in self._conn.execute(
                "SELECT experiment_id, status, COUNT(*) FROM units "
                "GROUP BY experiment_id, status"
            )
        }
        return {
            row.name: FleetCounts(**{
                status: tallies.get((row.id, status), 0)
                for status in STATUSES
            })
            for row in self.experiments()
        }

    def next_lease_expiry(self) -> Optional[float]:
        """Earliest outstanding lease expiry (workers sleep until it)."""
        self._fault("next_lease_expiry")
        row = self._conn.execute(
            "SELECT MIN(lease_expires) FROM units WHERE status = 'leased'"
        ).fetchone()
        return row[0]

    def unit_rows(
        self, experiment: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Every unit's full row (``fleet status`` detail view)."""
        clause, params = self._experiment_filter(experiment)
        rows = self._conn.execute(
            "SELECT u.id, u.call_index, u.start, u.stop, u.seeds, u.status, "
            "u.attempts, u.worker, u.lease_expires, u.error, e.name "
            "FROM units u JOIN experiments e ON e.id = u.experiment_id "
            "WHERE 1=1 " + clause + "ORDER BY u.id",
            params,
        ).fetchall()
        return [
            {
                "id": r[0], "call_index": r[1], "start": r[2], "stop": r[3],
                "seeds": json.loads(r[4]), "status": r[5], "attempts": r[6],
                "worker": r[7], "lease_expires": r[8], "error": r[9],
                "experiment": r[10],
            }
            for r in rows
        ]

    def errors(
        self, experiment: Optional[str] = None
    ) -> List[Tuple[int, str]]:
        """(unit id, error) for units that failed permanently."""
        clause, params = self._experiment_filter(
            experiment, column="experiment_id"
        )
        return [
            (unit_id, error)
            for unit_id, error in self._conn.execute(
                "SELECT id, error FROM units WHERE status = 'failed' "
                + clause + "ORDER BY id",
                params,
            )
        ]

    def completion_times(
        self, experiment: Optional[str] = None
    ) -> List[float]:
        """Ascending wall-clock completion times of done units."""
        clause, params = self._experiment_filter(experiment)
        return [
            t
            for (t,) in self._conn.execute(
                "SELECT r.completed_at FROM results r "
                "JOIN units u ON u.id = r.unit_id WHERE 1=1 "
                + clause + "ORDER BY r.completed_at",
                params,
            )
        ]

    def results(
        self, experiment: Optional[str] = None
    ) -> List[Tuple[WorkUnit, List]]:
        """Completed units with their recorded wire entries, unit order.

        Every payload is checksum-verified on the way out (defense in
        depth behind :meth:`verify_results`, which re-queues instead of
        raising); a mismatch here means the database changed under us.
        """
        clause, params = self._experiment_filter(experiment)
        rows = self._conn.execute(
            "SELECT u.call_index, u.start, u.stop, u.seeds, r.payload, "
            "r.checksum "
            "FROM results r JOIN units u ON u.id = r.unit_id WHERE 1=1 "
            + clause + "ORDER BY r.unit_id",
            params,
        ).fetchall()
        out = []
        for call_index, start, stop, seeds, payload, checksum in rows:
            if payload_checksum(payload) != checksum:
                raise FleetError(
                    f"result payload for unit covering call {call_index} "
                    f"traces [{start}, {stop}) fails its checksum; run "
                    "verify_results()/'fleet collect' to re-queue it"
                )
            unit = WorkUnit(
                call_index, start, stop, seeds=tuple(json.loads(seeds))
            )
            entries = unit_payload_entries(json.loads(payload))
            out.append((unit, entries))
        return out
