"""Plain-text rendering and JSON persistence of experiment results.

The benchmark harness prints these tables so ``pytest benchmarks/``
output can be compared against the paper's figures row by row; the
JSON helpers let the CLI's shard-merge path write a full
:class:`ExperimentResult` to disk for downstream tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ExperimentError
from .spec import ExperimentResult

RESULT_FORMAT = "flock-result-v1"


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in cells
    )
    return f"{header}\n{rule}\n{body}"


def render_result(result: ExperimentResult, columns: Optional[Sequence[str]] = None) -> str:
    """Render a full experiment result with its provenance header."""
    parts = [
        f"== {result.experiment}: {result.description} ==",
    ]
    if result.notes:
        parts.append(f"paper: {result.notes}")
    parts.append(format_table(result.rows, columns))
    return "\n".join(parts)


def print_result(result: ExperimentResult, columns: Optional[Sequence[str]] = None) -> None:
    print()
    print(render_result(result, columns))


def result_to_dict(result: ExperimentResult) -> Dict:
    """Serialize an experiment result (rows are already plain dicts)."""
    return {
        "format": RESULT_FORMAT,
        "experiment": result.experiment,
        "description": result.description,
        "notes": result.notes,
        "rows": [dict(row) for row in result.rows],
    }


def result_from_dict(payload: Dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict`.

    Malformed documents (truncated writes, hand edits) raise
    :class:`~repro.errors.ExperimentError`, matching the wire-codec
    contract, so CLI consumers report a clean error, not a traceback.
    """
    if not isinstance(payload, dict):
        raise ExperimentError(
            f"result payload must be an object, got {type(payload).__name__}"
        )
    if payload.get("format") != RESULT_FORMAT:
        raise ExperimentError(
            f"not a {RESULT_FORMAT} document: format={payload.get('format')!r}"
        )
    if "experiment" not in payload:
        raise ExperimentError(
            f"{RESULT_FORMAT} document is missing its 'experiment' key"
        )
    rows = payload.get("rows", [])
    if not isinstance(rows, list) or not all(
        isinstance(row, dict) for row in rows
    ):
        raise ExperimentError(
            f"{RESULT_FORMAT} rows must be a list of objects"
        )
    return ExperimentResult(
        experiment=payload["experiment"],
        description=payload.get("description", ""),
        rows=[dict(row) for row in rows],
        notes=payload.get("notes", ""),
    )


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write an experiment result to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(result_to_dict(result), handle)
    return path


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read an experiment result from a JSON file."""
    with Path(path).open() as handle:
        return result_from_dict(json.load(handle))
