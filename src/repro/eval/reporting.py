"""Plain-text rendering of experiment results.

The benchmark harness prints these tables so ``pytest benchmarks/``
output can be compared against the paper's figures row by row.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .experiments import ExperimentResult


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in cells
    )
    return f"{header}\n{rule}\n{body}"


def render_result(result: ExperimentResult, columns: Optional[Sequence[str]] = None) -> str:
    """Render a full experiment result with its provenance header."""
    parts = [
        f"== {result.experiment}: {result.description} ==",
    ]
    if result.notes:
        parts.append(f"paper: {result.notes}")
    parts.append(format_table(result.rows, columns))
    return "\n".join(parts)


def print_result(result: ExperimentResult, columns: Optional[Sequence[str]] = None) -> None:
    print()
    print(render_result(result, columns))
