"""Scheme registry: named factories for every localization scheme.

The paper's evaluation grid pairs each *scheme* (Flock, its ablation
arms, Sherlock, NetBouncer, 007) with a telemetry input spec ("Flock
(A1+A2+P)", "NetBouncer (INT)", ...).  This module is the single place
where schemes are constructed: every experiment spec, benchmark, and
CLI invocation resolves a scheme by registry name instead of importing
its class (the ``flock_fast`` vector engines used to be lazily imported
at four separate call sites for exactly this job).

A :class:`SchemeDef` couples a registry name with a keyword-argument
factory, the factory's calibrated defaults, and the scheme's default
telemetry spec.  :func:`build_localizer` constructs the bare localizer;
:func:`make_setup` wraps it into the harness's
:class:`~repro.eval.harness.SchemeSetup` with its telemetry config.

Registered names (see :func:`scheme_names`):

``flock``
    Greedy + JLE maximum-likelihood inference (the paper's scheme).
``flock-greedy``
    Greedy search without JLE - the "greedy only" ablation arm of
    Fig. 4c, priced on the shared vector substrate.
``sherlock``
    Plain Ferret: exhaustively price every <=K-failure hypothesis.
``sherlock-jle``
    Ferret accelerated by the JLE Δ-array (Algorithm 3) - the
    "JLE only" ablation arm of Fig. 4c.
``netbouncer``
    NetBouncer's regularized least-squares link estimator.
``007``
    007's path-voting heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from ..baselines.b007 import Vote007
from ..baselines.netbouncer import NetBouncer
from ..baselines.sherlock import SherlockFerret
from ..core.flock import FlockInference
from ..core.flock_fast import VectorGreedyWithoutJle
from ..core.greedy_nojle import GreedyWithoutJle
from ..core.params import DEFAULT_PER_PACKET, FlockParams
from ..errors import ExperimentError
from ..telemetry.inputs import TelemetryConfig
from .harness import SchemeSetup

#: Default calibrated baseline settings (chosen by the section 5.2 rule on
#: this repo's standard training environment; see bench_table1_robustness).
DEFAULT_NETBOUNCER = dict(regularization=0.005, drop_threshold=3e-3, device_frac=0.5)
DEFAULT_007 = dict(threshold=0.6)


@dataclass(frozen=True)
class SchemeDef:
    """One registered scheme: a named factory plus its defaults.

    ``factory(**params)`` must return a localizer (an object with a
    ``localize(problem) -> Prediction`` method).  ``defaults`` are the
    calibrated settings merged *under* caller overrides; ``default_spec``
    is the telemetry the scheme consumes when none is given (the input
    the paper pairs it with by default).
    """

    name: str
    display: str
    factory: Callable[..., object]
    default_spec: str
    description: str = ""
    defaults: Mapping[str, object] = field(default_factory=dict)


_REGISTRY: Dict[str, SchemeDef] = {}


def register_scheme(
    name: str,
    display: str,
    factory: Callable[..., object],
    default_spec: str,
    description: str = "",
    defaults: Optional[Mapping[str, object]] = None,
) -> SchemeDef:
    """Register a scheme under ``name``; replaces any existing entry."""
    entry = SchemeDef(
        name=name,
        display=display,
        factory=factory,
        default_spec=default_spec,
        description=description,
        defaults=dict(defaults or {}),
    )
    _REGISTRY[name] = entry
    return entry


def get_scheme(name: str) -> SchemeDef:
    """Look up a registered scheme or fail with the available names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scheme {name!r}; registered schemes: "
            f"{', '.join(scheme_names())}"
        ) from None


def scheme_names() -> List[str]:
    return sorted(_REGISTRY)


def build_localizer(name: str, **overrides) -> object:
    """Construct a registered scheme's localizer from its factory.

    ``overrides`` update the scheme's calibrated defaults; unknown
    keyword names surface as :class:`ExperimentError` so a CLI typo in
    ``--set`` fails loudly instead of being swallowed.
    """
    entry = get_scheme(name)
    args = dict(entry.defaults)
    args.update(overrides)
    try:
        return entry.factory(**args)
    except TypeError as exc:
        raise ExperimentError(
            f"cannot construct scheme {name!r} with parameters {args}: {exc}"
        ) from None


def make_setup(
    name: str,
    spec: Optional[str] = None,
    overrides: Optional[Mapping[str, object]] = None,
    telemetry: Optional[Mapping[str, object]] = None,
    label: Optional[str] = None,
) -> SchemeSetup:
    """Build a harness :class:`SchemeSetup` for a registered scheme.

    ``spec`` overrides the scheme's default telemetry spec;
    ``telemetry`` passes extra :class:`TelemetryConfig` kwargs (e.g.
    ``passive_sampling``); ``label`` overrides the setup's display name
    (the harness labels it ``"{label} ({spec})"``).
    """
    entry = get_scheme(name)
    return SchemeSetup(
        name=label if label is not None else entry.display,
        localizer=build_localizer(name, **(overrides or {})),
        telemetry=TelemetryConfig.from_spec(
            spec if spec is not None else entry.default_spec,
            **(telemetry or {}),
        ),
    )


# ----------------------------------------------------------------------
# Built-in schemes
# ----------------------------------------------------------------------


class GreedyOnlyLocalizer:
    """Flock's greedy search without JLE (the Fig. 4c ablation arm).

    ``engine="fast"`` prices candidates on the shared vector substrate
    (:class:`~repro.core.flock_fast.VectorGreedyWithoutJle`);
    ``engine="reference"`` uses the pure-Python transcription.
    """

    name = "flock-greedy-only"

    def __init__(
        self,
        params: FlockParams = DEFAULT_PER_PACKET,
        engine: str = "fast",
        max_failures: Optional[int] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        if engine not in ("fast", "reference"):
            raise ExperimentError(f"unknown engine {engine!r}")
        self._params = params
        self._engine = engine
        self._max_failures = max_failures
        self._kernel_backend = kernel_backend

    def localize(self, problem):
        if self._engine == "fast":
            return VectorGreedyWithoutJle(
                problem, self._params, self._max_failures,
                kernel_backend=self._kernel_backend,
            ).run()
        return GreedyWithoutJle(self._params, self._max_failures).localize(problem)


def _flock_params(pg: float, pb: float, rho: float) -> FlockParams:
    return FlockParams(pg=pg, pb=pb, rho=rho)


def _flock(pg, pb, rho, engine="fast", max_failures=None, kernel_backend=None):
    return FlockInference(
        _flock_params(pg, pb, rho), engine=engine, max_failures=max_failures,
        kernel_backend=kernel_backend,
    )


def _flock_greedy(pg, pb, rho, engine="fast", max_failures=None,
                  kernel_backend=None):
    return GreedyOnlyLocalizer(
        _flock_params(pg, pb, rho), engine=engine, max_failures=max_failures,
        kernel_backend=kernel_backend,
    )


def _sherlock(pg, pb, rho, max_failures=2, use_jle=False, engine="fast",
              kernel_backend=None):
    return SherlockFerret(
        _flock_params(pg, pb, rho),
        max_failures=max_failures,
        use_jle=use_jle,
        engine=engine,
        kernel_backend=kernel_backend,
    )


_FLOCK_DEFAULTS = dict(
    pg=DEFAULT_PER_PACKET.pg, pb=DEFAULT_PER_PACKET.pb, rho=DEFAULT_PER_PACKET.rho
)

register_scheme(
    "flock", "Flock", _flock, "A1+A2+P",
    description="greedy + JLE maximum-likelihood inference (the paper's scheme)",
    defaults=_FLOCK_DEFAULTS,
)
register_scheme(
    "flock-greedy", "Flock greedy-only", _flock_greedy, "A1+A2+P",
    description="greedy search without JLE (Fig. 4c ablation arm)",
    defaults=_FLOCK_DEFAULTS,
)
register_scheme(
    "sherlock", "Sherlock", _sherlock, "A1+A2+P",
    description="plain Ferret: exhaustively price every <=K-failure hypothesis",
    defaults=dict(_FLOCK_DEFAULTS, max_failures=2, use_jle=False),
)
register_scheme(
    "sherlock-jle", "Sherlock+JLE", _sherlock, "A1+A2+P",
    description="Ferret with the JLE delta-array recursion (Algorithm 3)",
    defaults=dict(_FLOCK_DEFAULTS, max_failures=2, use_jle=True),
)
register_scheme(
    "netbouncer", "NetBouncer", NetBouncer, "INT",
    description="regularized least-squares link estimator",
    defaults=DEFAULT_NETBOUNCER,
)
register_scheme(
    "007", "007", Vote007, "A2",
    description="path-voting heuristic over flagged flows",
    defaults=DEFAULT_007,
)
