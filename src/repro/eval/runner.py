"""Parallel experiment execution: executors, problem cache, streaming.

The harness used to run every (scheme, trace) pair strictly serially
and rebuild the telemetry observations for each scheme even when two
schemes consume the same input (the Fig. 2 grid evaluates eight schemes
over five distinct telemetry specs, so three of every eight problem
builds were redundant).  This module factors experiment execution into
three pluggable pieces:

* **Work units** - one unit per *trace*, covering every scheme on that
  trace (:func:`_run_trace_unit`).  Grouping by trace keeps the problem
  cache effective under every executor: all schemes that share a
  telemetry spec hit the same cached problem no matter how traces are
  distributed over workers.
* **Executors** - ``"serial"`` (plain loop), ``"thread"``
  (:class:`~concurrent.futures.ThreadPoolExecutor`), and ``"process"``
  (:class:`~concurrent.futures.ProcessPoolExecutor`), selected by
  :class:`RunnerConfig`.  A failure in any unit propagates out of
  :func:`run_grid` as the original exception; remaining units are
  cancelled rather than left to hang.
* **Streaming aggregation** - completed units feed per-scheme
  :class:`_SummaryAccumulator` objects as they arrive, so metric sums
  are folded in completion order while per-trace results stay in trace
  order.  Serial and parallel paths therefore produce bit-identical
  :class:`~repro.eval.harness.EvalSummary` metrics for fixed seeds.

Determinism: every work unit derives its randomness from the trace's
own seed (see :func:`~repro.eval.harness.build_problem`), so results do
not depend on the executor, the number of jobs, or completion order.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, replace as dataclass_replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError

EXECUTORS = ("serial", "thread", "process")


# ----------------------------------------------------------------------
# Process-executor world shipping
# ----------------------------------------------------------------------
#
# A columnar trace's batch carries the routing-global PathSpace, whose
# interned state grows with the whole experiment - pickling it with
# every task made per-task IPC volume proportional to total interned
# state.  Instead, each worker receives the shared (topology, routing)
# "worlds" once through the pool initializer (the routing object owns
# the PathSpace), and tasks ship *detached* trace clones that reference
# a world by index.

_WORKER_WORLDS: Optional[List[Tuple[object, object]]] = None


def _init_worker_worlds(worlds: List[Tuple[object, object]]) -> None:
    global _WORKER_WORLDS
    _WORKER_WORLDS = worlds


def detach_traces(traces: Sequence) -> Tuple[List[Tuple[object, object]], List]:
    """(worlds, per-trace payloads) for process-pool submission.

    A trace whose batch shares its routing's PathSpace is cloned with
    the topology/routing/space stripped and a world index attached; any
    other trace (records-only, or a hand-built batch over a private
    space) ships unchanged.  Materialized record caches are dropped
    from clones - workers re-derive them from the batch if needed.
    """
    worlds: List[Tuple[object, object]] = []
    world_ids: Dict[int, int] = {}
    payloads: List = []
    for trace in traces:
        batch = getattr(trace, "batch", None)
        routing = getattr(trace, "routing", None)
        space = getattr(routing, "_path_space", None)
        if batch is None or space is None or batch.space is not space:
            payloads.append(trace)
            continue
        key = id(routing)
        idx = world_ids.get(key)
        if idx is None:
            idx = len(worlds)
            world_ids[key] = idx
            worlds.append((trace.topology, routing))
        clone = copy.copy(trace)
        clone.topology = None
        clone.routing = None
        clone.batch = dataclass_replace(batch, space=None)
        clone._records = None
        clone._detached_world = idx
        payloads.append(clone)
    return worlds, payloads


def attach_trace(trace, worlds: Optional[List[Tuple[object, object]]] = None):
    """Re-attach a detached trace to its worker-resident world.

    No-op for traces that were never detached.  ``worlds`` defaults to
    the pool-initializer state.
    """
    idx = getattr(trace, "_detached_world", None)
    if idx is None:
        return trace
    if worlds is None:
        worlds = _WORKER_WORLDS
    if worlds is None:
        raise ExperimentError(
            "detached trace received outside an initialized worker"
        )
    topology, routing = worlds[idx]
    trace.topology = topology
    trace.routing = routing
    trace.batch = dataclass_replace(trace.batch, space=routing.path_space())
    trace._detached_world = None
    return trace


class GridHook:
    """The unit-boundary protocol behind ``RunnerConfig.shard``.

    A grid hook decides which trace indices of each :func:`run_grid`
    call actually execute, and carries results across the process (or
    machine) boundary in wire form.  Two sides share the protocol:

    * **Record side** (``is_replay = False``): :meth:`plan_call` peeks
      the index range the *next* grid call would execute without
      opening it - :func:`~repro.eval.spec.run_spec` consults it before
      generating a point's traces, so a worker whose hook covers none
      of a call's traces skips that point's trace generation entirely.
      :meth:`select_call` then opens the call record and returns the
      indices to execute; :meth:`record` captures each executed trace
      unit's per-setup results in wire form.
    * **Replay side** (``is_replay = True``): :meth:`replay_call`
      returns previously recorded ``(trace_idx, [TraceResult])`` units
      for the next call; nothing executes.

    Concrete hooks live in :mod:`repro.eval.units` (the generic
    work-unit recorders and replayer) and :mod:`repro.eval.shard` (the
    static-shard adapters built on them).
    """

    is_replay = False

    def plan_call(self, labels: Sequence[str], n_traces: int) -> range:
        raise NotImplementedError

    def select_call(self, labels: Sequence[str], n_traces: int) -> range:
        raise NotImplementedError

    def record(self, trace_idx: int, results: Sequence) -> None:
        raise NotImplementedError

    def replay_call(self, labels: Sequence[str], n_traces: int):
        raise NotImplementedError


@dataclass(frozen=True)
class RunnerConfig:
    """How to execute an evaluation grid.

    ``executor`` is one of :data:`EXECUTORS`; ``jobs`` is the worker
    count (ignored by the serial executor).  ``cache`` disables the
    per-trace problem cache, which only exists so benchmarks can
    measure the legacy rebuild-per-scheme behaviour.

    ``shard`` selects distributed execution via a :class:`GridHook`: a
    record-side hook (:class:`~repro.eval.shard.ShardRecorder`, or the
    fleet's :class:`~repro.eval.units.SingleUnitRecorder`) restricts
    :func:`run_grid` to its trace-index range and captures each
    executed unit's results in wire form, while the replay-side
    :class:`~repro.eval.units.UnitReplayer` skips execution entirely
    and folds previously recorded results through the same streaming
    accumulators.  ``None`` (the default) runs everything locally.
    """

    executor: str = "serial"
    jobs: int = 1
    cache: bool = True
    shard: Optional[object] = None

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ExperimentError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {self.jobs}")

    @staticmethod
    def resolve(
        runner: Optional["RunnerConfig"] = None,
        jobs: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> "RunnerConfig":
        """Normalize the (runner | jobs/executor) calling conventions.

        ``jobs=N`` alone picks the process executor for N > 1, matching
        the CLI's ``--jobs`` flag; an explicit ``runner`` wins.
        """
        if runner is not None:
            return runner
        if jobs is None and executor is None:
            return RunnerConfig()
        n = jobs if jobs is not None else (os.cpu_count() or 1)
        if executor is None:
            executor = "serial" if n == 1 else "process"
        return RunnerConfig(executor=executor, jobs=n)


@dataclass
class RunnerStats:
    """Observability counters filled in by :func:`run_grid`."""

    traces_run: int = 0
    problems_built: int = 0
    cache_hits: int = 0

    def merge(self, built: int, hits: int) -> None:
        self.traces_run += 1
        self.problems_built += built
        self.cache_hits += hits


class ProblemCache:
    """Memoizes built inference problems within one trace's work unit.

    Keyed by the *effective* telemetry config (after the per-flow
    analysis override), so e.g. ``Flock (A2)`` and ``007 (A2)`` share
    one build.  Distinct specs still share work: columnar traces carry
    a shared :class:`~repro.routing.paths.PathSpace` whose memoized
    component projections serve every build of the trace (and every
    trace of the batch); records-only traces get one
    :class:`~repro.telemetry.inputs.PathMemo` per cache for the same
    purpose.  Records the original build time with each entry so cache
    hits still report the cost of constructing their problem.
    """

    def __init__(self) -> None:
        self._entries: Dict[object, Tuple[object, float]] = {}
        self._memo = None
        self.hits = 0

    def get(self, trace, telemetry):
        """Return (problem, build_seconds) for a trace + telemetry spec."""
        from ..telemetry.inputs import PathMemo
        from .harness import effective_telemetry, timed_build

        key = effective_telemetry(trace, telemetry)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        if self._memo is None:
            self._memo = PathMemo(trace.topology, trace.routing)
        entry = timed_build(trace, telemetry, self._memo)
        self._entries[key] = entry
        return entry

    @property
    def builds(self) -> int:
        return len(self._entries)


def _run_trace_unit(setups, trace, use_cache: bool, keep_problems: bool = True):
    """Run every scheme on one trace; the unit of parallel work.

    Returns (per-setup TraceResults, problems built, cache hits).
    ``keep_problems=False`` drops each result's ``problem`` before it
    crosses a process boundary: the parent only needs predictions and
    metrics, and pickling every problem's arrays back over IPC can
    rival the inference work itself.
    """
    from .harness import score_problem, timed_build

    trace = attach_trace(trace)
    cache = ProblemCache()
    results = []
    for setup in setups:
        if use_cache:
            problem, build_seconds = cache.get(trace, setup.telemetry)
        else:
            problem, build_seconds = timed_build(trace, setup.telemetry)
        result = score_problem(setup, trace, problem, build_seconds)
        if not keep_problems:
            result.problem = None
        results.append(result)
    built = cache.builds if use_cache else len(setups)
    return results, built, cache.hits


class _SummaryAccumulator:
    """Streams one scheme's TraceResults into an EvalSummary.

    Units complete out of order under parallel executors; results are
    slotted by trace index so ``per_trace`` and the aggregated metrics
    match the serial path exactly.
    """

    def __init__(self, setup, n_traces: int):
        self._setup = setup
        self._slots: List[Optional[object]] = [None] * n_traces

    def add(self, trace_idx: int, result) -> None:
        self._slots[trace_idx] = result

    def finish(self):
        from .harness import summarize

        results = [r for r in self._slots if r is not None]
        return summarize(self._setup, results)


def _make_pool(
    config: RunnerConfig,
    worlds: Optional[List[Tuple[object, object]]] = None,
) -> Executor:
    if config.executor == "thread":
        return ThreadPoolExecutor(max_workers=config.jobs)
    # Shared worlds (topology + routing + its PathSpace) ship once per
    # worker via the initializer instead of once per task.
    return ProcessPoolExecutor(
        max_workers=config.jobs,
        initializer=_init_worker_worlds,
        initargs=(worlds or [],),
    )


def run_grid(
    setups: Sequence,
    traces: Sequence,
    config: Optional[RunnerConfig] = None,
    stats: Optional[RunnerStats] = None,
) -> Dict[str, object]:
    """Evaluate a scheme x trace grid under the configured executor.

    Returns ``{setup.labeled(): EvalSummary}`` in setup order.  Raises
    :class:`ExperimentError` when two setups share a label (their
    summaries would silently overwrite each other).

    Parallelism is across *traces* (the work unit that keeps the
    problem cache effective), so a single-trace grid always runs
    serially: pool overhead would dominate, and per-scheme timing
    experiments (fig4d) stay undistorted by worker contention.

    When ``config.shard`` is set, the grid either executes only its
    shard's contiguous index range (recording wire-format results for
    a later merge) or replays recorded results without executing at
    all; see :mod:`repro.eval.shard`.  Replay builds no problems and
    runs no traces, so ``stats`` counters stay untouched on that path.
    """
    config = config or RunnerConfig()
    labels = [setup.labeled() for setup in setups]
    duplicates = sorted({l for l in labels if labels.count(l) > 1})
    if duplicates:
        raise ExperimentError(
            f"duplicate scheme labels in evaluation grid: {duplicates}; "
            "give setups distinct names"
        )
    accumulators = [
        _SummaryAccumulator(setup, len(traces)) for setup in setups
    ]

    def finish() -> Dict[str, object]:
        return {
            label: acc.finish() for label, acc in zip(labels, accumulators)
        }

    shard = config.shard
    if shard is not None and shard.is_replay:
        # Merge path: fold previously recorded wire results through the
        # same accumulators that serial execution streams into.  Trace
        # generation already happened in the caller; nothing runs here.
        for idx, results in shard.replay_call(labels, len(traces)):
            for acc, result in zip(accumulators, results):
                acc.add(idx, result)
        return finish()

    if shard is not None:
        indices = list(shard.select_call(labels, len(traces)))
    else:
        indices = list(range(len(traces)))

    def fold(trace_idx: int, outcome) -> None:
        results, built, hits = outcome
        if shard is not None:
            shard.record(trace_idx, results)
        for acc, result in zip(accumulators, results):
            acc.add(trace_idx, result)
        if stats is not None:
            stats.merge(built, hits)

    if config.executor == "serial" or len(indices) <= 1:
        for idx in indices:
            fold(idx, _run_trace_unit(setups, traces[idx], config.cache))
    else:
        keep_problems = config.executor != "process"
        if config.executor == "process":
            worlds, payloads = detach_traces(traces)
        else:
            worlds, payloads = [], list(traces)
        with _make_pool(config, worlds) as pool:
            pending: Dict[object, int] = {}
            try:
                for idx in indices:
                    future = pool.submit(
                        _run_trace_unit, setups, payloads[idx], config.cache,
                        keep_problems,
                    )
                    pending[future] = idx
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        idx = pending.pop(future)
                        # .result() re-raises a worker's exception here
                        # instead of letting the grid hang half-finished.
                        fold(idx, future.result())
            except BaseException:
                for future in pending:
                    future.cancel()
                raise
    return finish()
