"""Streaming localization monitor: ingest -> update -> localize cycles.

The :class:`StreamMonitor` is the online counterpart of the batch
harness (:mod:`repro.eval.harness`): it folds each simulated
:class:`~repro.simulation.stream.StreamChunk` into a sliding
:class:`~repro.core.window.WindowedProblem`, re-localizes, and emits a
:class:`CycleReport` per cycle with the incident-facing quantities -
was the live fault detected, how much did the hypothesis churn, how
long did the cycle take.

Warm starts: for Flock (greedy) and Gibbs the monitor carries the
previous cycle's :class:`~repro.core.flock_fast.VectorJleState` across
cycles and rebases it with the window's flow deltas
(:meth:`VectorJleState.rebase`), so steady-state re-localization skips
the full Δ initialization.  The first cycle is always cold; schemes
without JLE state (Sherlock, NetBouncer, 007) localize cold every
cycle on the incrementally-maintained window.  Warm and cold searches
agree at convergence; the Gibbs warm chain starts from the carried
hypothesis and is therefore a different chain than a cold run (see
:meth:`repro.core.gibbs.GibbsInference.localize`).

Detection latency is derived by :func:`incident_latencies`: an incident
is a maximal run of cycles whose live injection has non-empty ground
truth, and its latency is the time from incident onset to the first
cycle whose prediction names at least one truly-failed component.

Graceful degradation: a monitor built with ``cycle_budget`` (seconds,
per cycle) sheds accuracy instead of falling behind the stream.  After
ingest it checks the budget and walks a ladder - full localization
when there is time; a warm-started greedy pass in place of a Gibbs
chain when past half the budget; carrying the previous hypothesis
outright (skipping localization, window and warm state still
maintained) when the budget is spent.  :meth:`StreamMonitor.pump`
applies the same idea to backlog: when more chunks arrive than fit the
window, the oldest are shed, the middles are folded into the window
without localizing (coalesced), and only the newest chunk gets a full
cycle.  Every :class:`CycleReport` carries ``degraded`` /
``degrade_reason`` / ``shed_chunks`` / ``coalesced_chunks`` so an
operator can see exactly which cycles ran in reduced-fidelity mode.

Checkpointing: a monitor built with ``checkpoint_path`` snapshots its
resumable state every ``checkpoint_every`` cycles through the codec in
:mod:`repro.eval.serialize` (atomic write, checksummed).  A checkpoint
carries the retained window chunks, the warm JLE/contrib state, and
the cycle cursor; :meth:`StreamMonitor.from_checkpoint` rebuilds a
monitor mid-incident that produces bit-identical :class:`CycleReport`s
(timings aside) from the resume point.  Restoring replays
``build_observation_batch`` over every previously-ingested chunk -
:class:`~repro.routing.paths.PathSpace` interning is stateful and
order-dependent, so the replay must reproduce the original gsid
numbering - and cross-checks each retained chunk's regenerated arrays
against the checkpointed ones, failing loudly on any stream drift.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, Iterable, List, Optional

import numpy as np

from ..core.flock import FlockInference
from ..core.flock_fast import DeltaContrib, VectorJleState
from ..core.gibbs import GibbsInference
from ..core.window import WindowedProblem
from ..errors import CheckpointError, ExperimentError
from ..simulation.failures import PER_FLOW
from ..simulation.stream import StreamChunk
from ..telemetry.inputs import build_observation_batch
from ..topology.base import Topology
from ..types import Prediction
from .harness import SchemeSetup
from .schemes import make_setup
from .serialize import (
    encode_stream_checkpoint,
    ndarray_from_wire,
    ndarray_to_wire,
    prediction_from_wire,
    prediction_to_wire,
)


@dataclass(frozen=True)
class CycleReport:
    """One monitor cycle's outcome."""

    cycle: int
    t_start: float
    t_end: float
    raw_flows: int
    grouped_flows: int
    prediction: Prediction
    truth: frozenset
    detected: bool
    churn: int
    build_seconds: float
    localize_seconds: float
    #: True when this cycle ran in any reduced-fidelity mode (budget
    #: ladder fired, or backlog was shed/coalesced on the way here).
    degraded: bool = False
    #: Which budget rung fired: ``None`` (full localization),
    #: ``"greedy"`` (warm greedy in place of a Gibbs chain), or
    #: ``"carried"`` (previous hypothesis reused, localization skipped).
    degrade_reason: Optional[str] = None
    #: Backlogged chunks dropped outright before this cycle.
    shed_chunks: int = 0
    #: Backlogged chunks folded into the window without localizing.
    coalesced_chunks: int = 0
    #: The monitor's per-cycle budget (``None`` when unbudgeted).
    budget_seconds: Optional[float] = None


def incident_latencies(reports: List[CycleReport]) -> List[Dict[str, object]]:
    """Detection latency per incident.

    Incidents are maximal runs of cycles with non-empty ground truth;
    ``latency_cycles``/``latency_seconds`` measure onset to the first
    detecting cycle (``None`` when the incident was never detected).
    """
    incidents: List[Dict[str, object]] = []
    onset: Optional[int] = None
    detected_at: Optional[int] = None
    # Key by cycle number, not list position: a resumed monitor's report
    # list starts mid-stream, so ``reports[i].cycle == i`` does not hold.
    by_cycle = {report.cycle: report for report in reports}

    def close(end: int) -> None:
        start = onset
        latency = None if detected_at is None else detected_at - start
        seconds = (
            None if detected_at is None
            else by_cycle[detected_at].t_end - by_cycle[start].t_start
        )
        incidents.append({
            "onset_cycle": start,
            "clear_cycle": end,
            "detected_cycle": detected_at,
            "latency_cycles": latency,
            "latency_seconds": seconds,
        })

    for report in reports:
        if report.truth:
            if onset is None:
                onset = report.cycle
                detected_at = None
            if detected_at is None and report.detected:
                detected_at = report.cycle
        elif onset is not None:
            close(report.cycle)
            onset = None
    if onset is not None:
        close(reports[-1].cycle + 1)
    return incidents


class StreamMonitor:
    """Drive ingest -> window update -> localize over a chunk stream."""

    def __init__(
        self,
        topology: Topology,
        scheme: str = "flock",
        window: int = 4,
        warm: bool = True,
        seed: int = 0,
        compressed: bool = True,
        setup: Optional[SchemeSetup] = None,
        cycle_budget: Optional[float] = None,
        clock=time.perf_counter,
        checkpoint_every: int = 1,
        checkpoint_path: Optional[str] = None,
        checkpoint_meta: Optional[Dict] = None,
    ) -> None:
        if cycle_budget is not None:
            try:
                finite = math.isfinite(cycle_budget)
            except TypeError:
                finite = False
            if not finite or cycle_budget <= 0:
                raise ExperimentError(
                    "cycle_budget must be a positive finite number of "
                    f"seconds, got {cycle_budget!r}"
                )
        if isinstance(checkpoint_every, bool) or not isinstance(
            checkpoint_every, int
        ) or checkpoint_every < 1:
            raise ExperimentError(
                "checkpoint_every must be a positive integer number of "
                f"cycles, got {checkpoint_every!r}"
            )
        self.topology = topology
        self.scheme = scheme
        self._scheme_registered = setup is None
        self.setup = setup if setup is not None else make_setup(scheme)
        self.window = window
        self.seed = seed
        self.cycle_budget = cycle_budget
        self.clock = clock
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.checkpoint_meta: Dict = dict(checkpoint_meta or {})
        localizer = self.setup.localizer
        self.warm = warm and isinstance(
            localizer, (FlockInference, GibbsInference)
        )
        self.windowed = WindowedProblem(
            n_components=topology.n_components,
            n_links=topology.n_links,
            window=window,
            compressed=compressed,
        )
        self._state: Optional[VectorJleState] = None
        # Per retained chunk, the DeltaContrib its rows were priced at
        # when appended (None for chunks folded in cold) - replayed to
        # rebase when the chunk expires and the hypothesis held still.
        self._contribs: Deque[Optional[DeltaContrib]] = deque()
        self._prev_components: frozenset = frozenset()
        self._prev_prediction: Optional[Prediction] = None
        #: Running count of degraded cycles (for run summaries).
        self.degraded_cycles = 0
        #: Cycles emitted so far (drives the checkpoint cadence).
        self.cycles = 0
        #: Next chunk index to process; a resumed run feeds the monitor
        #: only chunks with ``index >= cursor``.
        self.cursor = 0
        # Every chunk index ever folded into the window, in ingest
        # order.  Checkpointed so a resume can replay the interning
        # sequence; shed chunks never appear here.
        self._ingested: List[int] = []

    def _telemetry_for(self, chunk: StreamChunk):
        config = self.setup.telemetry
        if chunk.injection.analysis == PER_FLOW and config.analysis != PER_FLOW:
            return replace(config, analysis=PER_FLOW)
        return config

    def _ingest(self, chunk: StreamChunk):
        """Fold one chunk into the window (and warm state), no localize.

        Returns ``(obs, problem, state, build_seconds)`` where ``state``
        is the rebased :class:`VectorJleState` (``None`` for cold
        schemes).  Window bookkeeping and warm-state maintenance happen
        here unconditionally - degraded cycles skip *localization*,
        never state upkeep, so the next full cycle starts from a
        correct window.
        """
        config = self._telemetry_for(chunk)
        rng = np.random.default_rng(self.seed + 0x5EED + chunk.index)
        t0 = self.clock()
        obs = build_observation_batch(chunk.batch, config, rng)
        update = self.windowed.append(obs)
        problem = update.problem
        state: Optional[VectorJleState] = None
        if self.warm:
            params = self.setup.localizer.params
            expired_contrib = (
                self._contribs.popleft()
                if len(self._contribs) >= self.window else None
            )
            if self._state is None:
                state = VectorJleState(problem, params)
            else:
                state = VectorJleState.rebase(
                    problem,
                    self._state,
                    update.removed_flows,
                    update.removed_weights,
                    update.added_flows,
                    update.added_weights,
                    removed_contrib=expired_contrib,
                )
            self._contribs.append(state.added_contrib)
            self._state = state
        self._ingested.append(int(chunk.index))
        self.cursor = max(self.cursor, int(chunk.index) + 1)
        build_seconds = self.clock() - t0
        return obs, problem, state, build_seconds

    def _localize(self, problem, state, elapsed: float):
        """Budget ladder: pick a localization mode for this cycle.

        Returns ``(prediction, degrade_reason)``.  ``None`` reason is a
        full localization; ``"greedy"`` swapped a Gibbs chain for a
        warm greedy pass (past half budget); ``"carried"`` reused the
        previous hypothesis outright (budget spent).
        """
        localizer = self.setup.localizer
        budget = self.cycle_budget
        if (
            budget is not None
            and elapsed >= budget
            and self._prev_prediction is not None
        ):
            return self._prev_prediction, "carried"
        if (
            budget is not None
            and elapsed >= 0.5 * budget
            and state is not None
            and isinstance(localizer, GibbsInference)
        ):
            fallback = FlockInference(localizer.params)
            return fallback.localize(problem, warm_state=state), "greedy"
        if state is not None:
            if isinstance(localizer, GibbsInference):
                return localizer.localize(problem, initial_state=state), None
            return localizer.localize(problem, warm_state=state), None
        return localizer.localize(problem), None

    def _cycle(
        self, chunk: StreamChunk, shed: int, coalesced: int, start: float
    ) -> CycleReport:
        obs, problem, state, build_seconds = self._ingest(chunk)
        t0 = self.clock()
        prediction, degrade_reason = self._localize(
            problem, state, elapsed=t0 - start
        )
        localize_seconds = self.clock() - t0

        degraded = degrade_reason is not None or shed > 0 or coalesced > 0
        if degraded:
            self.degraded_cycles += 1
        truth = frozenset(chunk.injection.ground_truth.failed_components)
        report = CycleReport(
            cycle=chunk.index,
            t_start=chunk.t_start,
            t_end=chunk.t_end,
            raw_flows=len(obs),
            grouped_flows=problem.n_flows,
            prediction=prediction,
            truth=truth,
            detected=bool(prediction.components & truth),
            churn=len(prediction.components ^ self._prev_components),
            build_seconds=build_seconds,
            localize_seconds=localize_seconds,
            degraded=degraded,
            degrade_reason=degrade_reason,
            shed_chunks=shed,
            coalesced_chunks=coalesced,
            budget_seconds=self.cycle_budget,
        )
        self._prev_components = prediction.components
        self._prev_prediction = prediction
        self.cycles += 1
        return report

    def _autosave(self) -> None:
        if (
            self.checkpoint_path is not None
            and self.cycles % self.checkpoint_every == 0
        ):
            self.save_checkpoint(self.checkpoint_path)

    def step(self, chunk: StreamChunk) -> CycleReport:
        """Fold one chunk in and re-localize (budget ladder applies)."""
        report = self._cycle(chunk, shed=0, coalesced=0, start=self.clock())
        self._autosave()
        return report

    def pump(self, chunks: Iterable[StreamChunk]) -> CycleReport:
        """Drain a backlog of chunks as one degraded cycle.

        When ingest falls behind (a burst, or a slow previous cycle),
        more than one chunk is waiting.  Folding each through a full
        cycle would fall further behind, so: chunks beyond the window
        are shed outright (they would leave the window before ever
        being localized against), intermediate chunks are folded into
        the window without localizing (coalesced), and only the newest
        chunk gets a localization - itself subject to the budget
        ladder.  The returned report is the newest chunk's, carrying
        the shed/coalesced counts.
        """
        backlog = list(chunks)
        if not backlog:
            raise ExperimentError("pump needs at least one chunk")
        start = self.clock()
        shed = max(0, len(backlog) - self.window)
        backlog = backlog[shed:]
        for chunk in backlog[:-1]:
            self._ingest(chunk)
        report = self._cycle(
            backlog[-1], shed=shed, coalesced=len(backlog) - 1, start=start
        )
        self._autosave()
        return report

    def run(
        self,
        chunks: Iterable[StreamChunk],
        arrivals: Optional[Iterable[int]] = None,
    ) -> List[CycleReport]:
        """Run the full ingest -> update -> localize loop.

        ``arrivals`` optionally groups the chunk sequence into per-cycle
        delivery counts (e.g. from
        :meth:`repro.eval.chaos.ChaosPolicy.arrival_bursts`): each
        group of more than one chunk goes through :meth:`pump` as a
        burst.  Must sum to the number of chunks.
        """
        if arrivals is None:
            return [self.step(chunk) for chunk in chunks]
        stream = list(chunks)
        schedule = [int(n) for n in arrivals]
        if any(n < 1 for n in schedule) or sum(schedule) != len(stream):
            raise ExperimentError(
                f"arrival schedule {schedule} does not cover "
                f"{len(stream)} chunk(s)"
            )
        reports: List[CycleReport] = []
        cursor = 0
        for count in schedule:
            reports.append(self.pump(stream[cursor:cursor + count]))
            cursor += count
        return reports

    # -- checkpoint / resume ------------------------------------------

    def checkpoint_payload(self) -> Dict:
        """The monitor's resumable state as a wire-codec payload.

        Everything :meth:`from_checkpoint` needs that it cannot
        recompute from the regenerated stream: the monitor config, the
        ingest history and cursor, the retained chunks' observation
        arrays (stored for cross-validation against the replay), the
        warm JLE state's non-recomputable facts (hypothesis, Δ, ll,
        flips - bit-exact via the ndarray wire), the per-chunk contrib
        cache, and the previous cycle's prediction (the churn baseline
        and the ``"carried"`` budget rung).
        """
        if not self._scheme_registered:
            raise CheckpointError(
                "cannot checkpoint a monitor built from a custom "
                "SchemeSetup; construct it with a registry scheme name "
                "so a resume can rebuild the same setup"
            )
        retained = self.windowed.retained_chunk_observations() \
            if self._ingested else []
        indices = self._ingested[len(self._ingested) - len(retained):]
        state = self._state
        return {
            "config": {
                "scheme": self.scheme,
                "window": self.window,
                "seed": int(self.seed),
                "warm": bool(self.warm),
                "compressed": bool(self.windowed.compressed),
                "cycle_budget": self.cycle_budget,
                "n_components": int(self.topology.n_components),
                "n_links": int(self.topology.n_links),
            },
            "meta": dict(self.checkpoint_meta),
            "cursor": int(self.cursor),
            "cycles": int(self.cycles),
            "degraded_cycles": int(self.degraded_cycles),
            "ingested": list(self._ingested),
            "chunks": [
                {
                    "i": int(index),
                    "ps": ndarray_to_wire(obs.path_set),
                    "bad": ndarray_to_wire(obs.bad),
                    "sent": ndarray_to_wire(obs.sent),
                    "kind": ndarray_to_wire(obs.kind),
                }
                for index, obs in zip(indices, retained)
            ],
            "state": None if state is None else {
                "h": sorted(int(c) for c in state.hypothesis),
                "d": ndarray_to_wire(state.delta),
                "ll": float(state.ll),
                "f": int(state.flips),
            },
            "contribs": [
                None if contrib is None else {
                    "d": ndarray_to_wire(contrib.delta),
                    "ll": float(contrib.ll),
                    "h": sorted(int(c) for c in contrib.hypothesis),
                }
                for contrib in self._contribs
            ],
            "prev_components": sorted(
                int(c) for c in self._prev_components
            ),
            "prev_prediction": (
                None if self._prev_prediction is None
                else prediction_to_wire(self._prev_prediction)
            ),
        }

    def save_checkpoint(self, path: str) -> None:
        """Write a checkpoint atomically (write-then-rename).

        A crash mid-write leaves either the previous checkpoint or a
        stray ``.tmp`` file - never a torn document; the checksum in
        the document guards everything after the rename.
        """
        text = encode_stream_checkpoint(self.checkpoint_payload())
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def from_checkpoint(
        cls,
        payload: Dict,
        topology: Topology,
        chunks: Iterable[StreamChunk],
        clock=time.perf_counter,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
    ) -> "StreamMonitor":
        """Rebuild a monitor from a decoded checkpoint payload.

        ``chunks`` is the regenerated stream (same scenario, seed, and
        sizing as the checkpointed run - the caller rebuilds it, e.g.
        via :func:`repro.simulation.stream.replay_stream`).  The
        restore replays ``build_observation_batch`` for every
        previously-ingested chunk, in order, against the fresh
        topology's PathSpace: interning is stateful, so the replay is
        what reproduces the checkpointed gsid numbering.  Each retained
        chunk's regenerated arrays are compared against the
        checkpointed ones and any mismatch raises
        :class:`~repro.errors.CheckpointError` - a resume against a
        drifted stream must fail loudly, not localize garbage.

        After the replay the warm state, contrib cache, and cycle
        counters are restored verbatim; feeding the returned monitor
        the chunks with ``index >= monitor.cursor`` produces cycle
        reports bit-identical (timings aside) to the uninterrupted run.
        """
        for key in (
            "config", "meta", "cursor", "cycles", "degraded_cycles",
            "ingested", "chunks", "state", "contribs",
            "prev_components", "prev_prediction",
        ):
            if key not in payload:
                raise CheckpointError(
                    f"checkpoint payload is missing {key!r}"
                )
        config = payload["config"]
        if (
            int(config["n_components"]) != topology.n_components
            or int(config["n_links"]) != topology.n_links
        ):
            raise CheckpointError(
                f"checkpoint was taken on a fabric with "
                f"{config['n_components']} component(s) / "
                f"{config['n_links']} link(s); this topology has "
                f"{topology.n_components} / {topology.n_links} - "
                "resume with the same preset"
            )
        monitor = cls(
            topology,
            scheme=config["scheme"],
            window=int(config["window"]),
            warm=bool(config["warm"]),
            seed=int(config["seed"]),
            compressed=bool(config["compressed"]),
            cycle_budget=config["cycle_budget"],
            clock=clock,
            checkpoint_every=1 if checkpoint_every is None else checkpoint_every,
            checkpoint_path=checkpoint_path,
            checkpoint_meta=payload["meta"],
        )

        by_index = {int(chunk.index): chunk for chunk in chunks}
        stored = {int(entry["i"]): entry for entry in payload["chunks"]}
        for index in payload["ingested"]:
            index = int(index)
            chunk = by_index.get(index)
            if chunk is None:
                raise CheckpointError(
                    f"checkpoint ingested chunk {index} but the "
                    "regenerated stream has no such chunk - resume "
                    "with the checkpointed scenario, seed, and sizing"
                )
            config_t = monitor._telemetry_for(chunk)
            rng = np.random.default_rng(monitor.seed + 0x5EED + index)
            obs = build_observation_batch(chunk.batch, config_t, rng)
            entry = stored.get(index)
            if entry is not None:
                for key, regenerated in (
                    ("ps", obs.path_set), ("bad", obs.bad),
                    ("sent", obs.sent), ("kind", obs.kind),
                ):
                    want = ndarray_from_wire(entry[key])
                    if want.shape != regenerated.shape or not np.array_equal(
                        want, regenerated
                    ):
                        raise CheckpointError(
                            f"regenerated chunk {index} diverges from "
                            f"the checkpointed observations ({key}) - "
                            "the stream parameters differ from the "
                            "checkpointed run"
                        )
            monitor.windowed.append(obs)
        monitor._ingested = [int(i) for i in payload["ingested"]]
        retained_now = monitor._ingested[
            len(monitor._ingested) - monitor.windowed.n_chunks:
        ] if monitor._ingested else []
        if sorted(stored) != sorted(retained_now):
            raise CheckpointError(
                "checkpointed window chunks do not match the replayed "
                "ingest history - the checkpoint is internally "
                "inconsistent"
            )

        state_wire = payload["state"]
        if state_wire is not None:
            if not monitor.warm:
                raise CheckpointError(
                    "checkpoint carries warm JLE state but the restored "
                    "scheme does not warm-start"
                )
            monitor._state = VectorJleState.restore(
                monitor.windowed.problem,
                monitor.setup.localizer.params,
                hypothesis=state_wire["h"],
                delta=ndarray_from_wire(state_wire["d"]),
                ll=float(state_wire["ll"]),
                flips=int(state_wire["f"]),
            )
        monitor._contribs = deque(
            None if contrib is None else DeltaContrib(
                delta=ndarray_from_wire(contrib["d"]),
                ll=float(contrib["ll"]),
                hypothesis=frozenset(int(c) for c in contrib["h"]),
            )
            for contrib in payload["contribs"]
        )
        monitor._prev_components = frozenset(
            int(c) for c in payload["prev_components"]
        )
        monitor._prev_prediction = (
            None if payload["prev_prediction"] is None
            else prediction_from_wire(payload["prev_prediction"])
        )
        monitor.degraded_cycles = int(payload["degraded_cycles"])
        monitor.cycles = int(payload["cycles"])
        monitor.cursor = int(payload["cursor"])
        return monitor
