"""Streaming localization monitor: ingest -> update -> localize cycles.

The :class:`StreamMonitor` is the online counterpart of the batch
harness (:mod:`repro.eval.harness`): it folds each simulated
:class:`~repro.simulation.stream.StreamChunk` into a sliding
:class:`~repro.core.window.WindowedProblem`, re-localizes, and emits a
:class:`CycleReport` per cycle with the incident-facing quantities -
was the live fault detected, how much did the hypothesis churn, how
long did the cycle take.

Warm starts: for Flock (greedy) and Gibbs the monitor carries the
previous cycle's :class:`~repro.core.flock_fast.VectorJleState` across
cycles and rebases it with the window's flow deltas
(:meth:`VectorJleState.rebase`), so steady-state re-localization skips
the full Δ initialization.  The first cycle is always cold; schemes
without JLE state (Sherlock, NetBouncer, 007) localize cold every
cycle on the incrementally-maintained window.  Warm and cold searches
agree at convergence; the Gibbs warm chain starts from the carried
hypothesis and is therefore a different chain than a cold run (see
:meth:`repro.core.gibbs.GibbsInference.localize`).

Detection latency is derived by :func:`incident_latencies`: an incident
is a maximal run of cycles whose live injection has non-empty ground
truth, and its latency is the time from incident onset to the first
cycle whose prediction names at least one truly-failed component.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, Iterable, List, Optional

import numpy as np

from ..core.flock import FlockInference
from ..core.flock_fast import DeltaContrib, VectorJleState
from ..core.gibbs import GibbsInference
from ..core.window import WindowedProblem
from ..simulation.failures import PER_FLOW
from ..simulation.stream import StreamChunk
from ..telemetry.inputs import build_observation_batch
from ..topology.base import Topology
from ..types import Prediction
from .harness import SchemeSetup
from .schemes import make_setup


@dataclass(frozen=True)
class CycleReport:
    """One monitor cycle's outcome."""

    cycle: int
    t_start: float
    t_end: float
    raw_flows: int
    grouped_flows: int
    prediction: Prediction
    truth: frozenset
    detected: bool
    churn: int
    build_seconds: float
    localize_seconds: float


def incident_latencies(reports: List[CycleReport]) -> List[Dict[str, object]]:
    """Detection latency per incident.

    Incidents are maximal runs of cycles with non-empty ground truth;
    ``latency_cycles``/``latency_seconds`` measure onset to the first
    detecting cycle (``None`` when the incident was never detected).
    """
    incidents: List[Dict[str, object]] = []
    onset: Optional[int] = None
    detected_at: Optional[int] = None

    def close(end: int) -> None:
        start = onset
        latency = None if detected_at is None else detected_at - start
        seconds = (
            None if detected_at is None
            else reports[detected_at].t_end - reports[start].t_start
        )
        incidents.append({
            "onset_cycle": start,
            "clear_cycle": end,
            "detected_cycle": detected_at,
            "latency_cycles": latency,
            "latency_seconds": seconds,
        })

    for report in reports:
        if report.truth:
            if onset is None:
                onset = report.cycle
                detected_at = None
            if detected_at is None and report.detected:
                detected_at = report.cycle
        elif onset is not None:
            close(report.cycle)
            onset = None
    if onset is not None:
        close(reports[-1].cycle + 1)
    return incidents


class StreamMonitor:
    """Drive ingest -> window update -> localize over a chunk stream."""

    def __init__(
        self,
        topology: Topology,
        scheme: str = "flock",
        window: int = 4,
        warm: bool = True,
        seed: int = 0,
        compressed: bool = True,
        setup: Optional[SchemeSetup] = None,
    ) -> None:
        self.topology = topology
        self.setup = setup if setup is not None else make_setup(scheme)
        self.window = window
        self.seed = seed
        localizer = self.setup.localizer
        self.warm = warm and isinstance(
            localizer, (FlockInference, GibbsInference)
        )
        self.windowed = WindowedProblem(
            n_components=topology.n_components,
            n_links=topology.n_links,
            window=window,
            compressed=compressed,
        )
        self._state: Optional[VectorJleState] = None
        # Per retained chunk, the DeltaContrib its rows were priced at
        # when appended (None for chunks folded in cold) - replayed to
        # rebase when the chunk expires and the hypothesis held still.
        self._contribs: Deque[Optional[DeltaContrib]] = deque()
        self._prev_components: frozenset = frozenset()

    def _telemetry_for(self, chunk: StreamChunk):
        config = self.setup.telemetry
        if chunk.injection.analysis == PER_FLOW and config.analysis != PER_FLOW:
            return replace(config, analysis=PER_FLOW)
        return config

    def step(self, chunk: StreamChunk) -> CycleReport:
        """Fold one chunk in and re-localize."""
        config = self._telemetry_for(chunk)
        rng = np.random.default_rng(self.seed + 0x5EED + chunk.index)
        t0 = time.perf_counter()
        obs = build_observation_batch(chunk.batch, config, rng)
        update = self.windowed.append(obs)
        problem = update.problem
        build_seconds = time.perf_counter() - t0

        localizer = self.setup.localizer
        t0 = time.perf_counter()
        if self.warm:
            params = localizer.params
            expired_contrib = (
                self._contribs.popleft()
                if len(self._contribs) >= self.window else None
            )
            if self._state is None:
                state = VectorJleState(problem, params)
            else:
                state = VectorJleState.rebase(
                    problem,
                    self._state,
                    update.removed_flows,
                    update.removed_weights,
                    update.added_flows,
                    update.added_weights,
                    removed_contrib=expired_contrib,
                )
            self._contribs.append(state.added_contrib)
            if isinstance(localizer, GibbsInference):
                prediction = localizer.localize(problem, initial_state=state)
            else:
                prediction = localizer.localize(problem, warm_state=state)
            self._state = state
        else:
            prediction = localizer.localize(problem)
        localize_seconds = time.perf_counter() - t0

        truth = frozenset(chunk.injection.ground_truth.failed_components)
        report = CycleReport(
            cycle=chunk.index,
            t_start=chunk.t_start,
            t_end=chunk.t_end,
            raw_flows=len(obs),
            grouped_flows=problem.n_flows,
            prediction=prediction,
            truth=truth,
            detected=bool(prediction.components & truth),
            churn=len(prediction.components ^ self._prev_components),
            build_seconds=build_seconds,
            localize_seconds=localize_seconds,
        )
        self._prev_components = prediction.components
        return report

    def run(self, chunks: Iterable[StreamChunk]) -> List[CycleReport]:
        """Run the full ingest -> update -> localize loop."""
        return [self.step(chunk) for chunk in chunks]
