"""Streaming localization monitor: ingest -> update -> localize cycles.

The :class:`StreamMonitor` is the online counterpart of the batch
harness (:mod:`repro.eval.harness`): it folds each simulated
:class:`~repro.simulation.stream.StreamChunk` into a sliding
:class:`~repro.core.window.WindowedProblem`, re-localizes, and emits a
:class:`CycleReport` per cycle with the incident-facing quantities -
was the live fault detected, how much did the hypothesis churn, how
long did the cycle take.

Warm starts: for Flock (greedy) and Gibbs the monitor carries the
previous cycle's :class:`~repro.core.flock_fast.VectorJleState` across
cycles and rebases it with the window's flow deltas
(:meth:`VectorJleState.rebase`), so steady-state re-localization skips
the full Δ initialization.  The first cycle is always cold; schemes
without JLE state (Sherlock, NetBouncer, 007) localize cold every
cycle on the incrementally-maintained window.  Warm and cold searches
agree at convergence; the Gibbs warm chain starts from the carried
hypothesis and is therefore a different chain than a cold run (see
:meth:`repro.core.gibbs.GibbsInference.localize`).

Detection latency is derived by :func:`incident_latencies`: an incident
is a maximal run of cycles whose live injection has non-empty ground
truth, and its latency is the time from incident onset to the first
cycle whose prediction names at least one truly-failed component.

Graceful degradation: a monitor built with ``cycle_budget`` (seconds,
per cycle) sheds accuracy instead of falling behind the stream.  After
ingest it checks the budget and walks a ladder - full localization
when there is time; a warm-started greedy pass in place of a Gibbs
chain when past half the budget; carrying the previous hypothesis
outright (skipping localization, window and warm state still
maintained) when the budget is spent.  :meth:`StreamMonitor.pump`
applies the same idea to backlog: when more chunks arrive than fit the
window, the oldest are shed, the middles are folded into the window
without localizing (coalesced), and only the newest chunk gets a full
cycle.  Every :class:`CycleReport` carries ``degraded`` /
``degrade_reason`` / ``shed_chunks`` / ``coalesced_chunks`` so an
operator can see exactly which cycles ran in reduced-fidelity mode.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, Iterable, List, Optional

import numpy as np

from ..core.flock import FlockInference
from ..core.flock_fast import DeltaContrib, VectorJleState
from ..core.gibbs import GibbsInference
from ..core.window import WindowedProblem
from ..errors import ExperimentError
from ..simulation.failures import PER_FLOW
from ..simulation.stream import StreamChunk
from ..telemetry.inputs import build_observation_batch
from ..topology.base import Topology
from ..types import Prediction
from .harness import SchemeSetup
from .schemes import make_setup


@dataclass(frozen=True)
class CycleReport:
    """One monitor cycle's outcome."""

    cycle: int
    t_start: float
    t_end: float
    raw_flows: int
    grouped_flows: int
    prediction: Prediction
    truth: frozenset
    detected: bool
    churn: int
    build_seconds: float
    localize_seconds: float
    #: True when this cycle ran in any reduced-fidelity mode (budget
    #: ladder fired, or backlog was shed/coalesced on the way here).
    degraded: bool = False
    #: Which budget rung fired: ``None`` (full localization),
    #: ``"greedy"`` (warm greedy in place of a Gibbs chain), or
    #: ``"carried"`` (previous hypothesis reused, localization skipped).
    degrade_reason: Optional[str] = None
    #: Backlogged chunks dropped outright before this cycle.
    shed_chunks: int = 0
    #: Backlogged chunks folded into the window without localizing.
    coalesced_chunks: int = 0
    #: The monitor's per-cycle budget (``None`` when unbudgeted).
    budget_seconds: Optional[float] = None


def incident_latencies(reports: List[CycleReport]) -> List[Dict[str, object]]:
    """Detection latency per incident.

    Incidents are maximal runs of cycles with non-empty ground truth;
    ``latency_cycles``/``latency_seconds`` measure onset to the first
    detecting cycle (``None`` when the incident was never detected).
    """
    incidents: List[Dict[str, object]] = []
    onset: Optional[int] = None
    detected_at: Optional[int] = None

    def close(end: int) -> None:
        start = onset
        latency = None if detected_at is None else detected_at - start
        seconds = (
            None if detected_at is None
            else reports[detected_at].t_end - reports[start].t_start
        )
        incidents.append({
            "onset_cycle": start,
            "clear_cycle": end,
            "detected_cycle": detected_at,
            "latency_cycles": latency,
            "latency_seconds": seconds,
        })

    for report in reports:
        if report.truth:
            if onset is None:
                onset = report.cycle
                detected_at = None
            if detected_at is None and report.detected:
                detected_at = report.cycle
        elif onset is not None:
            close(report.cycle)
            onset = None
    if onset is not None:
        close(reports[-1].cycle + 1)
    return incidents


class StreamMonitor:
    """Drive ingest -> window update -> localize over a chunk stream."""

    def __init__(
        self,
        topology: Topology,
        scheme: str = "flock",
        window: int = 4,
        warm: bool = True,
        seed: int = 0,
        compressed: bool = True,
        setup: Optional[SchemeSetup] = None,
        cycle_budget: Optional[float] = None,
        clock=time.perf_counter,
    ) -> None:
        if cycle_budget is not None and cycle_budget <= 0:
            raise ExperimentError(
                f"cycle_budget must be positive, got {cycle_budget}"
            )
        self.topology = topology
        self.setup = setup if setup is not None else make_setup(scheme)
        self.window = window
        self.seed = seed
        self.cycle_budget = cycle_budget
        self.clock = clock
        localizer = self.setup.localizer
        self.warm = warm and isinstance(
            localizer, (FlockInference, GibbsInference)
        )
        self.windowed = WindowedProblem(
            n_components=topology.n_components,
            n_links=topology.n_links,
            window=window,
            compressed=compressed,
        )
        self._state: Optional[VectorJleState] = None
        # Per retained chunk, the DeltaContrib its rows were priced at
        # when appended (None for chunks folded in cold) - replayed to
        # rebase when the chunk expires and the hypothesis held still.
        self._contribs: Deque[Optional[DeltaContrib]] = deque()
        self._prev_components: frozenset = frozenset()
        self._prev_prediction: Optional[Prediction] = None
        #: Running count of degraded cycles (for run summaries).
        self.degraded_cycles = 0

    def _telemetry_for(self, chunk: StreamChunk):
        config = self.setup.telemetry
        if chunk.injection.analysis == PER_FLOW and config.analysis != PER_FLOW:
            return replace(config, analysis=PER_FLOW)
        return config

    def _ingest(self, chunk: StreamChunk):
        """Fold one chunk into the window (and warm state), no localize.

        Returns ``(obs, problem, state, build_seconds)`` where ``state``
        is the rebased :class:`VectorJleState` (``None`` for cold
        schemes).  Window bookkeeping and warm-state maintenance happen
        here unconditionally - degraded cycles skip *localization*,
        never state upkeep, so the next full cycle starts from a
        correct window.
        """
        config = self._telemetry_for(chunk)
        rng = np.random.default_rng(self.seed + 0x5EED + chunk.index)
        t0 = self.clock()
        obs = build_observation_batch(chunk.batch, config, rng)
        update = self.windowed.append(obs)
        problem = update.problem
        state: Optional[VectorJleState] = None
        if self.warm:
            params = self.setup.localizer.params
            expired_contrib = (
                self._contribs.popleft()
                if len(self._contribs) >= self.window else None
            )
            if self._state is None:
                state = VectorJleState(problem, params)
            else:
                state = VectorJleState.rebase(
                    problem,
                    self._state,
                    update.removed_flows,
                    update.removed_weights,
                    update.added_flows,
                    update.added_weights,
                    removed_contrib=expired_contrib,
                )
            self._contribs.append(state.added_contrib)
            self._state = state
        build_seconds = self.clock() - t0
        return obs, problem, state, build_seconds

    def _localize(self, problem, state, elapsed: float):
        """Budget ladder: pick a localization mode for this cycle.

        Returns ``(prediction, degrade_reason)``.  ``None`` reason is a
        full localization; ``"greedy"`` swapped a Gibbs chain for a
        warm greedy pass (past half budget); ``"carried"`` reused the
        previous hypothesis outright (budget spent).
        """
        localizer = self.setup.localizer
        budget = self.cycle_budget
        if (
            budget is not None
            and elapsed >= budget
            and self._prev_prediction is not None
        ):
            return self._prev_prediction, "carried"
        if (
            budget is not None
            and elapsed >= 0.5 * budget
            and state is not None
            and isinstance(localizer, GibbsInference)
        ):
            fallback = FlockInference(localizer.params)
            return fallback.localize(problem, warm_state=state), "greedy"
        if state is not None:
            if isinstance(localizer, GibbsInference):
                return localizer.localize(problem, initial_state=state), None
            return localizer.localize(problem, warm_state=state), None
        return localizer.localize(problem), None

    def _cycle(
        self, chunk: StreamChunk, shed: int, coalesced: int, start: float
    ) -> CycleReport:
        obs, problem, state, build_seconds = self._ingest(chunk)
        t0 = self.clock()
        prediction, degrade_reason = self._localize(
            problem, state, elapsed=t0 - start
        )
        localize_seconds = self.clock() - t0

        degraded = degrade_reason is not None or shed > 0 or coalesced > 0
        if degraded:
            self.degraded_cycles += 1
        truth = frozenset(chunk.injection.ground_truth.failed_components)
        report = CycleReport(
            cycle=chunk.index,
            t_start=chunk.t_start,
            t_end=chunk.t_end,
            raw_flows=len(obs),
            grouped_flows=problem.n_flows,
            prediction=prediction,
            truth=truth,
            detected=bool(prediction.components & truth),
            churn=len(prediction.components ^ self._prev_components),
            build_seconds=build_seconds,
            localize_seconds=localize_seconds,
            degraded=degraded,
            degrade_reason=degrade_reason,
            shed_chunks=shed,
            coalesced_chunks=coalesced,
            budget_seconds=self.cycle_budget,
        )
        self._prev_components = prediction.components
        self._prev_prediction = prediction
        return report

    def step(self, chunk: StreamChunk) -> CycleReport:
        """Fold one chunk in and re-localize (budget ladder applies)."""
        return self._cycle(chunk, shed=0, coalesced=0, start=self.clock())

    def pump(self, chunks: Iterable[StreamChunk]) -> CycleReport:
        """Drain a backlog of chunks as one degraded cycle.

        When ingest falls behind (a burst, or a slow previous cycle),
        more than one chunk is waiting.  Folding each through a full
        cycle would fall further behind, so: chunks beyond the window
        are shed outright (they would leave the window before ever
        being localized against), intermediate chunks are folded into
        the window without localizing (coalesced), and only the newest
        chunk gets a localization - itself subject to the budget
        ladder.  The returned report is the newest chunk's, carrying
        the shed/coalesced counts.
        """
        backlog = list(chunks)
        if not backlog:
            raise ExperimentError("pump needs at least one chunk")
        start = self.clock()
        shed = max(0, len(backlog) - self.window)
        backlog = backlog[shed:]
        for chunk in backlog[:-1]:
            self._ingest(chunk)
        return self._cycle(
            backlog[-1], shed=shed, coalesced=len(backlog) - 1, start=start
        )

    def run(
        self,
        chunks: Iterable[StreamChunk],
        arrivals: Optional[Iterable[int]] = None,
    ) -> List[CycleReport]:
        """Run the full ingest -> update -> localize loop.

        ``arrivals`` optionally groups the chunk sequence into per-cycle
        delivery counts (e.g. from
        :meth:`repro.eval.chaos.ChaosPolicy.arrival_bursts`): each
        group of more than one chunk goes through :meth:`pump` as a
        burst.  Must sum to the number of chunks.
        """
        if arrivals is None:
            return [self.step(chunk) for chunk in chunks]
        stream = list(chunks)
        schedule = [int(n) for n in arrivals]
        if any(n < 1 for n in schedule) or sum(schedule) != len(stream):
            raise ExperimentError(
                f"arrival schedule {schedule} does not cover "
                f"{len(stream)} chunk(s)"
            )
        reports: List[CycleReport] = []
        cursor = 0
        for count in schedule:
            reports.append(self.pump(stream[cursor:cursor + count]))
            cursor += count
        return reports
