"""Precision / recall / F-score, exactly as the paper defines them
(Appendix A.1).

* precision = |H ∩ H*| / |H|, recall = |H ∩ H*| / |H*|.
* "A faulty device or any of its links are considered to be correct for
  calculating precision."
* "Including the faulty device itself in H counts as 100% recall, and
  including x% of the device links in H counts as x% recall."
* "We define precision to be 1 if the algorithm returns the empty
  hypothesis.  For 0 actual failures ... recall is 1 since there are no
  failures to detect."

Device/link credit is symmetric in both directions: a predicted link
incident to a faulty device is correct for precision (the quote above),
and a predicted device incident to a faulty link is likewise correct -
the same adjacency the recall loop already uses when it counts a failed
link as detected because one of its endpoint devices was predicted.
Earlier revisions only credited the link->device direction for
precision, so a scheme that blamed the device next to a failed link was
scored as recall-right but precision-wrong for the identical claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..topology.base import Topology
from ..types import GroundTruth, Prediction


@dataclass(frozen=True)
class TraceMetrics:
    """Accuracy of one prediction against one ground truth."""

    precision: float
    recall: float

    @property
    def fscore(self) -> float:
        return fscore(self.precision, self.recall)


def fscore(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision + recall <= 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def evaluate_prediction(
    prediction: Prediction, truth: GroundTruth, topology: Topology
) -> TraceMetrics:
    """Score one prediction per Appendix A.1."""
    predicted = set(prediction.components)
    failed_links = set(truth.failed_links)
    failed_devices = set(truth.failed_devices)

    if not truth.has_failures:
        # No failures: recall is trivially 1; precision records whether
        # the scheme wrongly raised any alert.
        return TraceMetrics(precision=1.0 if not predicted else 0.0, recall=1.0)

    # --- precision ----------------------------------------------------
    if not predicted:
        precision = 1.0
    else:
        failed_device_nodes = {
            topology.component_device(d) for d in failed_devices
        }
        correct = 0
        for comp in predicted:
            if comp in failed_links or comp in failed_devices:
                correct += 1
                continue
            if topology.is_link_component(comp):
                u, v = topology.endpoints(comp)
                if u in failed_device_nodes or v in failed_device_nodes:
                    correct += 1
            else:
                # Symmetric credit: a predicted device whose incident
                # link failed is correct, mirroring the recall loop
                # below that counts such a device as detecting the link.
                node = topology.component_device(comp)
                if any(link in failed_links for link in topology.device_links(node)):
                    correct += 1
        precision = correct / len(predicted)

    # --- recall -------------------------------------------------------
    predicted_device_nodes = {
        topology.component_device(c)
        for c in predicted
        if topology.is_device_component(c)
    }
    credit = 0.0
    total = len(failed_links) + len(failed_devices)
    for link in failed_links:
        u, v = topology.endpoints(link)
        if link in predicted or u in predicted_device_nodes or v in predicted_device_nodes:
            credit += 1.0
    for device in failed_devices:
        if device in predicted:
            credit += 1.0
            continue
        node = topology.component_device(device)
        links = topology.device_links(node)
        if links:
            covered = sum(1 for link in links if link in predicted)
            credit += covered / len(links)
    recall = credit / total
    return TraceMetrics(precision=precision, recall=recall)


@dataclass(frozen=True)
class AggregateMetrics:
    """Macro-averaged accuracy over a set of traces."""

    precision: float
    recall: float
    mean_fscore: float
    n_traces: int

    @property
    def fscore(self) -> float:
        """F-score of the averaged precision/recall (the paper's style)."""
        return fscore(self.precision, self.recall)


def aggregate(metrics: Sequence[TraceMetrics]) -> AggregateMetrics:
    """Macro-average per-trace metrics.

    Zero traces carry no accuracy signal, so the aggregate of an empty
    batch is ``n_traces=0`` with NaN metrics - never the perfect score
    an earlier revision reported (a sharded merge of empty shards would
    have claimed precision = recall = 1.0 from no evidence).  Callers
    that require data, such as the shard merge path, check ``n_traces``
    and raise :class:`~repro.errors.ExperimentError`.
    """
    if not metrics:
        nan = float("nan")
        return AggregateMetrics(
            precision=nan, recall=nan, mean_fscore=nan, n_traces=0
        )
    n = len(metrics)
    precision = sum(m.precision for m in metrics) / n
    recall = sum(m.recall for m in metrics) / n
    mean_f = sum(m.fscore for m in metrics) / n
    return AggregateMetrics(
        precision=precision, recall=recall, mean_fscore=mean_f, n_traces=n
    )


def error_rate(score: float) -> float:
    """Error rate of an F-score; the paper reports improvements as
    error-rate ratios ("reduces inference error by 1.19 - 11x")."""
    return max(0.0, 1.0 - score)


def error_reduction(baseline_fscore: float, flock_fscore: float) -> float:
    """How many times smaller Flock's error is vs a baseline's."""
    flock_err = error_rate(flock_fscore)
    base_err = error_rate(baseline_fscore)
    if flock_err <= 0.0:
        return float("inf") if base_err > 0 else 1.0
    return base_err / flock_err
