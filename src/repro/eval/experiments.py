"""Experiment definitions: one function per figure/table of the paper.

Every function returns an :class:`ExperimentResult` whose ``rows`` are
plain dicts (easy to tabulate, assert on, or dump).  Each experiment has
two presets:

* ``"ci"`` - scaled-down sizes that run in seconds on one machine, used
  by the benchmark suite.  The flows-per-link ratio matches the paper's
  setup so accuracy trends are preserved.
* ``"paper"`` - sizes close to the paper's simulations, reachable via
  the CLI for long runs.

The paper-reported numbers each experiment should be compared against
are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from itertools import combinations
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.b007 import Vote007
from ..baselines.netbouncer import NetBouncer
from ..baselines.sherlock import SherlockFerret
from ..calibration.defaults import (
    flock_factory,
    netbouncer_factory,
    vote007_factory,
)
from ..calibration.grid import calibrate
from ..calibration.select import choose_operating_point
from ..core.flock import FlockInference
from ..core.greedy_nojle import GreedyWithoutJle
from ..core.model import LikelihoodModel
from ..core.params import DEFAULT_PER_FLOW, DEFAULT_PER_PACKET, FlockParams
from ..core.problem import InferenceProblem
from ..errors import ExperimentError
from ..routing.ecmp import EcmpRouting
from ..simulation.failures import (
    LinkFlap,
    QueueMisconfig,
    SilentDeviceFailure,
    SilentLinkDrops,
)
from ..telemetry.inputs import TelemetryConfig
from ..topology import (
    Topology,
    fat_tree,
    link_equivalence_classes,
    omit_random_links,
    paper_simulation_clos,
    testbed,
    theoretical_max_precision,
    three_tier_clos,
)
from ..types import FlowObservation, TelemetryKind
from .harness import (
    SchemeSetup,
    build_problem,
    evaluate,
    evaluate_many,
)
from .metrics import fscore
from .runner import RunnerConfig
from .scenarios import SKEWED, UNIFORM, Trace, make_trace, make_trace_batch

PRESETS = ("ci", "paper")

#: Default calibrated baseline settings (chosen by the section 5.2 rule on
#: this repo's standard training environment; see bench_table1_robustness).
DEFAULT_NETBOUNCER = dict(regularization=0.005, drop_threshold=3e-3, device_frac=0.5)
DEFAULT_007 = dict(threshold=0.6)


@dataclass
class ExperimentResult:
    """Rows plus provenance for one experiment."""

    experiment: str
    description: str
    rows: List[Dict] = field(default_factory=list)
    notes: str = ""

    def series(self, **filters) -> List[Dict]:
        """Rows matching all the given column=value filters."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in filters.items()):
                out.append(row)
        return out


def _check_preset(preset: str) -> None:
    if preset not in PRESETS:
        raise ExperimentError(f"preset must be one of {PRESETS}, got {preset!r}")


# ----------------------------------------------------------------------
# Shared topology/scale configuration
# ----------------------------------------------------------------------


def standard_topology(preset: str) -> Topology:
    """The silent-drop simulation fabric (paper: 2500-link 3-tier Clos)."""
    _check_preset(preset)
    if preset == "paper":
        return paper_simulation_clos()
    return three_tier_clos(
        pods=4, tors_per_pod=4, aggs_per_pod=2,
        core_groups=2, cores_per_group=2, hosts_per_tor=3,
    )


def _scale(preset: str) -> Dict[str, int]:
    """Flow/probe/trace counts; CI keeps the paper's flows-per-link ratio."""
    if preset == "paper":
        return {"n_passive": 400_000, "n_probes": 20_000, "n_traces": 16}
    return {"n_passive": 4_000, "n_probes": 600, "n_traces": 6}


def flock_setup(
    spec: str,
    params: FlockParams = DEFAULT_PER_PACKET,
    name: str = "Flock",
    **telemetry_kwargs,
) -> SchemeSetup:
    return SchemeSetup(
        name=name,
        localizer=FlockInference(params),
        telemetry=TelemetryConfig.from_spec(spec, **telemetry_kwargs),
    )


def netbouncer_setup(spec: str, **overrides) -> SchemeSetup:
    args = dict(DEFAULT_NETBOUNCER)
    args.update(overrides)
    return SchemeSetup(
        name="NetBouncer",
        localizer=NetBouncer(**args),
        telemetry=TelemetryConfig.from_spec(spec),
    )


def v007_setup(spec: str = "A2", **overrides) -> SchemeSetup:
    args = dict(DEFAULT_007)
    args.update(overrides)
    return SchemeSetup(
        name="007",
        localizer=Vote007(**args),
        telemetry=TelemetryConfig.from_spec(spec),
    )


def standard_scheme_suite(params: FlockParams = DEFAULT_PER_PACKET) -> List[SchemeSetup]:
    """The Fig. 2 scheme x input grid."""
    return [
        flock_setup("INT", params),
        flock_setup("A1+A2+P", params),
        flock_setup("A2", params),
        flock_setup("A1+P", params),
        flock_setup("A1", params),
        netbouncer_setup("INT"),
        netbouncer_setup("A1"),
        v007_setup("A2"),
    ]


def silent_drop_traces(
    preset: str,
    seed: int,
    topology: Optional[Topology] = None,
    max_failures: int = 8,
    n_traces: Optional[int] = None,
    n_passive: Optional[int] = None,
    n_probes: Optional[int] = None,
) -> List[Trace]:
    """The section 7.1 workload: 1..8 failed links, alternating traffic."""
    scale = _scale(preset)
    topo = topology if topology is not None else standard_topology(preset)
    routing = EcmpRouting(topo)
    count = n_traces if n_traces is not None else scale["n_traces"]
    rng = np.random.default_rng(seed)
    scenarios = [
        SilentLinkDrops(n_failures=int(rng.integers(1, max_failures + 1)))
        for _ in range(count)
    ]
    return make_trace_batch(
        topo,
        routing,
        scenarios,
        base_seed=seed,
        n_passive=n_passive if n_passive is not None else scale["n_passive"],
        n_probes=n_probes if n_probes is not None else scale["n_probes"],
    )


# ----------------------------------------------------------------------
# Fig. 2a/2b - silent packet drops, accuracy per scheme x input
# ----------------------------------------------------------------------


def fig2_tradeoff(
    preset: str = "ci",
    seed: int = 7,
    runner: Optional[RunnerConfig] = None,
) -> ExperimentResult:
    """Silent-drop accuracy at two monitoring volumes (Fig. 2a/2b).

    Rows: one per (volume, scheme-with-input) with precision/recall/
    fscore at each scheme's default calibrated setting.
    """
    _check_preset(preset)
    scale = _scale(preset)
    # Low volume = 1/4 of the flows and probes, mirroring the paper's
    # 100K vs 400K monitoring volumes.
    volumes = {
        "low": (scale["n_passive"] // 4, scale["n_probes"]),
        "high": (scale["n_passive"], scale["n_probes"] * 4),
    }
    result = ExperimentResult(
        experiment="fig2",
        description="Silent packet drops: accuracy by scheme and input type",
        notes=(
            "Paper (400K flows): Flock INT fscore 0.99, A1+A2+P 0.98, "
            "A2 0.93, A1+P 0.93, NetBouncer INT 0.88, 007 A2 0.61"
        ),
    )
    for volume_name, (n_passive, n_probes) in volumes.items():
        traces = silent_drop_traces(
            preset, seed, n_passive=n_passive, n_probes=n_probes
        )
        suite = standard_scheme_suite()
        summaries = evaluate_many(suite, traces, runner)
        for setup in suite:
            summary = summaries[setup.labeled()]
            result.rows.append(
                {
                    "volume": volume_name,
                    "n_passive": n_passive,
                    "scheme": setup.labeled(),
                    "precision": summary.accuracy.precision,
                    "recall": summary.accuracy.recall,
                    "fscore": summary.accuracy.fscore,
                }
            )
    return result


# ----------------------------------------------------------------------
# Fig. 2c - device failures
# ----------------------------------------------------------------------


def fig2c_device_failures(
    preset: str = "ci",
    seed: int = 11,
    runner: Optional[RunnerConfig] = None,
) -> ExperimentResult:
    """Device failures: fail 25%-100% of a device's links (Fig. 2c)."""
    _check_preset(preset)
    scale = _scale(preset)
    topo = standard_topology(preset)
    routing = EcmpRouting(topo)
    rng = np.random.default_rng(seed)
    scenarios = [
        SilentDeviceFailure(n_devices=int(rng.integers(1, 3)))
        for _ in range(scale["n_traces"])
    ]
    traces = make_trace_batch(
        topo, routing, scenarios, base_seed=seed,
        n_passive=scale["n_passive"], n_probes=scale["n_probes"],
    )
    result = ExperimentResult(
        experiment="fig2c",
        description="Silent device failures: accuracy by scheme and input",
        notes=(
            "Paper: Flock INT ~100% recall vs NetBouncer INT 80% recall; "
            "Flock A2 fscore 0.97 vs 007 0.76"
        ),
    )
    suite = standard_scheme_suite()
    summaries = evaluate_many(suite, traces, runner)
    for setup in suite:
        summary = summaries[setup.labeled()]
        result.rows.append(
            {
                "scheme": setup.labeled(),
                "precision": summary.accuracy.precision,
                "recall": summary.accuracy.recall,
                "fscore": summary.accuracy.fscore,
            }
        )
    return result


# ----------------------------------------------------------------------
# Fig. 3a/3b - soft gray failures (drop-rate sweep / SNR)
# ----------------------------------------------------------------------


def fig3_snr(
    preset: str = "ci",
    seed: int = 13,
    runner: Optional[RunnerConfig] = None,
) -> ExperimentResult:
    """F-score vs failed-link drop rate, uniform and skewed traffic."""
    _check_preset(preset)
    scale = _scale(preset)
    topo = standard_topology(preset)
    routing = EcmpRouting(topo)
    drop_rates = [0.002, 0.004, 0.006, 0.010, 0.014]
    n_reps = 4 if preset == "ci" else 32
    setups = [
        flock_setup("INT"),
        flock_setup("A1+A2+P"),
        flock_setup("A2"),
        v007_setup("A2"),
        netbouncer_setup("A1"),
    ]
    result = ExperimentResult(
        experiment="fig3",
        description="Soft gray failures: fscore vs drop rate (SNR sweep)",
        notes=(
            "Paper: Flock A2 detects >1% drops reliably; with passive "
            "telemetry >0.4%; 007 degrades under skewed traffic"
        ),
    )
    for traffic in (UNIFORM, SKEWED):
        for rate in drop_rates:
            scenario = SilentLinkDrops(
                n_failures=1, min_rate=rate, max_rate=rate
            )
            traces = [
                make_trace(
                    topo, routing, scenario,
                    seed=seed + rep * 101 + int(rate * 1e5),
                    n_passive=scale["n_passive"],
                    n_probes=scale["n_probes"],
                    traffic=traffic,
                )
                for rep in range(n_reps)
            ]
            included = [
                setup
                for setup in setups
                # Paper: A1-only schemes are unaffected by skew in
                # application traffic and are omitted from Fig. 3b.
                if not (
                    traffic == SKEWED
                    and TelemetryKind.A1 in setup.telemetry.kinds
                    and len(setup.telemetry.kinds) == 1
                )
            ]
            summaries = evaluate_many(included, traces, runner)
            for setup in included:
                summary = summaries[setup.labeled()]
                result.rows.append(
                    {
                        "traffic": traffic,
                        "drop_rate": rate,
                        "scheme": setup.labeled(),
                        "fscore": summary.accuracy.fscore,
                        "precision": summary.accuracy.precision,
                        "recall": summary.accuracy.recall,
                    }
                )
    return result


# ----------------------------------------------------------------------
# Fig. 4a - misconfigured queue (testbed)
# ----------------------------------------------------------------------


def _testbed_scale(preset: str) -> Dict[str, int]:
    if preset == "paper":
        return {"n_passive": 40_000, "n_traces": 12}
    return {"n_passive": 4_000, "n_traces": 6}


def fig4a_queue_misconfig(
    preset: str = "ci",
    seed: int = 17,
    runner: Optional[RunnerConfig] = None,
) -> ExperimentResult:
    """Misconfigured WRED queue on the testbed topology (Fig. 4a).

    A1 schemes are omitted, as in the paper ("our switches don't have
    the in network IP-in-IP feature for A1").
    """
    _check_preset(preset)
    scale = _testbed_scale(preset)
    topo = testbed()
    routing = EcmpRouting(topo)
    scenarios = [QueueMisconfig(n_links=1) for _ in range(scale["n_traces"])]
    traces = make_trace_batch(
        topo, routing, scenarios, base_seed=seed,
        n_passive=scale["n_passive"], n_probes=0,
    )
    setups = [
        flock_setup("INT"),
        flock_setup("A2+P"),
        flock_setup("A2"),
        netbouncer_setup("INT"),
        v007_setup("A2"),
    ]
    result = ExperimentResult(
        experiment="fig4a",
        description="Testbed: misconfigured WRED queue (p=1%, w=0)",
        notes=(
            "Paper (recalibrated): Flock INT fscore 0.98 vs NetBouncer INT "
            "0.87; Flock A2 0.97 vs 007 0.5; Flock A2+P close to INT"
        ),
    )
    summaries = evaluate_many(setups, traces, runner)
    for setup in setups:
        summary = summaries[setup.labeled()]
        result.rows.append(
            {
                "scheme": setup.labeled(),
                "precision": summary.accuracy.precision,
                "recall": summary.accuracy.recall,
                "fscore": summary.accuracy.fscore,
            }
        )
    return result


# ----------------------------------------------------------------------
# Fig. 4b - link flap (per-flow RTT analysis)
# ----------------------------------------------------------------------


def fig4b_link_flap(
    preset: str = "ci",
    seed: int = 19,
    runner: Optional[RunnerConfig] = None,
) -> ExperimentResult:
    """Link flap on the testbed: RTT spikes, per-flow analysis (Fig. 4b)."""
    _check_preset(preset)
    scale = _testbed_scale(preset)
    topo = testbed()
    routing = EcmpRouting(topo)
    scenarios = [LinkFlap(n_links=1) for _ in range(scale["n_traces"])]
    traces = make_trace_batch(
        topo, routing, scenarios, base_seed=seed,
        n_passive=scale["n_passive"], n_probes=0,
    )
    setups = [
        flock_setup("INT", DEFAULT_PER_FLOW),
        flock_setup("A2+P", DEFAULT_PER_FLOW),
        flock_setup("A2", DEFAULT_PER_FLOW),
        netbouncer_setup("INT", drop_threshold=0.05),
        v007_setup("A2"),
    ]
    result = ExperimentResult(
        experiment="fig4b",
        description="Testbed: link flap diagnosed via per-flow RTT analysis",
        notes=(
            "Paper: Flock INT fscore 0.81 vs NetBouncer INT 0.69; "
            "Flock A2 reduces error 1.8x over 007"
        ),
    )
    summaries = evaluate_many(setups, traces, runner)
    for setup in setups:
        summary = summaries[setup.labeled()]
        result.rows.append(
            {
                "scheme": setup.labeled(),
                "precision": summary.accuracy.precision,
                "recall": summary.accuracy.recall,
                "fscore": summary.accuracy.fscore,
            }
        )
    return result


# ----------------------------------------------------------------------
# Fig. 4c - inference runtime: Sherlock vs greedy-only vs JLE-only vs Flock
# ----------------------------------------------------------------------


def estimate_sherlock_runtime(
    problem: InferenceProblem,
    params: FlockParams,
    sample: int = 300,
    seed: int = 0,
) -> Tuple[float, int]:
    """Extrapolate plain Sherlock's K=2 runtime from a hypothesis sample.

    The paper does the same for its largest point ("estimated ... based
    on extrapolating a partial run").  Uses the vectorized hypothesis
    pricer so all Fig. 4c arms share constant factors.  Returns
    (seconds, total hypotheses).
    """
    from ..core.flock_fast import VectorArrays

    arrays = VectorArrays(problem, params)
    comps = list(problem.observed_components)
    n = len(comps)
    total_hypotheses = 1 + n + n * (n - 1) // 2
    rng = np.random.default_rng(seed)
    # Warm up the kernels so first-call overhead doesn't inflate the
    # extrapolated per-hypothesis cost.
    for _ in range(10):
        arrays.hypothesis_ll(comps[:2])
    t0 = time.perf_counter()
    measured = 0
    for _ in range(sample):
        pair = rng.choice(n, size=min(2, n), replace=False)
        arrays.hypothesis_ll([comps[int(i)] for i in pair])
        measured += 1
    elapsed = time.perf_counter() - t0
    per_hypothesis = elapsed / max(1, measured)
    return per_hypothesis * total_hypotheses, total_hypotheses


def fig4c_runtime(preset: str = "ci", seed: int = 23) -> ExperimentResult:
    """Runtime of Sherlock / greedy-only / JLE-only / Flock vs size."""
    _check_preset(preset)
    if preset == "paper":
        ks = [4, 8, 12, 16]
        flows_per_server = 100
    else:
        ks = [4, 6, 8]
        flows_per_server = 20
    result = ExperimentResult(
        experiment="fig4c",
        description=(
            "Inference runtime vs topology size: Sherlock (extrapolated), "
            "Flock greedy-only, Flock JLE-only (Sherlock+JLE), Flock"
        ),
        notes=(
            "Paper: Flock >10^4x faster than Sherlock; greedy and JLE "
            "each contribute ~100x"
        ),
    )
    for k in ks:
        topo = fat_tree(k)
        routing = EcmpRouting(topo)
        n_servers = len(topo.hosts)
        trace = make_trace(
            topo, routing, SilentLinkDrops(n_failures=2), seed=seed + k,
            n_passive=n_servers * flows_per_server,
            n_probes=n_servers * 2,
        )
        problem = build_problem(trace, TelemetryConfig.from_spec("A1+A2+P"))

        def best_of(fn, repeats=3):
            best = float("inf")
            value = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                value = fn()
                best = min(best, time.perf_counter() - t0)
            return best, value

        # The fast arms finish in milliseconds at small sizes; take the
        # best of three runs so timer noise doesn't distort the ratios.
        flock_time, flock_pred = best_of(
            lambda: FlockInference(DEFAULT_PER_PACKET).localize(problem)
        )

        from ..core.flock_fast import VectorGreedyWithoutJle

        greedy_only_time, _ = best_of(
            lambda: VectorGreedyWithoutJle(problem, DEFAULT_PER_PACKET).run()
        )

        t0 = time.perf_counter()
        SherlockFerret(
            DEFAULT_PER_PACKET, max_failures=2, use_jle=True, engine="fast"
        ).localize(problem)
        jle_only_time = time.perf_counter() - t0
        jle_only_est = False

        sherlock_time, n_hyp = estimate_sherlock_runtime(
            problem, DEFAULT_PER_PACKET
        )
        for scheme, seconds, estimated in (
            ("sherlock", sherlock_time, True),
            ("flock-greedy-only", greedy_only_time, False),
            ("flock-jle-only", jle_only_time, jle_only_est),
            ("flock", flock_time, False),
        ):
            result.rows.append(
                {
                    "servers": n_servers,
                    "k": k,
                    "scheme": scheme,
                    "seconds": seconds,
                    "estimated": estimated,
                    "hypotheses": n_hyp if scheme == "sherlock"
                    else flock_pred.hypotheses_scanned,
                }
            )
    return result


# ----------------------------------------------------------------------
# Fig. 4d - end-to-end scheme runtimes
# ----------------------------------------------------------------------


def fig4d_scheme_runtime(
    preset: str = "ci",
    seed: int = 29,
    runner: Optional[RunnerConfig] = None,
) -> ExperimentResult:
    """Runtime of every scheme on its input, across topology sizes.

    Build times must be *cold*, per-scheme measurements (the figure
    compares end-to-end scheme cost), so the problem cache is disabled
    here; with one trace per size the grid runs serially regardless of
    ``runner``, keeping inference timings uncontended.
    """
    _check_preset(preset)
    timing_runner = replace(
        runner if runner is not None else RunnerConfig(), cache=False
    )
    ks = [4, 6, 8] if preset == "ci" else [8, 12, 16]
    flows_per_server = 20 if preset == "ci" else 100
    setups = [
        netbouncer_setup("INT"),
        flock_setup("A1+A2+P"),
        flock_setup("INT"),
        netbouncer_setup("A1"),
        flock_setup("A1"),
        flock_setup("A2"),
        v007_setup("A2"),
    ]
    result = ExperimentResult(
        experiment="fig4d",
        description="Scheme runtime across topology sizes",
        notes=(
            "Paper: Flock ~4.5x faster than NetBouncer on the same input; "
            "007 fastest (<1 sec) but least accurate"
        ),
    )
    for k in ks:
        topo = fat_tree(k)
        routing = EcmpRouting(topo)
        n_servers = len(topo.hosts)
        trace = make_trace(
            topo, routing, SilentLinkDrops(n_failures=2), seed=seed + k,
            n_passive=n_servers * flows_per_server, n_probes=n_servers * 2,
        )
        summaries = evaluate_many(setups, [trace], timing_runner)
        for setup in setups:
            summary = summaries[setup.labeled()]
            result.rows.append(
                {
                    "servers": n_servers,
                    "k": k,
                    "scheme": setup.labeled(),
                    "seconds": summary.mean_inference_seconds,
                    "build_seconds": summary.mean_build_seconds,
                }
            )
    return result


# ----------------------------------------------------------------------
# Fig. 5a/5b - irregular Clos
# ----------------------------------------------------------------------


def omit_grid_seeds(seed: int, index: int, span: int = 1000) -> Tuple[int, int]:
    """(topology-RNG seed, trace base seed) for one omitted-links grid point.

    Derivation is index-based: grid point ``i`` owns the disjoint seed
    block ``[seed + span*i, seed + span*(i+1))``; traces take the low
    slots (``base_seed + j``) and the topology RNG the top slot.  No two
    grid points can collide, and point 0 never collapses both RNGs onto
    the bare experiment seed.  The earlier fraction-*value* derivation
    (``seed + int(fraction * 1000)`` / ``seed + int(fraction * 100)``)
    truncated floats - ``int(0.29 * 100) == 28`` - so seeds shifted or
    collided as the fraction grid changed, and ``fraction=0.0`` reused
    the bare seed for both the topology RNG and the trace batch.
    """
    block = seed + span * index
    return block + span - 1, block


def fig5_irregular(
    preset: str = "ci",
    seed: int = 31,
    runner: Optional[RunnerConfig] = None,
) -> ExperimentResult:
    """Accuracy vs fraction of omitted links, including Flock (P)."""
    _check_preset(preset)
    scale = _scale(preset)
    fractions = [0.0, 0.05, 0.10, 0.20]
    n_traces = max(4, scale["n_traces"] // 2)
    base_topo = standard_topology(preset)
    result = ExperimentResult(
        experiment="fig5",
        description="Irregular Clos: accuracy vs % links omitted",
        notes=(
            "Paper: Flock robust to irregularity; 007 sensitive; "
            "Flock (P) improves as symmetry breaks"
        ),
    )
    for i, fraction in enumerate(fractions):
        topo_seed, base_seed = omit_grid_seeds(seed, i)
        rng = np.random.default_rng(topo_seed)
        topo, _removed = omit_random_links(base_topo, fraction, rng)
        routing = EcmpRouting(topo)
        scenarios = [SilentLinkDrops(n_failures=1) for _ in range(n_traces)]
        traces = make_trace_batch(
            topo, routing, scenarios, base_seed=base_seed,
            n_passive=scale["n_passive"], n_probes=0,
        )
        setups = [
            flock_setup("INT"),
            flock_setup("A2+P"),
            flock_setup("A2"),
            flock_setup("P"),
            netbouncer_setup("INT"),
            v007_setup("A2"),
        ]
        summaries = evaluate_many(setups, traces, runner)
        for setup in setups:
            summary = summaries[setup.labeled()]
            result.rows.append(
                {
                    "fraction_omitted": fraction,
                    "scheme": setup.labeled(),
                    "precision": summary.accuracy.precision,
                    "recall": summary.accuracy.recall,
                    "fscore": summary.accuracy.fscore,
                }
            )
    return result


# ----------------------------------------------------------------------
# Fig. 5c - Flock (P) on a hard, nearly-symmetric scenario
# ----------------------------------------------------------------------


def fig5c_passive_hard(
    preset: str = "ci",
    seed: int = 37,
    runner: Optional[RunnerConfig] = None,
) -> ExperimentResult:
    """Passive-only localization with <5% omitted links (Fig. 5c)."""
    _check_preset(preset)
    scale = _scale(preset)
    fractions = [0.01, 0.02, 0.03, 0.04]
    n_traces = max(4, scale["n_traces"] // 2)
    base_topo = standard_topology(preset)
    setup = flock_setup("P")
    result = ExperimentResult(
        experiment="fig5c",
        description=(
            "Flock (P) on a hard scenario: symmetric Clos, passive only, "
            "with the theoretical max precision from equivalence classes"
        ),
        notes="Paper: >75% recall, >40% precision; theoretical max shown",
    )
    for i, fraction in enumerate(fractions):
        topo_seed, base_seed = omit_grid_seeds(seed, i)
        rng = np.random.default_rng(topo_seed)
        topo, _removed = omit_random_links(base_topo, fraction, rng)
        routing = EcmpRouting(topo)
        classes = link_equivalence_classes(topo, routing)
        scenarios = [SilentLinkDrops(n_failures=1) for _ in range(n_traces)]
        traces = make_trace_batch(
            topo, routing, scenarios, base_seed=base_seed,
            n_passive=scale["n_passive"], n_probes=0,
        )
        summary = evaluate(setup, traces, runner)
        max_precisions = [
            theoretical_max_precision(classes, trace.ground_truth.failed_links)
            for trace in traces
        ]
        result.rows.append(
            {
                "fraction_omitted": fraction,
                "scheme": setup.labeled(),
                "precision": summary.accuracy.precision,
                "recall": summary.accuracy.recall,
                "theoretical_max_precision": float(np.mean(max_precisions)),
            }
        )
    return result


# ----------------------------------------------------------------------
# Table 1 - parameter calibration robustness
# ----------------------------------------------------------------------


def table1_robustness(
    preset: str = "ci",
    seed: int = 41,
    runner: Optional[RunnerConfig] = None,
) -> ExperimentResult:
    """Train/test environment mismatch (Table 1), per scheme.

    For each test environment we evaluate Flock with parameters
    calibrated on a *different* environment (D) and on the same kind of
    environment (S).  CI preset uses coarse grids.
    """
    _check_preset(preset)
    scale = _scale(preset)
    n_traces = max(3, scale["n_traces"] // 2)
    n_passive = scale["n_passive"]
    topo = standard_topology(preset)
    routing = EcmpRouting(topo)
    small_topo = testbed()
    small_routing = EcmpRouting(small_topo)

    def drops(topology, routing_, seeds, rate=None, flows=None, probes=None):
        scenario = (
            SilentLinkDrops(n_failures=2)
            if rate is None
            else SilentLinkDrops(n_failures=2, min_rate=rate[0], max_rate=rate[1])
        )
        return make_trace_batch(
            topology, routing_, [scenario] * len(seeds), base_seed=seeds[0],
            n_passive=flows if flows is not None else n_passive,
            n_probes=probes if probes is not None else scale["n_probes"],
        )

    train = drops(topo, routing, list(range(seed, seed + n_traces)))
    environments = {
        "different_topology": drops(
            small_topo, small_routing,
            list(range(seed + 100, seed + 100 + n_traces)),
            flows=n_passive // 2, probes=0,
        ),
        "different_failure_rate": drops(
            topo, routing, list(range(seed + 200, seed + 200 + n_traces)),
            rate=(0.02, 0.05),
        ),
        "different_monitoring_interval": drops(
            topo, routing, list(range(seed + 300, seed + 300 + n_traces)),
            flows=n_passive // 4,
        ),
        "different_failure_scenario": make_trace_batch(
            topo, routing,
            [SilentDeviceFailure(n_devices=1)] * n_traces,
            base_seed=seed + 400,
            n_passive=n_passive, n_probes=scale["n_probes"],
        ),
    }

    grid = {
        "pg": [1e-4, 3e-4, 7e-4],
        "pb": [2e-3, 6e-3],
        "rho": [5e-4],
    }
    telemetry = TelemetryConfig.from_spec("A1+A2+P")
    result = ExperimentResult(
        experiment="table1",
        description="Parameter-calibration robustness (train vs test mismatch)",
        notes="Paper: Flock loses <2% accuracy under mismatch; NetBouncer 31%",
    )

    train_points = calibrate(flock_factory, grid, train, telemetry, runner=runner)
    train_choice = choose_operating_point(train_points)
    for env_name, test_traces in environments.items():
        same_points = calibrate(
            flock_factory, grid, test_traces, telemetry, runner=runner
        )
        same_choice = choose_operating_point(same_points)
        for mode, choice in (("D", train_choice), ("S", same_choice)):
            localizer = flock_factory(**choice.params)
            setup = SchemeSetup("Flock", localizer, telemetry)
            summary = evaluate(setup, test_traces, runner)
            result.rows.append(
                {
                    "scheme": "Flock (A1+A2+P)",
                    "environment": env_name,
                    "mode": mode,
                    "params": dict(choice.params),
                    "precision": summary.accuracy.precision,
                    "recall": summary.accuracy.recall,
                    "fscore": summary.accuracy.fscore,
                }
            )
    return result


# ----------------------------------------------------------------------
# Fig. 6 - worked example
# ----------------------------------------------------------------------


def fig6_worked_example() -> ExperimentResult:
    """The appendix's 5-link, 5-flow example where Flock localizes the
    failed link and 007/NetBouncer do not.

    Topology: hosts S1, S2 under switch I1; hosts D1, D2 under switch
    I2; link I1-I2 between them.  The link I2-D2 silently drops ~5% of
    packets.  Flows S1->D2 and S2->D2 see heavy loss; S1->D1 sees two
    stray drops; the rest are clean.
    """
    topo = Topology(
        names=["S1", "S2", "I1", "I2", "D1", "D2"],
        roles=["host", "host", "tor", "tor", "host", "host"],
        links=[(0, 2), (1, 2), (2, 3), (3, 4), (3, 5)],
    )

    def path(*nodes):
        return topo.path_components(nodes, include_devices=False)

    observations = [
        # (path_set, packets_sent, bad_packets) - Fig. 6's annotations.
        FlowObservation((path(0, 2, 3, 5),), 10_000, 543),   # S1->D2, lossy
        FlowObservation((path(0, 2, 3, 4),), 10_000, 2),     # S1->D1, 2 drops
        FlowObservation((path(1, 2, 3, 5),), 10_000, 461),   # S2->D2, lossy
        FlowObservation((path(1, 2, 3, 4),), 10_000, 0),     # S2->D1, clean
        FlowObservation((path(0, 2, 1),), 10_000, 0),        # S1->S2, clean
    ]
    problem = InferenceProblem.from_observations(
        observations, n_components=topo.n_components, n_links=topo.n_links
    )
    failed_link = topo.link_id(3, 5)

    params = FlockParams(pg=3e-4, pb=4e-2, rho=5e-4)
    rows = []
    for name, localizer in (
        ("Flock", FlockInference(params)),
        ("007", Vote007(threshold=0.7)),
        ("NetBouncer", NetBouncer(**DEFAULT_NETBOUNCER)),
    ):
        prediction = localizer.localize(problem)
        named = sorted(topo.component_name(c) for c in prediction.components)
        rows.append(
            {
                "scheme": name,
                "predicted": named,
                "correct_only": prediction.components == frozenset({failed_link}),
            }
        )
    return ExperimentResult(
        experiment="fig6",
        description="Worked example: Flock pinpoints I2<->D2",
        rows=rows,
        notes="Paper Fig. 6: 007 -> (I1,I2); NetBouncer -> 2 links; Flock -> (I2,D2)",
    )


# ----------------------------------------------------------------------
# Fig. 8a/8b - parameter sensitivity and priors
# ----------------------------------------------------------------------


def fig8a_sensitivity(
    preset: str = "ci",
    seed: int = 43,
    runner: Optional[RunnerConfig] = None,
) -> ExperimentResult:
    """F-score over a (pg, pb) grid (Fig. 8a)."""
    _check_preset(preset)
    traces = silent_drop_traces(preset, seed, max_failures=4)
    telemetry = TelemetryConfig.from_spec("A1+A2+P")
    result = ExperimentResult(
        experiment="fig8a",
        description="Sensitivity to pg and pb",
        notes="Paper: accuracy high over a wide (pg, pb) region",
    )
    # One batch: all settings share the telemetry spec, so each trace's
    # problem is built once for the whole (pg, pb) grid.
    settings = [
        (pg, pb)
        for pg in (1e-4, 3e-4, 5e-4, 7e-4)
        for pb in (2e-3, 4e-3, 6e-3, 1e-2)
    ]
    setups = [
        SchemeSetup(
            f"Flock pg={pg:g} pb={pb:g}",
            FlockInference(FlockParams(pg=pg, pb=pb, rho=5e-4)),
            telemetry,
        )
        for pg, pb in settings
    ]
    summaries = evaluate_many(setups, traces, runner)
    for setup, (pg, pb) in zip(setups, settings):
        summary = summaries[setup.labeled()]
        result.rows.append(
            {
                "pg": pg,
                "pb": pb,
                "fscore": summary.accuracy.fscore,
                "precision": summary.accuracy.precision,
                "recall": summary.accuracy.recall,
            }
        )
    return result


def fig8b_priors(
    preset: str = "ci",
    seed: int = 47,
    runner: Optional[RunnerConfig] = None,
) -> ExperimentResult:
    """Effect of the prior rho on precision/recall (Fig. 8b)."""
    _check_preset(preset)
    traces = silent_drop_traces(preset, seed, max_failures=4)
    telemetry = TelemetryConfig.from_spec("A1+A2+P")
    result = ExperimentResult(
        experiment="fig8b",
        description="Effect of the failure prior rho",
        notes="Paper: larger priors move points right (higher precision)",
    )
    rhos = (1e-5, 1e-4, 5e-4, 2e-3, 1e-2)
    setups = [
        SchemeSetup(
            f"Flock rho={rho:g}",
            FlockInference(FlockParams(pg=3e-4, pb=4e-3, rho=rho)),
            telemetry,
        )
        for rho in rhos
    ]
    summaries = evaluate_many(setups, traces, runner)
    for setup, rho in zip(setups, rhos):
        summary = summaries[setup.labeled()]
        result.rows.append(
            {
                "rho": rho,
                "precision": summary.accuracy.precision,
                "recall": summary.accuracy.recall,
                "fscore": summary.accuracy.fscore,
            }
        )
    return result


# ----------------------------------------------------------------------
# Section 7.8 - hypothesis scan rate
# ----------------------------------------------------------------------


def scan_rate(preset: str = "ci", seed: int = 53) -> ExperimentResult:
    """Hypotheses scanned per second by Flock's inference (section 7.8).

    The paper reports ~3.5M hypotheses in 17 s at 88K links / 9.5M
    flows (~200K hypotheses/s in C++ on 40 cores).
    """
    _check_preset(preset)
    k = 8 if preset == "ci" else 16
    topo = fat_tree(k)
    routing = EcmpRouting(topo)
    n_servers = len(topo.hosts)
    trace = make_trace(
        topo, routing, SilentLinkDrops(n_failures=4), seed=seed,
        n_passive=n_servers * (30 if preset == "ci" else 150),
        n_probes=n_servers * 2,
    )
    problem = build_problem(trace, TelemetryConfig.from_spec("A1+A2+P"))
    t0 = time.perf_counter()
    prediction = FlockInference(DEFAULT_PER_PACKET).localize(problem)
    elapsed = time.perf_counter() - t0
    return ExperimentResult(
        experiment="scan_rate",
        description="Flock hypothesis scan rate",
        rows=[
            {
                "links": topo.n_links,
                "components": topo.n_components,
                "flows": problem.total_flows,
                "grouped_flows": problem.n_flows,
                "hypotheses_scanned": prediction.hypotheses_scanned,
                "seconds": elapsed,
                "hypotheses_per_second": prediction.hypotheses_scanned / elapsed,
            }
        ],
        notes="Paper: ~3.5M hypotheses in 17s at 88K links (C++, 40 cores)",
    )
