"""Experiment definitions: one declarative spec per figure/table.

Every experiment here is registered in the :mod:`repro.eval.spec`
registry as a *builder* that turns ``(preset, seed, overrides)`` into an
:class:`~repro.eval.spec.ExperimentSpec` evaluated by the generic grid
driver (:func:`~repro.eval.spec.run_spec`).  Nothing in this module
executes traces or schemes itself; the builders only declare the
scenario x topology x telemetry x scheme x seed matrix.  Timing-style
measurements that are not a scheme x trace grid (fig4c's runtime
ablation, the scan-rate figure, the fig6 worked example) are registered
*probes*.

Presets:

* ``"tiny"`` - a few seconds per experiment; used by the registry-wide
  shard-equivalence tests.
* ``"ci"`` - scaled-down sizes that run in seconds to minutes on one
  machine, used by the benchmark suite.  The flows-per-link ratio
  matches the paper's setup so accuracy trends are preserved.
* ``"paper"`` - sizes close to the paper's simulations, reachable via
  the CLI for long runs.

The paper-reported numbers each experiment should be compared against
are recorded in each spec's ``notes``.

The legacy driver functions (``fig2_tradeoff``, ``table1_robustness``,
...) remain as thin wrappers over :func:`~repro.eval.spec.run_experiment`
and return bit-identical metrics for fixed seeds.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..calibration.grid import CalibrationPoint, iter_grid
from ..calibration.select import choose_operating_point
from ..core.flock import FlockInference
from ..core.flock_fast import VectorArrays
from ..core.params import DEFAULT_PER_FLOW, DEFAULT_PER_PACKET, FlockParams
from ..core.problem import InferenceProblem
from ..errors import ExperimentError
from ..routing.ecmp import EcmpRouting
from ..simulation.failures import SilentLinkDrops
from ..telemetry.inputs import TelemetryConfig
from ..topology import (
    Topology,
    fat_tree,
    link_equivalence_classes,
    omit_random_links,
    paper_simulation_clos,
    testbed,
    theoretical_max_precision,
    three_tier_clos,
)
from ..types import FlowObservation, TelemetryKind
from .harness import SchemeSetup, build_problem
from .runner import RunnerConfig
from .scenarios import SKEWED, UNIFORM, Trace, make_trace_batch
from .schemes import (
    DEFAULT_007,
    DEFAULT_NETBOUNCER,
    build_localizer,
    get_scheme,
    make_setup,
)
from .spec import (
    PRESETS,
    ExperimentResult,
    ExperimentSpec,
    GridPoint,
    Overrides,
    ProbeContext,
    ProbeRef,
    ScenarioSpec,
    SchemeRef,
    TopologySpec,
    TraceSpec,
    check_preset,
    register_experiment,
    register_extras,
    register_probe,
    register_topology,
    run_experiment,
)

_check_preset = check_preset


# ----------------------------------------------------------------------
# Shared topology/scale configuration
# ----------------------------------------------------------------------


def standard_topology(preset: str) -> Topology:
    """The silent-drop simulation fabric (paper: 2500-link 3-tier Clos)."""
    _check_preset(preset)
    if preset == "paper":
        return paper_simulation_clos()
    if preset == "tiny":
        return three_tier_clos(
            pods=2, tors_per_pod=2, aggs_per_pod=2,
            core_groups=2, cores_per_group=1, hosts_per_tor=2,
        )
    return three_tier_clos(
        pods=4, tors_per_pod=4, aggs_per_pod=2,
        core_groups=2, cores_per_group=2, hosts_per_tor=3,
    )


def _scale(preset: str) -> Dict[str, int]:
    """Flow/probe/trace counts; CI keeps the paper's flows-per-link ratio."""
    if preset == "paper":
        return {"n_passive": 400_000, "n_probes": 20_000, "n_traces": 16}
    if preset == "tiny":
        return {"n_passive": 1_200, "n_probes": 200, "n_traces": 4}
    return {"n_passive": 4_000, "n_probes": 600, "n_traces": 6}


def _testbed_scale(preset: str) -> Dict[str, int]:
    if preset == "paper":
        return {"n_passive": 40_000, "n_traces": 12}
    if preset == "tiny":
        return {"n_passive": 1_000, "n_traces": 4}
    return {"n_passive": 4_000, "n_traces": 6}


def _fig6_topology() -> Topology:
    """The appendix's 5-link example: S1,S2 - I1 - I2 - D1,D2."""
    return Topology(
        names=["S1", "S2", "I1", "I2", "D1", "D2"],
        roles=["host", "host", "tor", "tor", "host", "host"],
        links=[(0, 2), (1, 2), (2, 3), (3, 4), (3, 5)],
    )


def _omitted_topology(preset: str, fraction: float, topo_seed: int) -> Topology:
    rng = np.random.default_rng(topo_seed)
    topo, _removed = omit_random_links(standard_topology(preset), fraction, rng)
    return topo


register_topology("standard", standard_topology)
register_topology("testbed", testbed)
register_topology("fat-tree", fat_tree)
register_topology("standard-omit", _omitted_topology)
register_topology("fig6-example", _fig6_topology)


# ----------------------------------------------------------------------
# Scheme-suite helpers (built on the scheme registry)
# ----------------------------------------------------------------------


def _flock_overrides(params: FlockParams) -> Dict[str, float]:
    return params.grid_overrides()


def flock_ref(
    spec: str,
    params: FlockParams = DEFAULT_PER_PACKET,
    label: Optional[str] = None,
    **telemetry_kwargs,
) -> SchemeRef:
    return SchemeRef(
        "flock",
        spec=spec,
        overrides=_flock_overrides(params),
        telemetry=telemetry_kwargs,
        label=label,
    )


def netbouncer_ref(spec: str, **overrides) -> SchemeRef:
    return SchemeRef("netbouncer", spec=spec, overrides=overrides)


def v007_ref(spec: str = "A2", **overrides) -> SchemeRef:
    return SchemeRef("007", spec=spec, overrides=overrides)


def standard_suite_refs(
    params: FlockParams = DEFAULT_PER_PACKET,
) -> Tuple[SchemeRef, ...]:
    """The Fig. 2 scheme x input grid as registry references."""
    return (
        flock_ref("INT", params),
        flock_ref("A1+A2+P", params),
        flock_ref("A2", params),
        flock_ref("A1+P", params),
        flock_ref("A1", params),
        netbouncer_ref("INT"),
        netbouncer_ref("A1"),
        v007_ref("A2"),
    )


def flock_setup(
    spec: str,
    params: FlockParams = DEFAULT_PER_PACKET,
    name: str = "Flock",
    **telemetry_kwargs,
) -> SchemeSetup:
    return make_setup(
        "flock",
        spec=spec,
        overrides=_flock_overrides(params),
        telemetry=telemetry_kwargs,
        label=name,
    )


def netbouncer_setup(spec: str, **overrides) -> SchemeSetup:
    return make_setup("netbouncer", spec=spec, overrides=overrides)


def v007_setup(spec: str = "A2", **overrides) -> SchemeSetup:
    return make_setup("007", spec=spec, overrides=overrides)


def standard_scheme_suite(params: FlockParams = DEFAULT_PER_PACKET) -> List[SchemeSetup]:
    """The Fig. 2 scheme x input grid, as constructed setups."""
    return [ref.setup() for ref in standard_suite_refs(params)]


def silent_drop_traces(
    preset: str,
    seed: int,
    topology: Optional[Topology] = None,
    max_failures: int = 8,
    n_traces: Optional[int] = None,
    n_passive: Optional[int] = None,
    n_probes: Optional[int] = None,
) -> List[Trace]:
    """The section 7.1 workload: 1..8 failed links, alternating traffic."""
    scale = _scale(preset)
    topo = topology if topology is not None else standard_topology(preset)
    routing = EcmpRouting(topo)
    count = n_traces if n_traces is not None else scale["n_traces"]
    rng = np.random.default_rng(seed)
    scenarios = [
        SilentLinkDrops(n_failures=int(rng.integers(1, max_failures + 1)))
        for _ in range(count)
    ]
    return make_trace_batch(
        topo,
        routing,
        scenarios,
        base_seed=seed,
        n_passive=n_passive if n_passive is not None else scale["n_passive"],
        n_probes=n_probes if n_probes is not None else scale["n_probes"],
    )


def _silent_drops_mixed(seed: int, max_failures: int = 8) -> ScenarioSpec:
    """The section 7.1 sampling recipe: 1..max_failures links per trace."""
    return ScenarioSpec(
        "silent-link-drops",
        sampled={"n_failures": (1, max_failures + 1)},
        sample_seed=seed,
    )


def _seed_range(seed: int, count: int) -> Tuple[int, ...]:
    return tuple(range(seed, seed + count))


# ----------------------------------------------------------------------
# Fig. 2a/2b - silent packet drops, accuracy per scheme x input
# ----------------------------------------------------------------------


@register_experiment(
    "fig2",
    description="Silent packet drops: accuracy by scheme and input type",
    default_seed=7,
)
def build_fig2(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Silent-drop accuracy at two monitoring volumes (Fig. 2a/2b)."""
    scale = _scale(preset)
    n_traces = ov.take("n_traces", scale["n_traces"])
    base_passive = ov.take("n_passive", scale["n_passive"])
    base_probes = ov.take("n_probes", scale["n_probes"])
    max_failures = ov.take("max_failures", 8)
    # Low volume = 1/4 of the flows, mirroring the paper's 100K vs 400K
    # monitoring volumes.
    volumes = {
        "low": (base_passive // 4, base_probes),
        "high": (base_passive, base_probes * 4),
    }
    points = [
        GridPoint(
            topology=TopologySpec("standard", {"preset": preset}),
            key={"volume": volume_name, "n_passive": n_passive},
            scenario=_silent_drops_mixed(seed, max_failures),
            trace=TraceSpec(
                seeds=_seed_range(seed, n_traces),
                n_passive=n_passive,
                n_probes=n_probes,
            ),
            schemes=standard_suite_refs(),
        )
        for volume_name, (n_passive, n_probes) in volumes.items()
    ]
    return ExperimentSpec(
        name="fig2",
        description="Silent packet drops: accuracy by scheme and input type",
        points=points,
        notes=(
            "Paper (400K flows): Flock INT fscore 0.99, A1+A2+P 0.98, "
            "A2 0.93, A1+P 0.93, NetBouncer INT 0.88, 007 A2 0.61"
        ),
    )


# ----------------------------------------------------------------------
# Paper-scale Clos (the compressed-pipeline flagship workload)
# ----------------------------------------------------------------------


@register_experiment(
    "paper-clos",
    description="Paper-scale Clos silent drops (compressed pipeline demo)",
    default_seed=61,
    include_in_all=False,
)
def build_paper_clos(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Silent drops on the paper's simulation fabric at full scale.

    At ``--preset paper`` this is the paper's actual setup - the
    ``paper_simulation_clos`` 2496-link fabric with 400K passive flows
    per trace - which only the compressed component-path pipeline can
    build and localize; smaller presets scale the same workload down
    for smoke tests.  One trace by default: the point is proving the
    scale, not averaging accuracy.
    """
    scale = _scale(preset)
    n_traces = ov.take("n_traces", 1)
    schemes_csv = ov.take("schemes", "flock")
    refs = tuple(
        SchemeRef(name.strip(), spec="A1+A2+P" if name.strip() == "flock" else None)
        for name in str(schemes_csv).split(",")
    )
    point = GridPoint(
        topology=TopologySpec("standard", {"preset": preset}),
        scenario=ScenarioSpec(
            "silent-link-drops",
            params={"n_failures": 3, "min_rate": 4e-3, "max_rate": 1e-2},
        ),
        trace=TraceSpec(
            seeds=_seed_range(seed, n_traces),
            n_passive=ov.take("n_passive", scale["n_passive"]),
            n_probes=ov.take("n_probes", scale["n_probes"]),
        ),
        schemes=refs,
    )
    return ExperimentSpec(
        name="paper-clos",
        description="Paper-scale Clos silent drops (compressed pipeline demo)",
        points=[point],
        notes=(
            "Tentpole workload: 3-tier Clos, 1536 hosts, 400K flows per "
            "trace; ~9M distinct component paths compressed to ~250K "
            "interior projections"
        ),
    )


# ----------------------------------------------------------------------
# Fig. 2c - device failures
# ----------------------------------------------------------------------


@register_experiment(
    "fig2c",
    description="Silent device failures: accuracy by scheme and input",
    default_seed=11,
)
def build_fig2c(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Device failures: fail 25%-100% of a device's links (Fig. 2c)."""
    scale = _scale(preset)
    n_traces = ov.take("n_traces", scale["n_traces"])
    point = GridPoint(
        topology=TopologySpec("standard", {"preset": preset}),
        scenario=ScenarioSpec(
            "silent-device-failure",
            sampled={"n_devices": (1, 3)},
            sample_seed=seed,
        ),
        trace=TraceSpec(
            seeds=_seed_range(seed, n_traces),
            n_passive=ov.take("n_passive", scale["n_passive"]),
            n_probes=ov.take("n_probes", scale["n_probes"]),
        ),
        schemes=standard_suite_refs(),
    )
    return ExperimentSpec(
        name="fig2c",
        description="Silent device failures: accuracy by scheme and input",
        points=[point],
        notes=(
            "Paper: Flock INT ~100% recall vs NetBouncer INT 80% recall; "
            "Flock A2 fscore 0.97 vs 007 0.76"
        ),
    )


# ----------------------------------------------------------------------
# Fig. 3a/3b - soft gray failures (drop-rate sweep / SNR)
# ----------------------------------------------------------------------


def _a1_only(ref: SchemeRef) -> bool:
    """A1-only schemes are unaffected by skew in application traffic
    and are omitted from Fig. 3b, as in the paper."""
    spec = ref.spec if ref.spec is not None else get_scheme(ref.scheme).default_spec
    config = TelemetryConfig.from_spec(spec)
    return TelemetryKind.A1 in config.kinds and len(config.kinds) == 1


@register_experiment(
    "fig3",
    description="Soft gray failures: fscore vs drop rate (SNR sweep)",
    default_seed=13,
)
def build_fig3(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """F-score vs failed-link drop rate, uniform and skewed traffic."""
    scale = _scale(preset)
    if preset == "tiny":
        drop_rates, n_reps = [0.004, 0.010], 2
    else:
        drop_rates = [0.002, 0.004, 0.006, 0.010, 0.014]
        n_reps = 4 if preset == "ci" else 32
    n_reps = ov.take("n_reps", n_reps)
    drop_rates = ov.take("drop_rates", drop_rates)
    suite = (
        flock_ref("INT"),
        flock_ref("A1+A2+P"),
        flock_ref("A2"),
        v007_ref("A2"),
        netbouncer_ref("A1"),
    )
    points = []
    for traffic in (UNIFORM, SKEWED):
        included = tuple(
            ref for ref in suite
            if not (traffic == SKEWED and _a1_only(ref))
        )
        for rate in drop_rates:
            points.append(
                GridPoint(
                    topology=TopologySpec("standard", {"preset": preset}),
                    key={"traffic": traffic, "drop_rate": rate},
                    scenario=ScenarioSpec(
                        "silent-link-drops",
                        params={"n_failures": 1, "min_rate": rate, "max_rate": rate},
                    ),
                    trace=TraceSpec(
                        seeds=tuple(
                            seed + rep * 101 + int(rate * 1e5)
                            for rep in range(n_reps)
                        ),
                        n_passive=scale["n_passive"],
                        n_probes=scale["n_probes"],
                        traffic=(traffic,) * n_reps,
                    ),
                    schemes=included,
                )
            )
    return ExperimentSpec(
        name="fig3",
        description="Soft gray failures: fscore vs drop rate (SNR sweep)",
        points=points,
        metrics=("fscore", "precision", "recall"),
        notes=(
            "Paper: Flock A2 detects >1% drops reliably; with passive "
            "telemetry >0.4%; 007 degrades under skewed traffic"
        ),
    )


# ----------------------------------------------------------------------
# Fig. 4a - misconfigured queue (testbed)
# ----------------------------------------------------------------------


@register_experiment(
    "fig4a",
    description="Testbed: misconfigured WRED queue (p=1%, w=0)",
    default_seed=17,
)
def build_fig4a(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Misconfigured WRED queue on the testbed topology (Fig. 4a).

    A1 schemes are omitted, as in the paper ("our switches don't have
    the in network IP-in-IP feature for A1").
    """
    scale = _testbed_scale(preset)
    n_traces = ov.take("n_traces", scale["n_traces"])
    point = GridPoint(
        topology=TopologySpec("testbed"),
        scenario=ScenarioSpec("queue-misconfig", params={"n_links": 1}),
        trace=TraceSpec(
            seeds=_seed_range(seed, n_traces),
            n_passive=ov.take("n_passive", scale["n_passive"]),
            n_probes=0,
        ),
        schemes=(
            flock_ref("INT"),
            flock_ref("A2+P"),
            flock_ref("A2"),
            netbouncer_ref("INT"),
            v007_ref("A2"),
        ),
    )
    return ExperimentSpec(
        name="fig4a",
        description="Testbed: misconfigured WRED queue (p=1%, w=0)",
        points=[point],
        notes=(
            "Paper (recalibrated): Flock INT fscore 0.98 vs NetBouncer INT "
            "0.87; Flock A2 0.97 vs 007 0.5; Flock A2+P close to INT"
        ),
    )


# ----------------------------------------------------------------------
# Fig. 4b - link flap (per-flow RTT analysis)
# ----------------------------------------------------------------------


@register_experiment(
    "fig4b",
    description="Testbed: link flap diagnosed via per-flow RTT analysis",
    default_seed=19,
)
def build_fig4b(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Link flap on the testbed: RTT spikes, per-flow analysis (Fig. 4b)."""
    scale = _testbed_scale(preset)
    n_traces = ov.take("n_traces", scale["n_traces"])
    point = GridPoint(
        topology=TopologySpec("testbed"),
        scenario=ScenarioSpec("link-flap", params={"n_links": 1}),
        trace=TraceSpec(
            seeds=_seed_range(seed, n_traces),
            n_passive=ov.take("n_passive", scale["n_passive"]),
            n_probes=0,
        ),
        schemes=(
            flock_ref("INT", DEFAULT_PER_FLOW),
            flock_ref("A2+P", DEFAULT_PER_FLOW),
            flock_ref("A2", DEFAULT_PER_FLOW),
            netbouncer_ref("INT", drop_threshold=0.05),
            v007_ref("A2"),
        ),
    )
    return ExperimentSpec(
        name="fig4b",
        description="Testbed: link flap diagnosed via per-flow RTT analysis",
        points=[point],
        notes=(
            "Paper: Flock INT fscore 0.81 vs NetBouncer INT 0.69; "
            "Flock A2 reduces error 1.8x over 007"
        ),
    )


# ----------------------------------------------------------------------
# Fig. 4c - inference runtime: Sherlock vs greedy-only vs JLE-only vs Flock
# ----------------------------------------------------------------------


def estimate_sherlock_runtime(
    problem: InferenceProblem,
    params: FlockParams,
    sample: int = 300,
    seed: int = 0,
) -> Tuple[float, int]:
    """Extrapolate plain Sherlock's K=2 runtime from a hypothesis sample.

    The paper does the same for its largest point ("estimated ... based
    on extrapolating a partial run").  Uses the vectorized hypothesis
    pricer so all Fig. 4c arms share constant factors.  Returns
    (seconds, total hypotheses).
    """
    arrays = VectorArrays(problem, params)
    comps = list(problem.observed_components)
    n = len(comps)
    total_hypotheses = 1 + n + n * (n - 1) // 2
    rng = np.random.default_rng(seed)
    # Warm up the kernels so first-call overhead doesn't inflate the
    # extrapolated per-hypothesis cost.
    for _ in range(10):
        arrays.hypothesis_ll(comps[:2])
    t0 = time.perf_counter()
    measured = 0
    for _ in range(sample):
        pair = rng.choice(n, size=min(2, n), replace=False)
        arrays.hypothesis_ll([comps[int(i)] for i in pair])
        measured += 1
    elapsed = time.perf_counter() - t0
    per_hypothesis = elapsed / max(1, measured)
    return per_hypothesis * total_hypotheses, total_hypotheses


def _fig4c_scales(preset: str) -> Tuple[List[int], int]:
    if preset == "paper":
        return [4, 8, 12, 16], 100
    if preset == "tiny":
        return [4], 10
    return [4, 6, 8], 20


@register_probe("fig4c-arms")
def _fig4c_probe(ctx: ProbeContext) -> List[Dict]:
    """Time the four Fig. 4c arms on one trace's A1+A2+P problem."""
    problem = build_problem(ctx.traces[0], TelemetryConfig.from_spec("A1+A2+P"))

    def best_of(fn, repeats=3):
        best = float("inf")
        value = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - t0)
        return best, value

    # The fast arms finish in milliseconds at small sizes; take the
    # best of three runs so timer noise doesn't distort the ratios.
    flock = build_localizer("flock")
    flock_time, flock_pred = best_of(lambda: flock.localize(problem))

    greedy_only = build_localizer("flock-greedy")
    greedy_only_time, _ = best_of(lambda: greedy_only.localize(problem))

    jle_only = build_localizer("sherlock-jle")
    t0 = time.perf_counter()
    jle_only.localize(problem)
    jle_only_time = time.perf_counter() - t0

    sherlock_time, n_hyp = estimate_sherlock_runtime(problem, DEFAULT_PER_PACKET)
    return [
        {
            "scheme": scheme,
            "seconds": seconds,
            "estimated": estimated,
            "hypotheses": n_hyp if scheme == "sherlock"
            else flock_pred.hypotheses_scanned,
        }
        for scheme, seconds, estimated in (
            ("sherlock", sherlock_time, True),
            ("flock-greedy-only", greedy_only_time, False),
            ("flock-jle-only", jle_only_time, False),
            ("flock", flock_time, False),
        )
    ]


@register_experiment(
    "fig4c",
    description="Inference runtime vs topology size (Sherlock / greedy / JLE / Flock)",
    default_seed=23,
    shardable=False,
)
def build_fig4c(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Runtime of Sherlock / greedy-only / JLE-only / Flock vs size."""
    ks, flows_per_server = _fig4c_scales(preset)
    ks = ov.take("ks", ks)
    flows_per_server = ov.take("flows_per_server", flows_per_server)
    points = []
    for k in ks:
        n_servers = len(fat_tree(k).hosts)
        points.append(
            GridPoint(
                topology=TopologySpec("fat-tree", {"k": k}),
                key={"servers": n_servers, "k": k},
                scenario=ScenarioSpec(
                    "silent-link-drops", params={"n_failures": 2}
                ),
                trace=TraceSpec(
                    seeds=(seed + k,),
                    n_passive=n_servers * flows_per_server,
                    n_probes=n_servers * 2,
                ),
                probe=ProbeRef("fig4c-arms"),
            )
        )
    return ExperimentSpec(
        name="fig4c",
        description=(
            "Inference runtime vs topology size: Sherlock (extrapolated), "
            "Flock greedy-only, Flock JLE-only (Sherlock+JLE), Flock"
        ),
        points=points,
        notes=(
            "Paper: Flock >10^4x faster than Sherlock; greedy and JLE "
            "each contribute ~100x"
        ),
    )


# ----------------------------------------------------------------------
# Fig. 4d - end-to-end scheme runtimes
# ----------------------------------------------------------------------


@register_experiment(
    "fig4d",
    description="Scheme runtime across topology sizes",
    default_seed=29,
)
def build_fig4d(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Runtime of every scheme on its input, across topology sizes.

    Build times must be *cold*, per-scheme measurements (the figure
    compares end-to-end scheme cost), so the spec disables the problem
    cache; with one trace per size the grid runs serially regardless of
    the runner, keeping inference timings uncontended.
    """
    if preset == "paper":
        ks, flows_per_server = [8, 12, 16], 100
    elif preset == "tiny":
        ks, flows_per_server = [4], 10
    else:
        ks, flows_per_server = [4, 6, 8], 20
    ks = ov.take("ks", ks)
    flows_per_server = ov.take("flows_per_server", flows_per_server)
    points = []
    for k in ks:
        n_servers = len(fat_tree(k).hosts)
        points.append(
            GridPoint(
                topology=TopologySpec("fat-tree", {"k": k}),
                key={"servers": n_servers, "k": k},
                scenario=ScenarioSpec(
                    "silent-link-drops", params={"n_failures": 2}
                ),
                trace=TraceSpec(
                    seeds=(seed + k,),
                    n_passive=n_servers * flows_per_server,
                    n_probes=n_servers * 2,
                ),
                schemes=(
                    netbouncer_ref("INT"),
                    flock_ref("A1+A2+P"),
                    flock_ref("INT"),
                    netbouncer_ref("A1"),
                    flock_ref("A1"),
                    flock_ref("A2"),
                    v007_ref("A2"),
                ),
            )
        )
    return ExperimentSpec(
        name="fig4d",
        description="Scheme runtime across topology sizes",
        points=points,
        metrics=("seconds", "build_seconds"),
        cache=False,
        notes=(
            "Paper: Flock ~4.5x faster than NetBouncer on the same input; "
            "007 fastest (<1 sec) but least accurate"
        ),
    )


# ----------------------------------------------------------------------
# Fig. 5a/5b - irregular Clos
# ----------------------------------------------------------------------


def omit_grid_seeds(seed: int, index: int, span: int = 1000) -> Tuple[int, int]:
    """(topology-RNG seed, trace base seed) for one omitted-links grid point.

    Derivation is index-based: grid point ``i`` owns the disjoint seed
    block ``[seed + span*i, seed + span*(i+1))``; traces take the low
    slots (``base_seed + j``) and the topology RNG the top slot.  No two
    grid points can collide, and point 0 never collapses both RNGs onto
    the bare experiment seed.  The earlier fraction-*value* derivation
    (``seed + int(fraction * 1000)`` / ``seed + int(fraction * 100)``)
    truncated floats - ``int(0.29 * 100) == 28`` - so seeds shifted or
    collided as the fraction grid changed, and ``fraction=0.0`` reused
    the bare seed for both the topology RNG and the trace batch.
    """
    block = seed + span * index
    return block + span - 1, block


def _omit_points(
    preset: str,
    seed: int,
    fractions: List[float],
    n_traces: int,
    n_passive: int,
    schemes: Tuple[SchemeRef, ...],
    extras: Optional[str] = None,
) -> List[GridPoint]:
    points = []
    for i, fraction in enumerate(fractions):
        topo_seed, base_seed = omit_grid_seeds(seed, i)
        points.append(
            GridPoint(
                topology=TopologySpec(
                    "standard-omit",
                    {"preset": preset, "fraction": fraction, "topo_seed": topo_seed},
                ),
                key={"fraction_omitted": fraction},
                scenario=ScenarioSpec(
                    "silent-link-drops", params={"n_failures": 1}
                ),
                trace=TraceSpec(
                    seeds=_seed_range(base_seed, n_traces),
                    n_passive=n_passive,
                    n_probes=0,
                ),
                schemes=schemes,
                extras=extras,
            )
        )
    return points


@register_experiment(
    "fig5",
    description="Irregular Clos: accuracy vs % links omitted",
    default_seed=31,
)
def build_fig5(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Accuracy vs fraction of omitted links, including Flock (P)."""
    scale = _scale(preset)
    n_traces = ov.take("n_traces", max(4, scale["n_traces"] // 2))
    points = _omit_points(
        preset,
        seed,
        fractions=ov.take("fractions", [0.0, 0.05, 0.10, 0.20]),
        n_traces=n_traces,
        n_passive=ov.take("n_passive", scale["n_passive"]),
        schemes=(
            flock_ref("INT"),
            flock_ref("A2+P"),
            flock_ref("A2"),
            flock_ref("P"),
            netbouncer_ref("INT"),
            v007_ref("A2"),
        ),
    )
    return ExperimentSpec(
        name="fig5",
        description="Irregular Clos: accuracy vs % links omitted",
        points=points,
        notes=(
            "Paper: Flock robust to irregularity; 007 sensitive; "
            "Flock (P) improves as symmetry breaks"
        ),
    )


# ----------------------------------------------------------------------
# Fig. 5c - Flock (P) on a hard, nearly-symmetric scenario
# ----------------------------------------------------------------------


@register_extras("theoretical-max-precision")
def _theoretical_max_extras(topology, routing, traces) -> Dict[str, float]:
    """Mean theoretical max precision from link equivalence classes."""
    classes = link_equivalence_classes(topology, routing)
    max_precisions = [
        theoretical_max_precision(classes, trace.ground_truth.failed_links)
        for trace in traces
    ]
    return {"theoretical_max_precision": float(np.mean(max_precisions))}


@register_experiment(
    "fig5c",
    description="Flock (P) on a hard scenario: symmetric Clos, passive only",
    default_seed=37,
)
def build_fig5c(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Passive-only localization with <5% omitted links (Fig. 5c)."""
    scale = _scale(preset)
    n_traces = ov.take("n_traces", max(4, scale["n_traces"] // 2))
    points = _omit_points(
        preset,
        seed,
        fractions=ov.take("fractions", [0.01, 0.02, 0.03, 0.04]),
        n_traces=n_traces,
        n_passive=ov.take("n_passive", scale["n_passive"]),
        schemes=(flock_ref("P"),),
        extras="theoretical-max-precision",
    )
    return ExperimentSpec(
        name="fig5c",
        description=(
            "Flock (P) on a hard scenario: symmetric Clos, passive only, "
            "with the theoretical max precision from equivalence classes"
        ),
        points=points,
        metrics=("precision", "recall"),
        notes="Paper: >75% recall, >40% precision; theoretical max shown",
    )


# ----------------------------------------------------------------------
# Table 1 - parameter calibration robustness (two-phase)
# ----------------------------------------------------------------------

#: The coarse calibration grid table1 sweeps per environment.
TABLE1_GRID = {
    "pg": [1e-4, 3e-4, 7e-4],
    "pb": [2e-3, 6e-3],
    "rho": [5e-4],
}

_TABLE1_TELEMETRY = "A1+A2+P"


def _table1_workload(preset: str, seed: int):
    """The train batch and the four mismatched test environments.

    Returns ``(train, environments)`` where each entry is
    ``(name, TopologySpec, ScenarioSpec, TraceSpec)``.
    """
    scale = _scale(preset)
    n_traces = max(3, scale["n_traces"] // 2)
    n_passive = scale["n_passive"]
    n_probes = scale["n_probes"]
    standard = TopologySpec("standard", {"preset": preset})

    def drops(**kwargs) -> ScenarioSpec:
        return ScenarioSpec(
            "silent-link-drops", params={"n_failures": 2, **kwargs}
        )

    def batch(name, topology, start_seed, scenario, flows=None, probes=None):
        return (
            name,
            topology,
            scenario,
            TraceSpec(
                seeds=_seed_range(start_seed, n_traces),
                n_passive=flows if flows is not None else n_passive,
                n_probes=probes if probes is not None else n_probes,
            ),
        )

    train = batch("train", standard, seed, drops())
    environments = [
        batch(
            "different_topology", TopologySpec("testbed"), seed + 100, drops(),
            flows=n_passive // 2, probes=0,
        ),
        batch(
            "different_failure_rate", standard, seed + 200,
            drops(min_rate=0.02, max_rate=0.05),
        ),
        batch(
            "different_monitoring_interval", standard, seed + 300, drops(),
            flows=n_passive // 4,
        ),
        batch(
            "different_failure_scenario", standard, seed + 400,
            ScenarioSpec("silent-device-failure", params={"n_devices": 1}),
        ),
    ]
    return train, environments


@register_experiment(
    "table1-calibrate",
    description="Table 1 calibrate phase: parameter-grid accuracy per environment",
    default_seed=41,
    include_in_all=False,
)
def build_table1_calibrate(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Sweep the calibration grid on the train batch and every test
    environment (the "S" calibrations); feed the result rows to
    ``table1-eval`` via ``--set calibration=<result.json>``."""
    train, environments = _table1_workload(preset, seed)
    grid_params = iter_grid(TABLE1_GRID)
    points = []
    for env_name, topology, scenario, trace in [train] + environments:
        points.append(
            GridPoint(
                topology=topology,
                scenario=scenario,
                trace=trace,
                schemes=tuple(
                    SchemeRef(
                        "flock",
                        spec=_TABLE1_TELEMETRY,
                        overrides=params,
                        label=f"candidate[{i}]",
                        key={"environment": env_name, **params},
                    )
                    for i, params in enumerate(grid_params)
                ),
            )
        )
    return ExperimentSpec(
        name="table1-calibrate",
        description=(
            "Table 1 calibrate phase: grid accuracy on the train batch "
            "and each test environment"
        ),
        points=points,
        metrics=("precision", "recall"),
        notes="Feed these rows to table1-eval via --set calibration=PATH",
    )


def _table1_choices(rows: List[Dict]) -> Dict[str, CalibrationPoint]:
    """Apply the section 5.2 operating-point rule per environment."""
    grid_keys = sorted(TABLE1_GRID)
    by_env: Dict[str, List[CalibrationPoint]] = {}
    for row in rows:
        try:
            point = CalibrationPoint(
                params={key: row[key] for key in grid_keys},
                precision=row["precision"],
                recall=row["recall"],
            )
            env = row["environment"]
        except KeyError as exc:
            raise ExperimentError(
                f"calibration row is missing column {exc}; expected rows "
                "from the table1-calibrate experiment"
            ) from None
        by_env.setdefault(env, []).append(point)
    return {
        env: choose_operating_point(points) for env, points in by_env.items()
    }


def _table1_eval_points(
    preset: str,
    seed: int,
    calibration: Optional[str],
    runner: Optional[RunnerConfig],
) -> List[GridPoint]:
    """Build the eval-phase grid from calibrate-phase results.

    ``calibration`` is a path to a saved ``table1-calibrate`` result; if
    ``None``, the calibrate spec runs here (unsharded - spec *building*
    must be identical on every shard worker and on the merge).
    """
    if calibration is not None:
        from .reporting import load_result

        rows = load_result(calibration).rows
    else:
        from .spec import build_experiment_spec, run_spec

        calibrate_spec = build_experiment_spec(
            "table1-calibrate", preset=preset, seed=seed
        )
        rows = run_spec(calibrate_spec, runner).rows
    choices = _table1_choices(rows)
    _, environments = _table1_workload(preset, seed)
    missing = {"train"} | {env[0] for env in environments}
    missing -= set(choices)
    if missing:
        raise ExperimentError(
            f"calibration rows cover no settings for environment(s) "
            f"{sorted(missing)}"
        )
    train_choice = choices["train"]
    points = []
    for env_name, topology, scenario, trace in environments:
        refs = []
        for mode, choice in (("D", train_choice), ("S", choices[env_name])):
            refs.append(
                SchemeRef(
                    "flock",
                    spec=_TABLE1_TELEMETRY,
                    overrides=dict(choice.params),
                    label=f"Flock[{mode}]",
                    key={
                        "scheme": f"Flock ({_TABLE1_TELEMETRY})",
                        "environment": env_name,
                        "mode": mode,
                        "params": dict(choice.params),
                    },
                )
            )
        points.append(
            GridPoint(
                topology=topology,
                scenario=scenario,
                trace=trace,
                schemes=tuple(refs),
            )
        )
    return points


@register_experiment(
    "table1-eval",
    description="Table 1 eval phase: train/test mismatch accuracy (shardable)",
    default_seed=41,
    include_in_all=False,
)
def build_table1_eval(
    preset: str, seed: int, ov: Overrides, runner: Optional[RunnerConfig] = None
) -> ExperimentSpec:
    """Evaluate the D(ifferent) and S(ame) operating points per
    environment.  Pass ``--set calibration=<table1-calibrate result>``
    to skip recomputing the calibrate phase in every worker."""
    points = _table1_eval_points(
        preset, seed, ov.take("calibration"), runner
    )
    return ExperimentSpec(
        name="table1-eval",
        description="Table 1 eval phase: train/test mismatch accuracy",
        points=points,
        notes="Paper: Flock loses <2% accuracy under mismatch; NetBouncer 31%",
    )


@register_experiment(
    "table1",
    description="Parameter-calibration robustness (calibrate + eval phases)",
    default_seed=41,
    shardable=False,
)
def build_table1(
    preset: str, seed: int, ov: Overrides, runner: Optional[RunnerConfig] = None
) -> ExperimentSpec:
    """Train/test environment mismatch (Table 1), both phases in one run.

    The calibrate phase dominates this experiment's cost and runs at
    spec-build time, so sharding ``table1`` itself would repeat it in
    every worker for no gain - use the ``table1-calibrate`` /
    ``table1-eval`` pair to distribute the eval phase.
    """
    points = _table1_eval_points(preset, seed, ov.take("calibration"), runner)
    return ExperimentSpec(
        name="table1",
        description="Parameter-calibration robustness (train vs test mismatch)",
        points=points,
        notes="Paper: Flock loses <2% accuracy under mismatch; NetBouncer 31%",
    )


# ----------------------------------------------------------------------
# Fig. 6 - worked example
# ----------------------------------------------------------------------


@register_probe("fig6-worked-example")
def _fig6_probe(ctx: ProbeContext) -> List[Dict]:
    """The appendix's 5-link, 5-flow example where Flock localizes the
    failed link and 007/NetBouncer do not.

    Topology: hosts S1, S2 under switch I1; hosts D1, D2 under switch
    I2; link I1-I2 between them.  The link I2-D2 silently drops ~5% of
    packets.  Flows S1->D2 and S2->D2 see heavy loss; S1->D1 sees two
    stray drops; the rest are clean.
    """
    topo = ctx.topology

    def path(*nodes):
        return topo.path_components(nodes, include_devices=False)

    observations = [
        # (path_set, packets_sent, bad_packets) - Fig. 6's annotations.
        FlowObservation((path(0, 2, 3, 5),), 10_000, 543),   # S1->D2, lossy
        FlowObservation((path(0, 2, 3, 4),), 10_000, 2),     # S1->D1, 2 drops
        FlowObservation((path(1, 2, 3, 5),), 10_000, 461),   # S2->D2, lossy
        FlowObservation((path(1, 2, 3, 4),), 10_000, 0),     # S2->D1, clean
        FlowObservation((path(0, 2, 1),), 10_000, 0),        # S1->S2, clean
    ]
    problem = InferenceProblem.from_observations(
        observations, n_components=topo.n_components, n_links=topo.n_links
    )
    failed_link = topo.link_id(3, 5)

    params = FlockParams(pg=3e-4, pb=4e-2, rho=5e-4)
    rows = []
    for name, localizer in (
        ("Flock", FlockInference(params)),
        ("007", build_localizer("007", threshold=0.7)),
        ("NetBouncer", build_localizer("netbouncer")),
    ):
        prediction = localizer.localize(problem)
        named = sorted(topo.component_name(c) for c in prediction.components)
        rows.append(
            {
                "scheme": name,
                "predicted": named,
                "correct_only": prediction.components == frozenset({failed_link}),
            }
        )
    return rows


@register_experiment(
    "fig6",
    description="Worked example: Flock pinpoints I2<->D2",
    shardable=False,
)
def build_fig6(preset: str, seed: Optional[int], ov: Overrides) -> ExperimentSpec:
    """The fig6 worked example has no traces, seeds, or preset scaling;
    its observations are the figure's annotations."""
    point = GridPoint(
        topology=TopologySpec("fig6-example"),
        probe=ProbeRef("fig6-worked-example"),
    )
    return ExperimentSpec(
        name="fig6",
        description="Worked example: Flock pinpoints I2<->D2",
        points=[point],
        notes="Paper Fig. 6: 007 -> (I1,I2); NetBouncer -> 2 links; Flock -> (I2,D2)",
    )


# ----------------------------------------------------------------------
# Fig. 8a/8b - parameter sensitivity and priors
# ----------------------------------------------------------------------


@register_experiment(
    "fig8a",
    description="Sensitivity to pg and pb",
    default_seed=43,
)
def build_fig8a(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """F-score over a (pg, pb) grid (Fig. 8a)."""
    scale = _scale(preset)
    n_traces = ov.take("n_traces", scale["n_traces"])
    # One grid point: all settings share the telemetry spec, so each
    # trace's problem is built once for the whole (pg, pb) grid.
    settings = [
        (pg, pb)
        for pg in (1e-4, 3e-4, 5e-4, 7e-4)
        for pb in (2e-3, 4e-3, 6e-3, 1e-2)
    ]
    point = GridPoint(
        topology=TopologySpec("standard", {"preset": preset}),
        scenario=_silent_drops_mixed(seed, max_failures=4),
        trace=TraceSpec(
            seeds=_seed_range(seed, n_traces),
            n_passive=ov.take("n_passive", scale["n_passive"]),
            n_probes=ov.take("n_probes", scale["n_probes"]),
        ),
        schemes=tuple(
            SchemeRef(
                "flock",
                spec="A1+A2+P",
                overrides={"pg": pg, "pb": pb, "rho": 5e-4},
                label=f"Flock pg={pg:g} pb={pb:g}",
                key={"pg": pg, "pb": pb},
            )
            for pg, pb in settings
        ),
    )
    return ExperimentSpec(
        name="fig8a",
        description="Sensitivity to pg and pb",
        points=[point],
        metrics=("fscore", "precision", "recall"),
        notes="Paper: accuracy high over a wide (pg, pb) region",
    )


@register_experiment(
    "fig8b",
    description="Effect of the failure prior rho",
    default_seed=47,
)
def build_fig8b(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Effect of the prior rho on precision/recall (Fig. 8b)."""
    scale = _scale(preset)
    n_traces = ov.take("n_traces", scale["n_traces"])
    rhos = (1e-5, 1e-4, 5e-4, 2e-3, 1e-2)
    point = GridPoint(
        topology=TopologySpec("standard", {"preset": preset}),
        scenario=_silent_drops_mixed(seed, max_failures=4),
        trace=TraceSpec(
            seeds=_seed_range(seed, n_traces),
            n_passive=ov.take("n_passive", scale["n_passive"]),
            n_probes=ov.take("n_probes", scale["n_probes"]),
        ),
        schemes=tuple(
            SchemeRef(
                "flock",
                spec="A1+A2+P",
                overrides={"pg": 3e-4, "pb": 4e-3, "rho": rho},
                label=f"Flock rho={rho:g}",
                key={"rho": rho},
            )
            for rho in rhos
        ),
    )
    return ExperimentSpec(
        name="fig8b",
        description="Effect of the failure prior rho",
        points=[point],
        notes="Paper: larger priors move points right (higher precision)",
    )


# ----------------------------------------------------------------------
# Section 7.8 - hypothesis scan rate
# ----------------------------------------------------------------------


@register_probe("scan-rate")
def _scan_rate_probe(ctx: ProbeContext) -> List[Dict]:
    """Time one full Flock localization on an A1+A2+P problem."""
    trace = ctx.traces[0]
    problem = build_problem(trace, TelemetryConfig.from_spec("A1+A2+P"))
    localizer = build_localizer("flock")
    t0 = time.perf_counter()
    prediction = localizer.localize(problem)
    elapsed = time.perf_counter() - t0
    return [
        {
            "links": ctx.topology.n_links,
            "components": ctx.topology.n_components,
            "flows": problem.total_flows,
            "grouped_flows": problem.n_flows,
            "hypotheses_scanned": prediction.hypotheses_scanned,
            "seconds": elapsed,
            "hypotheses_per_second": prediction.hypotheses_scanned / elapsed,
        }
    ]


@register_experiment(
    "scan-rate",
    description="Flock hypothesis scan rate (section 7.8)",
    default_seed=53,
    shardable=False,
)
def build_scan_rate(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Hypotheses scanned per second by Flock's inference (section 7.8).

    The paper reports ~3.5M hypotheses in 17 s at 88K links / 9.5M
    flows (~200K hypotheses/s in C++ on 40 cores).
    """
    k = {"tiny": 4, "ci": 8, "paper": 16}[preset]
    flows_per_server = {"tiny": 10, "ci": 30, "paper": 150}[preset]
    k = ov.take("k", k)
    flows_per_server = ov.take("flows_per_server", flows_per_server)
    n_servers = len(fat_tree(k).hosts)
    point = GridPoint(
        topology=TopologySpec("fat-tree", {"k": k}),
        scenario=ScenarioSpec("silent-link-drops", params={"n_failures": 4}),
        trace=TraceSpec(
            seeds=(seed,),
            n_passive=n_servers * flows_per_server,
            n_probes=n_servers * 2,
        ),
        probe=ProbeRef("scan-rate"),
    )
    return ExperimentSpec(
        name="scan-rate",
        description="Flock hypothesis scan rate",
        points=[point],
        notes="Paper: ~3.5M hypotheses in 17s at 88K links (C++, 40 cores)",
    )


# ----------------------------------------------------------------------
# Streaming localization monitor
# ----------------------------------------------------------------------


@register_probe("stream-monitor")
def _stream_monitor_probe(ctx: ProbeContext) -> List[Dict]:
    """Replay a chunked incident and monitor it with a sliding window.

    Emits one ``row="cycle"`` line per monitor cycle plus one
    ``row="incident"`` line per ground-truth incident with its
    detection latency.
    """
    from ..simulation.failures import make_scenario
    from ..simulation.stream import replay_stream
    from .stream import StreamMonitor, incident_latencies

    p = ctx.params
    scenario = make_scenario(
        p.get("scenario", "gray-drift"), **dict(p.get("scenario_params", {}))
    )
    seed = int(p.get("seed", 0))
    chunks = replay_stream(
        ctx.topology,
        ctx.routing,
        scenario,
        seed=seed,
        n_chunks=int(p.get("n_chunks", 12)),
        flows_per_chunk=int(p.get("flows_per_chunk", 500)),
        probes_per_chunk=int(p.get("probes_per_chunk", 100)),
        chunk_seconds=float(p.get("chunk_seconds", 1.0)),
        onset_chunk=int(p.get("onset_chunk", 0)),
        clear_chunk=p.get("clear_chunk"),
    )
    monitor = StreamMonitor(
        ctx.topology,
        scheme=str(p.get("scheme", "flock")),
        window=int(p.get("window", 4)),
        warm=bool(p.get("warm", True)),
        seed=seed,
    )
    reports = monitor.run(chunks)
    rows: List[Dict] = [
        {
            "row": "cycle",
            "cycle": r.cycle,
            "t_end": r.t_end,
            "raw_flows": r.raw_flows,
            "grouped_flows": r.grouped_flows,
            "predicted": len(r.prediction.components),
            "truth": len(r.truth),
            "detected": int(r.detected),
            "churn": r.churn,
            "build_seconds": r.build_seconds,
            "localize_seconds": r.localize_seconds,
        }
        for r in reports
    ]
    for incident in incident_latencies(reports):
        rows.append({"row": "incident", **incident})
    return rows


@register_experiment(
    "stream-monitor",
    description="Streaming sliding-window localization of a gray drift",
    default_seed=61,
    shardable=False,
)
def build_stream_monitor(preset: str, seed: int, ov: Overrides) -> ExperimentSpec:
    """Online localization cycles over a chunked gray-drift replay.

    A drifting silent-drop incident turns on mid-stream; the monitor
    folds each chunk into a sliding window, warm-starts the kernels
    from the previous cycle's state, and reports detection latency and
    hypothesis churn per cycle.
    """
    shape = {
        "tiny": {"n_chunks": 8, "flows_per_chunk": 300, "probes_per_chunk": 60},
        "ci": {"n_chunks": 12, "flows_per_chunk": 1_000, "probes_per_chunk": 150},
        "paper": {
            "n_chunks": 24,
            "flows_per_chunk": 50_000,
            "probes_per_chunk": 2_500,
        },
    }[preset]
    window = ov.take("window", {"tiny": 3, "ci": 4, "paper": 8}[preset])
    n_chunks = ov.take("n_chunks", shape["n_chunks"])
    params = {
        "scenario": ov.take("scenario", "gray-drift"),
        "seed": seed,
        "n_chunks": n_chunks,
        "flows_per_chunk": ov.take(
            "flows_per_chunk", shape["flows_per_chunk"]
        ),
        "probes_per_chunk": ov.take(
            "probes_per_chunk", shape["probes_per_chunk"]
        ),
        "window": window,
        "scheme": ov.take("scheme", "flock"),
        "warm": ov.take("warm", True),
        "onset_chunk": ov.take("onset_chunk", n_chunks // 3),
        "clear_chunk": ov.take("clear_chunk", None),
    }
    point = GridPoint(
        topology=TopologySpec("standard", {"preset": preset}),
        key={"scenario": params["scenario"], "window": window},
        probe=ProbeRef("stream-monitor", params=params),
    )
    return ExperimentSpec(
        name="stream-monitor",
        description="Streaming sliding-window localization",
        points=[point],
        notes=(
            "Per-cycle detection/churn rows plus per-incident detection "
            "latency for a mid-stream gray drift"
        ),
    )


# ----------------------------------------------------------------------
# Legacy driver API (thin wrappers over the registry)
# ----------------------------------------------------------------------


def fig2_tradeoff(preset="ci", seed=None, runner=None) -> ExperimentResult:
    return run_experiment("fig2", preset=preset, seed=seed, runner=runner)


def fig2c_device_failures(preset="ci", seed=None, runner=None) -> ExperimentResult:
    return run_experiment("fig2c", preset=preset, seed=seed, runner=runner)


def fig3_snr(preset="ci", seed=None, runner=None) -> ExperimentResult:
    return run_experiment("fig3", preset=preset, seed=seed, runner=runner)


def fig4a_queue_misconfig(preset="ci", seed=None, runner=None) -> ExperimentResult:
    return run_experiment("fig4a", preset=preset, seed=seed, runner=runner)


def fig4b_link_flap(preset="ci", seed=None, runner=None) -> ExperimentResult:
    return run_experiment("fig4b", preset=preset, seed=seed, runner=runner)


def fig4c_runtime(preset="ci", seed=None) -> ExperimentResult:
    return run_experiment("fig4c", preset=preset, seed=seed)


def fig4d_scheme_runtime(preset="ci", seed=None, runner=None) -> ExperimentResult:
    return run_experiment("fig4d", preset=preset, seed=seed, runner=runner)


def fig5_irregular(preset="ci", seed=None, runner=None) -> ExperimentResult:
    return run_experiment("fig5", preset=preset, seed=seed, runner=runner)


def fig5c_passive_hard(preset="ci", seed=None, runner=None) -> ExperimentResult:
    return run_experiment("fig5c", preset=preset, seed=seed, runner=runner)


def table1_robustness(preset="ci", seed=None, runner=None) -> ExperimentResult:
    return run_experiment("table1", preset=preset, seed=seed, runner=runner)


def fig6_worked_example() -> ExperimentResult:
    return run_experiment("fig6")


def fig8a_sensitivity(preset="ci", seed=None, runner=None) -> ExperimentResult:
    return run_experiment("fig8a", preset=preset, seed=seed, runner=runner)


def fig8b_priors(preset="ci", seed=None, runner=None) -> ExperimentResult:
    return run_experiment("fig8b", preset=preset, seed=seed, runner=runner)


def scan_rate(preset="ci", seed=None) -> ExperimentResult:
    return run_experiment("scan-rate", preset=preset, seed=seed)
