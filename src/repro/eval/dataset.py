"""Trace serialization and the open evaluation-suite dataset.

The paper's third contribution is "an open evaluation suite for fault
localization, which includes ... telemetry data for six different fault
scenarios from a simulated data center and a hardware testbed".  This
module serializes traces to a portable JSON format (topology + ground
truth + flow records) and generates that six-scenario dataset, so other
fault-localization projects can consume the same inputs without running
this package's simulator.

Format (one JSON document per trace):

```
{
  "format": "flock-trace-v1",
  "topology": {"names": [...], "roles": [...], "links": [[u, v], ...]},
  "ground_truth": {"failed_links": [...], "failed_devices": [...],
                    "drop_rates": {"<link>": rate, ...}},
  "analysis": "per_packet" | "per_flow",
  "meta": {...},
  "records": [[src, dst, sent, bad, rtt_us, is_probe, [path...]], ...]
}
```

Records are compact positional arrays; RTT is stored in integer
microseconds (the same quantization as the wire codec).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..errors import ExperimentError
from ..routing.ecmp import EcmpRouting
from ..simulation.droprate import DropRatePlan
from ..simulation.failures import (
    Injection,
    LinkFlap,
    NoFailure,
    QueueMisconfig,
    SilentDeviceFailure,
    SilentLinkDrops,
)
from ..topology.base import Topology
from ..topology.clos import three_tier_clos
from ..topology.leafspine import testbed
from ..types import FlowRecord, GroundTruth
from .scenarios import SKEWED, UNIFORM, Trace, make_trace

FORMAT_TAG = "flock-trace-v1"


def trace_to_dict(trace: Trace) -> Dict:
    """Serialize a trace (topology, ground truth, records) to a dict."""
    topo = trace.topology
    truth = trace.ground_truth
    return {
        "format": FORMAT_TAG,
        "topology": {
            "names": list(topo.names),
            "roles": list(topo.roles),
            "links": [list(pair) for pair in topo.links],
        },
        "ground_truth": {
            "failed_links": sorted(truth.failed_links),
            "failed_devices": sorted(truth.failed_devices),
            "drop_rates": {str(k): v for k, v in truth.drop_rates.items()},
        },
        "analysis": trace.injection.analysis,
        "seed": trace.seed,
        "meta": dict(trace.meta),
        "records": [
            [
                r.src, r.dst, r.packets_sent, r.bad_packets,
                int(round(r.rtt_ms * 1000.0)), int(r.is_probe),
                list(r.path),
            ]
            for r in trace.records
        ],
    }


def trace_from_dict(payload: Dict) -> Trace:
    """Rebuild a trace from its serialized form.

    The reconstructed ``Injection`` carries the ground truth and
    analysis mode; the drop-rate plan is restored from the recorded
    per-link rates (healthy links read back as rate 0, which is fine -
    consumers of a dataset never re-simulate it).
    """
    if payload.get("format") != FORMAT_TAG:
        raise ExperimentError(
            f"not a {FORMAT_TAG} document: format={payload.get('format')!r}"
        )
    topo_spec = payload["topology"]
    topology = Topology(
        names=topo_spec["names"],
        roles=topo_spec["roles"],
        links=[tuple(pair) for pair in topo_spec["links"]],
    )
    truth_spec = payload["ground_truth"]
    truth = GroundTruth(
        failed_links=frozenset(truth_spec["failed_links"]),
        failed_devices=frozenset(truth_spec["failed_devices"]),
        drop_rates={int(k): v for k, v in truth_spec["drop_rates"].items()},
    )
    import numpy as np

    rates = np.zeros(topology.n_links)
    for link, rate in truth.drop_rates.items():
        rates[link] = rate
    injection = Injection(
        ground_truth=truth,
        plan=DropRatePlan(topology, rates),
        analysis=payload.get("analysis", "per_packet"),
    )
    records = [
        FlowRecord(
            src=src, dst=dst, packets_sent=sent, bad_packets=bad,
            rtt_ms=rtt_us / 1000.0, is_probe=bool(probe), path=tuple(path),
        )
        for src, dst, sent, bad, rtt_us, probe, path in payload["records"]
    ]
    return Trace(
        topology=topology,
        routing=EcmpRouting(topology),
        injection=injection,
        records=records,
        seed=payload.get("seed", 0),
        meta=payload.get("meta", {}),
    )


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(trace_to_dict(trace), handle)
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace from a JSON file."""
    with Path(path).open() as handle:
        return trace_from_dict(json.load(handle))


def generate_suite(
    output_dir: Union[str, Path],
    seed: int = 2023,
    n_passive: int = 4000,
    n_probes: int = 600,
) -> List[Path]:
    """Generate the paper's six-scenario telemetry dataset.

    Scenarios (section 6.4 + the healthy control):

    1. silent link drops, uniform traffic (simulated Clos)
    2. silent link drops, skewed traffic (simulated Clos)
    3. silent device failure (simulated Clos)
    4. misconfigured WRED queue (testbed leaf-spine)
    5. link flap / latency, per-flow analysis (testbed leaf-spine)
    6. no failure (false-positive control)
    """
    output_dir = Path(output_dir)
    clos = three_tier_clos(
        pods=4, tors_per_pod=4, aggs_per_pod=2,
        core_groups=2, cores_per_group=2, hosts_per_tor=3,
    )
    clos_routing = EcmpRouting(clos)
    lab = testbed()
    lab_routing = EcmpRouting(lab)

    recipes = [
        ("01_silent_drops_uniform", clos, clos_routing,
         SilentLinkDrops(n_failures=3), UNIFORM, n_probes),
        ("02_silent_drops_skewed", clos, clos_routing,
         SilentLinkDrops(n_failures=3), SKEWED, n_probes),
        ("03_device_failure", clos, clos_routing,
         SilentDeviceFailure(n_devices=1), UNIFORM, n_probes),
        ("04_queue_misconfig", lab, lab_routing,
         QueueMisconfig(n_links=1), UNIFORM, 0),
        ("05_link_flap", lab, lab_routing,
         LinkFlap(n_links=1), UNIFORM, 0),
        ("06_no_failure", clos, clos_routing,
         NoFailure(), UNIFORM, n_probes),
    ]
    paths: List[Path] = []
    for i, (name, topo, routing, scenario, traffic, probes) in enumerate(recipes):
        trace = make_trace(
            topo, routing, scenario, seed=seed + i,
            n_passive=n_passive, n_probes=probes, traffic=traffic,
        )
        paths.append(save_trace(trace, output_dir / f"{name}.json"))
    return paths
