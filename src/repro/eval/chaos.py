"""Seeded fault injection for the evaluation fleet and streaming layers.

The fleet's robustness claims - crashed workers don't lose units, late
completions never double-count, corrupted payloads never fold, lock
contention never kills a worker - are only claims until something
hostile exercises them on purpose.  This module is that something: a
deterministic chaos harness that drives a real broker + real workers
(real :func:`~repro.eval.spec.run_spec` executions) under a schedule of
injected faults, on a virtual clock, and asserts the end state.

The pieces:

* :class:`ChaosSpec` - per-fault probabilities (crash at claim, crash
  mid-unit, pre-completion stalls past the lease, ``database is
  locked`` on broker operations, corrupted result payloads, per-worker
  clock skew, chunk-arrival bursts for the stream monitor).
* :class:`ChaosPolicy` - the deterministic per-seed schedule, exposed
  as the exact hook shapes :func:`repro.eval.fleet.work` and
  :class:`repro.eval.broker.Broker` accept (``on_claim`` /
  ``on_executed`` / ``transform_wire`` / ``fault_hook``).  Every
  decision comes from one seeded RNG consumed in execution order, so a
  soak replays bit-identically for the same seed.
* :class:`ChaosClock` - the shared virtual clock.  Workers see skewed
  views of it; stalls and backoff sleeps advance it; lease expiry is
  therefore deterministic too.
* :func:`run_chaos_soak` - submit, run virtual workers under chaos
  until the broker drains (healing attempt-exhausted units via
  ``retry_failed`` and corrupted results via ``verify_results`` along
  the way), then ``collect`` and compare bit-for-bit against a serial
  run of the same experiment.

A simulated worker crash is :class:`WorkerCrash` - deliberately *not*
a :class:`~repro.errors.ReproError`, and raised only from hooks outside
the worker's unit-failure handling, so it escapes ``fleet.work`` with
the lease still held: exactly the wreckage a SIGKILL leaves.
"""

from __future__ import annotations

import sqlite3
import random
import time
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..errors import ChaosError
from ..retry import RetryPolicy
from . import fleet
from .broker import Broker, LeasedUnit
from .spec import run_experiment


class WorkerCrash(Exception):
    """A chaos-simulated worker death (process gone, lease left held)."""


@dataclass(frozen=True)
class ChaosSpec:
    """Per-fault probabilities and magnitudes of one chaos schedule.

    Probabilities are per *opportunity*: ``crash_at_claim`` per claimed
    unit, ``crash_mid_unit``/``stall`` per executed unit, ``db_locked``
    per broker operation, ``corrupt`` per completion payload, ``burst``
    per stream cycle.  ``max_clock_skew`` bounds each virtual worker's
    fixed offset from the shared clock.
    """

    crash_at_claim: float = 0.10
    crash_mid_unit: float = 0.10
    stall: float = 0.10
    db_locked: float = 0.12
    corrupt: float = 0.10
    max_clock_skew: float = 2.0
    burst: float = 0.25
    max_burst: int = 3
    #: Probability (per submission) that the submitter is killed
    #: mid-enqueue, leaving a journaled half-written experiment the
    #: soak must resume with ``--if-exists resume``.
    submit_crash: float = 0.50

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "max_burst":
                if value < 1:
                    raise ChaosError(f"max_burst must be >= 1, got {value}")
            elif value < 0:
                raise ChaosError(f"{f.name} must be >= 0, got {value}")
            elif f.name not in ("max_clock_skew",) and value > 1:
                raise ChaosError(
                    f"{f.name} is a probability and must be <= 1, got {value}"
                )


#: A gentler schedule (smoke tests: a fault or two per soak).
LIGHT = ChaosSpec(
    crash_at_claim=0.05, crash_mid_unit=0.05, stall=0.05,
    db_locked=0.05, corrupt=0.05, max_clock_skew=1.0,
    submit_crash=0.25,
)
#: The default schedule: every fault class fires in a short soak.
DEFAULT = ChaosSpec()
#: A hostile schedule: most units hit at least one fault.
HEAVY = ChaosSpec(
    crash_at_claim=0.25, crash_mid_unit=0.25, stall=0.2,
    db_locked=0.25, corrupt=0.2, max_clock_skew=5.0,
    submit_crash=1.0,
)

PROFILES: Dict[str, ChaosSpec] = {
    "light": LIGHT, "default": DEFAULT, "heavy": HEAVY,
}


class ChaosClock:
    """The soak's shared virtual clock.

    ``sleep`` is handed to workers and the retry policy, so backoff
    delays advance simulated time instead of blocking the test.
    """

    def __init__(self, start: float = 1_000.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ChaosError(f"cannot advance the clock by {seconds}")
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))


class ChaosPolicy:
    """Deterministic per-seed fault schedule, shaped as worker hooks.

    One ``random.Random(seed)`` drives every decision; the soak calls
    hooks in a deterministic order (single-threaded virtual workers),
    so the whole fault schedule - and therefore the whole soak - is a
    pure function of ``(experiment, preset, spec, seed)``.

    ``events`` tallies every injected fault for reporting.
    """

    #: Broker operations eligible for injected lock contention.  Reads
    #: used by the soak driver itself (verify/status) stay clean so the
    #: harness never trips over its own faults.
    FAULTABLE_OPS = ("claim", "complete", "fail", "renew", "counts")

    def __init__(
        self,
        seed: int,
        spec: ChaosSpec = DEFAULT,
        clock: Optional[ChaosClock] = None,
    ) -> None:
        self.seed = seed
        self.spec = spec
        self.clock = clock if clock is not None else ChaosClock()
        self._rng = random.Random(seed)
        # Submitter faults draw from their own seeded stream: adding
        # them must not reshuffle the worker/broker/stream schedules
        # that existing seeds pin down.
        self._submit_rng = random.Random((seed << 1) ^ 0x5AB317)
        self._skews: Dict[str, float] = {}
        #: Set by the soak once the broker exists; stalls scale off it.
        self.lease_seconds: float = 60.0
        self.events: Dict[str, int] = {}
        #: Deterministic backoff jitter, fast virtual delays.
        self.retry = RetryPolicy(
            attempts=8, base_delay=0.05, max_delay=1.0, seed=seed,
        )

    def _hit(self, probability: float, event: str) -> bool:
        roll = self._rng.random() < probability
        if roll:
            self.events[event] = self.events.get(event, 0) + 1
        return roll

    # -- clock ----------------------------------------------------------

    def worker_clock(self, worker: str) -> Callable[[], float]:
        """The shared clock through ``worker``'s fixed skew."""
        if worker not in self._skews:
            skew = self._rng.uniform(
                -self.spec.max_clock_skew, self.spec.max_clock_skew
            )
            self._skews[worker] = skew
            if skew:
                self.events["clock_skew"] = self.events.get("clock_skew", 0) + 1
        skew = self._skews[worker]
        return lambda: self.clock.now() + skew

    # -- submit hook -----------------------------------------------------

    def submit_kill_batch(self) -> Optional[int]:
        """Batch index the submitter dies after, or ``None`` for a
        clean submission.

        A killed submit leaves the experiment journaled in
        ``'enqueueing'`` with only the first batches of units written -
        the soak must then resume it (``if_exists="resume"``) and the
        resumed fleet must still drain bit-identical to serial.
        """
        if not self._submit_rng.random() < self.spec.submit_crash:
            return None
        self.events["submit_crash"] = self.events.get("submit_crash", 0) + 1
        return self._submit_rng.randint(0, 3)

    # -- broker hook ----------------------------------------------------

    def broker_fault(self, op: str) -> None:
        """``Broker.fault_hook``: transient lock contention."""
        if op in self.FAULTABLE_OPS and self._hit(
            self.spec.db_locked, "db_locked"
        ):
            raise sqlite3.OperationalError("database is locked (chaos)")

    # -- worker hooks ----------------------------------------------------

    def on_claim(self, leased: LeasedUnit) -> None:
        """Crash-at-unit: die right after claiming, before executing."""
        if self._hit(self.spec.crash_at_claim, "crash_at_claim"):
            raise WorkerCrash(f"chaos: crashed at claim of unit {leased.unit_id}")

    def on_executed(self, leased: LeasedUnit) -> None:
        """Post-execution faults: mid-unit crash, or a stall that holds
        the completion until after the lease expired."""
        if self._hit(self.spec.crash_mid_unit, "crash_mid_unit"):
            raise WorkerCrash(
                f"chaos: crashed mid-unit holding unit {leased.unit_id}"
            )
        if self._hit(self.spec.stall, "stall"):
            # Past any lease + skew: the late completion must be
            # discarded as stale, never double-counted.
            self.clock.advance(
                self.lease_seconds * 1.5 + 2.0 * self.spec.max_clock_skew
            )

    def corrupt_wire(self, leased: LeasedUnit, wire: str) -> str:
        """``transform_wire``: damage the payload after checksumming."""
        if not self._hit(self.spec.corrupt, "corrupt"):
            return wire
        index = self._rng.randrange(len(wire))
        flipped = "X" if wire[index] != "X" else "Y"
        return wire[:index] + flipped + wire[index + 1:]

    # -- stream hook -----------------------------------------------------

    def arrival_bursts(self, n_chunks: int) -> List[int]:
        """Chunk arrivals per monitor cycle (stream-layer chaos).

        Mostly one chunk per cycle; with probability ``burst`` a cycle
        delivers up to ``max_burst`` chunks at once (its successors
        deliver none), simulating an ingest pipeline that hiccuped and
        dumped its backlog.  Sums to ``n_chunks``.
        """
        arrivals: List[int] = []
        remaining = n_chunks
        while remaining > 0:
            if remaining > 1 and self._hit(self.spec.burst, "burst"):
                size = min(remaining, self._rng.randint(2, self.spec.max_burst))
            else:
                size = 1
            arrivals.append(size)
            remaining -= size
        return arrivals

    def step_seconds(self) -> float:
        """Virtual time between worker passes (keeps leases expiring)."""
        return self._rng.uniform(1.0, 5.0)


@dataclass(frozen=True)
class ChaosSoakReport:
    """Outcome of one seeded soak."""

    experiment: str
    preset: str
    seed: int
    drained: bool
    identical: bool
    rounds: int
    crashes: int
    completed: int
    stale: int
    io_retries: int
    healed_failed: int  #: attempt-exhausted units re-queued mid-soak
    corrupt_requeued: int  #: checksum-failed results re-queued mid-soak
    events: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.drained and self.identical

    def summary(self) -> str:
        events = ", ".join(
            f"{name}={count}" for name, count in sorted(self.events.items())
        ) or "no faults fired"
        verdict = "OK" if self.ok else (
            "DIVERGED" if self.drained else "DID NOT DRAIN"
        )
        return (
            f"seed {self.seed}: {verdict} after {self.rounds} round(s) - "
            f"{self.completed} completion(s), {self.stale} stale, "
            f"{self.crashes} crash(es), {self.io_retries} I/O retr(ies), "
            f"{self.healed_failed} healed, {self.corrupt_requeued} corrupt "
            f"re-queue(s) [{events}]"
        )


def _chaos_submit(policy: ChaosPolicy, broker_path, experiment: str, **kwargs):
    """Submit under the submitter-kill fault.

    When the policy schedules a kill, the first ``fleet.submit`` dies
    (``WorkerCrash`` out of the ``on_batch`` seam, mid-enqueue, small
    batches so the journal is genuinely half-written) and the
    submission is then re-run with ``if_exists="resume"`` - the exact
    operator recovery the runbook prescribes.  A kill scheduled past
    the last batch degenerates into a clean submit followed by a
    no-op resume; both paths end with the experiment ``'ready'``.
    """
    kill_after = policy.submit_kill_batch()
    if kill_after is None:
        return fleet.submit(broker_path, experiment, **kwargs)

    def bomb(batch_index: int, enqueued: int) -> None:
        if batch_index >= kill_after:
            raise WorkerCrash(
                f"chaos: submitter killed after batch {batch_index} "
                f"({enqueued} unit(s) enqueued)"
            )

    try:
        fleet.submit(
            broker_path, experiment, on_batch=bomb, batch_size=2, **kwargs
        )
    except WorkerCrash:
        pass
    return fleet.submit(
        broker_path, experiment, if_exists="resume", batch_size=2, **kwargs
    )


def run_chaos_soak(
    experiment: str = "fig2",
    preset: str = "tiny",
    seed: int = 0,
    spec: ChaosSpec = DEFAULT,
    workdir=None,
    unit_traces: int = 2,
    n_workers: int = 3,
    lease_seconds: float = 30.0,
    max_attempts: int = 10,
    max_rounds: int = 300,
    serial_rows=None,
    strict: bool = True,
) -> ChaosSoakReport:
    """One seeded chaos soak: fleet under fault injection vs. serial.

    Submits ``experiment`` to a fresh broker under ``workdir``, then
    round-robins ``n_workers`` virtual workers (each a real
    :func:`fleet.work` pass on a skewed view of one virtual clock)
    under ``spec``'s fault schedule until the fleet drains.  Two heal
    steps run along the way, both part of the contract being tested:
    attempt-exhausted units (chaos can legitimately burn a bounded
    attempt budget) go back through ``retry_failed``, and
    checksum-failed results are re-queued by ``verify_results``.

    Finally ``collect`` folds the fleet's results and the report says
    whether they are bit-identical to ``serial_rows`` (computed here
    when not supplied).  With ``strict`` (default) a non-draining or
    diverging soak raises :class:`ChaosError`; tests pass
    ``strict=False`` to inspect the report.
    """
    if workdir is None:
        raise ChaosError("run_chaos_soak needs a workdir for the broker file")
    if n_workers < 1:
        raise ChaosError(f"n_workers must be >= 1, got {n_workers}")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    # A fresh broker per soak, even when one workdir hosts the same
    # seed under several specs (brokers refuse to be resubmitted).
    stem = f"chaos-{experiment}-{preset}-{seed}"
    broker_path = workdir / f"{stem}.db"
    attempt = 0
    while broker_path.exists():
        attempt += 1
        broker_path = workdir / f"{stem}-{attempt}.db"

    clock = ChaosClock()
    policy = ChaosPolicy(seed, spec, clock)
    policy.lease_seconds = lease_seconds

    _chaos_submit(
        policy, broker_path, experiment, preset=preset,
        unit_traces=unit_traces, lease_seconds=lease_seconds,
        max_attempts=max_attempts,
    )

    crashes = completed = stale = io_retries = 0
    healed_failed = corrupt_requeued = 0
    rounds = 0
    drained = False
    while rounds < max_rounds:
        rounds += 1
        for index in range(n_workers):
            worker_id = f"chaos-w{index}"
            try:
                report = fleet.work(
                    broker_path,
                    worker_id=worker_id,
                    max_units=1,
                    wait=False,
                    sleep=clock.sleep,
                    clock=policy.worker_clock(worker_id),
                    heartbeat_seconds=0,  # virtual clock: no ticker thread
                    retry=policy.retry,
                    fault_hook=policy.broker_fault,
                    on_claim=policy.on_claim,
                    on_executed=policy.on_executed,
                    transform_wire=policy.corrupt_wire,
                )
            except WorkerCrash:
                crashes += 1
            except sqlite3.OperationalError:
                # Backoff budget exhausted under injected contention:
                # the worker dies, the fleet survives (that's the test).
                crashes += 1
            else:
                completed += report.completed
                stale += report.stale
                io_retries += report.io_retries
            clock.advance(policy.step_seconds())
        with Broker.open(broker_path) as broker:
            counts = broker.counts()
            if counts.pending == 0 and counts.leased == 0:
                if counts.failed:
                    healed_failed += broker.retry_failed()
                    continue
                requeued = broker.verify_results()
                if requeued:
                    corrupt_requeued += len(requeued)
                    continue
                drained = True
        if drained:
            break
        # Let outstanding (crashed workers') leases expire.
        clock.advance(policy.step_seconds())

    identical = False
    if drained:
        if serial_rows is None:
            serial_rows = run_experiment(experiment, preset=preset).rows
        collected = fleet.collect(broker_path)
        identical = collected.rows == serial_rows

    report = ChaosSoakReport(
        experiment=experiment, preset=preset, seed=seed,
        drained=drained, identical=identical, rounds=rounds,
        crashes=crashes, completed=completed, stale=stale,
        io_retries=io_retries, healed_failed=healed_failed,
        corrupt_requeued=corrupt_requeued, events=dict(policy.events),
    )
    if strict and not report.ok:
        raise ChaosError(f"chaos soak failed: {report.summary()}")
    return report


@dataclass(frozen=True)
class MultiSoakReport:
    """Outcome of one seeded multi-experiment soak."""

    experiment: str
    preset: str
    seed: int
    names: tuple  #: (low-priority name, high-priority name)
    first_claimed: str  #: experiment name of the first successful claim
    drained: bool
    identical: bool  #: both experiments collected bit-identical to serial
    rounds: int
    crashes: int
    completed: int
    events: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.drained and self.identical and (
            self.first_claimed == self.names[1]
        )

    def summary(self) -> str:
        events = ", ".join(
            f"{name}={count}" for name, count in sorted(self.events.items())
        ) or "no faults fired"
        verdict = "OK" if self.ok else (
            "WRONG PRIORITY" if self.drained and self.identical
            else ("DIVERGED" if self.drained else "DID NOT DRAIN")
        )
        return (
            f"seed {self.seed} [multi]: {verdict} after {self.rounds} "
            f"round(s) - {'+'.join(self.names)} shared {self.completed} "
            f"completion(s), {self.crashes} crash(es), first claim from "
            f"{self.first_claimed or '-'} [{events}]"
        )


def run_multi_soak(
    experiment: str = "fig2",
    preset: str = "tiny",
    seed: int = 0,
    spec: ChaosSpec = DEFAULT,
    workdir=None,
    unit_traces: int = 2,
    n_workers: int = 3,
    lease_seconds: float = 30.0,
    max_attempts: int = 10,
    max_rounds: int = 400,
    serial_rows_pair=None,
    strict: bool = True,
) -> MultiSoakReport:
    """Two experiments, mixed priorities, one broker, shared workers.

    ``experiment`` is submitted twice into one broker file - a
    low-priority arm at the registry seed and a high-priority arm
    (priority 5) at a shifted seed, both through the submitter-kill
    fault - then the usual chaos workers drain the broker with **no**
    ``--experiment`` filter: the priority-then-FIFO claim order is part
    of what is under test (the first successful claim must come from
    the high-priority arm while it has pending units).  Healing runs
    per experiment; after draining, each arm is collected separately
    and compared bit-for-bit against its own serial run.
    """
    if workdir is None:
        raise ChaosError("run_multi_soak needs a workdir for the broker file")
    if n_workers < 1:
        raise ChaosError(f"n_workers must be >= 1, got {n_workers}")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    stem = f"chaos-multi-{experiment}-{preset}-{seed}"
    broker_path = workdir / f"{stem}.db"
    attempt = 0
    while broker_path.exists():
        attempt += 1
        broker_path = workdir / f"{stem}-{attempt}.db"

    clock = ChaosClock()
    policy = ChaosPolicy(seed, spec, clock)
    policy.lease_seconds = lease_seconds
    name_lo = f"{experiment}-lo"
    name_hi = f"{experiment}-hi"
    seed_hi = 101 + seed

    common = dict(
        preset=preset, unit_traces=unit_traces,
        lease_seconds=lease_seconds, max_attempts=max_attempts,
    )
    _chaos_submit(
        policy, broker_path, experiment, name=name_lo, priority=0, **common,
    )
    _chaos_submit(
        policy, broker_path, experiment, name=name_hi, priority=5,
        seed=seed_hi, **common,
    )

    first_claimed = ""

    def spy_claim(leased: LeasedUnit) -> None:
        nonlocal first_claimed
        if not first_claimed:
            first_claimed = leased.experiment
        policy.on_claim(leased)

    crashes = completed = 0
    rounds = 0
    drained = False
    while rounds < max_rounds:
        rounds += 1
        for index in range(n_workers):
            worker_id = f"chaos-w{index}"
            try:
                report = fleet.work(
                    broker_path,
                    worker_id=worker_id,
                    max_units=1,
                    wait=False,
                    sleep=clock.sleep,
                    clock=policy.worker_clock(worker_id),
                    heartbeat_seconds=0,
                    retry=policy.retry,
                    fault_hook=policy.broker_fault,
                    on_claim=spy_claim,
                    on_executed=policy.on_executed,
                    transform_wire=policy.corrupt_wire,
                )
            except (WorkerCrash, sqlite3.OperationalError):
                crashes += 1
            else:
                completed += report.completed
            clock.advance(policy.step_seconds())
        with Broker.open(broker_path) as broker:
            counts = broker.counts()
            if counts.pending == 0 and counts.leased == 0:
                if counts.failed:
                    broker.retry_failed()
                    continue
                if broker.verify_results():
                    continue
                drained = True
        if drained:
            break
        clock.advance(policy.step_seconds())

    identical = False
    if drained:
        if serial_rows_pair is None:
            serial_rows_pair = (
                run_experiment(experiment, preset=preset).rows,
                run_experiment(experiment, preset=preset, seed=seed_hi).rows,
            )
        identical = (
            fleet.collect(broker_path, experiment=name_lo).rows
            == serial_rows_pair[0]
            and fleet.collect(broker_path, experiment=name_hi).rows
            == serial_rows_pair[1]
        )

    report = MultiSoakReport(
        experiment=experiment, preset=preset, seed=seed,
        names=(name_lo, name_hi), first_claimed=first_claimed,
        drained=drained, identical=identical, rounds=rounds,
        crashes=crashes, completed=completed, events=dict(policy.events),
    )
    if strict and not report.ok:
        raise ChaosError(f"multi-experiment soak failed: {report.summary()}")
    return report


@dataclass(frozen=True)
class StreamSoakReport:
    """Outcome of one seeded stream crash/resume soak."""

    scenario: str
    preset: str
    seed: int
    crash_cycle: Optional[int]  #: cycle the monitor was killed after
    cycles: int  #: cycles the crash+resume run produced in total
    identical: bool  #: wire-form reports bit-identical to uninterrupted
    events: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.identical

    def summary(self) -> str:
        events = ", ".join(
            f"{name}={count}" for name, count in sorted(self.events.items())
        ) or "no faults fired"
        verdict = "OK" if self.ok else "DIVERGED"
        crash = (
            "no crash scheduled" if self.crash_cycle is None
            else f"killed after cycle {self.crash_cycle}"
        )
        return (
            f"seed {self.seed} [stream]: {verdict} - {crash}, "
            f"{self.cycles} cycle(s) total [{events}]"
        )


def run_stream_soak(
    scenario: str = "gray-drift",
    preset: str = "tiny",
    seed: int = 0,
    spec: ChaosSpec = DEFAULT,
    workdir=None,
    n_cycles: int = 8,
    window: int = 3,
    flows_per_chunk: int = 300,
    probes_per_chunk: int = 60,
    scheme: str = "flock",
    strict: bool = True,
) -> StreamSoakReport:
    """Stream crash/resume under bursty arrivals, vs. uninterrupted.

    One seeded arrival schedule (bursts shed and coalesce chunks, the
    stream-layer faults) drives two runs of the same incident: an
    uninterrupted monitor, and a monitor that checkpoints every cycle,
    is abandoned after a seeded crash cycle, and is restored from its
    checkpoint file in a fresh "process" (fresh topology, fresh
    PathSpace, regenerated chunks).  Every cycle report - before and
    after the crash - must be bit-identical in wire form to the
    uninterrupted run's.  Budgets stay off: the budget ladder is
    wall-clock dependent by design and can never be bit-stable.
    """
    from . import experiments
    from ..routing.ecmp import EcmpRouting
    from ..simulation.failures import make_scenario
    from ..simulation.stream import replay_stream
    from .serialize import cycle_report_to_wire, decode_stream_checkpoint
    from .stream import StreamMonitor

    if workdir is None:
        raise ChaosError(
            "run_stream_soak needs a workdir for the checkpoint file"
        )
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    checkpoint = workdir / f"chaos-stream-{scenario}-{preset}-{seed}.ckpt"

    def build():
        topology = experiments.standard_topology(preset)
        routing = EcmpRouting(topology)
        chunks = replay_stream(
            topology, routing, make_scenario(scenario), seed=seed,
            n_chunks=n_cycles, flows_per_chunk=flows_per_chunk,
            probes_per_chunk=probes_per_chunk, onset_chunk=n_cycles // 3,
            clear_chunk=None,
        )
        return topology, list(chunks)

    policy = ChaosPolicy(seed, spec)
    schedule = policy.arrival_bursts(n_cycles)
    groups: List[tuple] = []
    cursor = 0
    for count in schedule:
        groups.append((cursor, cursor + count))
        cursor += count
    crash_cycle: Optional[int] = (
        policy._rng.randint(1, len(groups) - 1) if len(groups) > 1 else None
    )
    if crash_cycle is not None:
        policy.events["stream_crash"] = 1

    # Uninterrupted baseline.
    topology, chunks = build()
    monitor = StreamMonitor(topology, scheme=scheme, window=window, seed=seed)
    baseline = [
        cycle_report_to_wire(monitor.pump(chunks[a:b])) for a, b in groups
    ]

    # Crash run: checkpoint every cycle, die after ``crash_cycle``.
    topology, chunks = build()
    monitor = StreamMonitor(
        topology, scheme=scheme, window=window, seed=seed,
        checkpoint_path=str(checkpoint), checkpoint_every=1,
    )
    reports = []
    survived = groups if crash_cycle is None else groups[:crash_cycle]
    for a, b in survived:
        reports.append(cycle_report_to_wire(monitor.pump(chunks[a:b])))

    if crash_cycle is not None:
        # The "crash": the monitor object is abandoned; everything
        # below runs against fresh objects, as a new process would.
        del monitor
        topology, chunks = build()
        with open(checkpoint, "r", encoding="utf-8") as handle:
            payload = decode_stream_checkpoint(handle.read())
        monitor = StreamMonitor.from_checkpoint(payload, topology, chunks)
        for a, b in groups[crash_cycle:]:
            reports.append(cycle_report_to_wire(monitor.pump(chunks[a:b])))

    identical = reports == baseline
    report = StreamSoakReport(
        scenario=scenario, preset=preset, seed=seed,
        crash_cycle=crash_cycle, cycles=len(reports), identical=identical,
        events=dict(policy.events),
    )
    if strict and not report.ok:
        raise ChaosError(f"stream soak failed: {report.summary()}")
    return report


def run_chaos_suite(
    experiment: str = "fig2",
    preset: str = "tiny",
    seeds=range(3),
    spec: ChaosSpec = DEFAULT,
    workdir=None,
    strict: bool = True,
    echo: Optional[Callable[[str], None]] = None,
    **soak_kwargs,
) -> List[ChaosSoakReport]:
    """Run :func:`run_chaos_soak` across seeds with one shared serial
    baseline; returns the per-seed reports (``echo`` streams summaries,
    e.g. ``print`` from the CLI)."""
    serial_rows = run_experiment(experiment, preset=preset).rows
    reports = []
    for seed in seeds:
        report = run_chaos_soak(
            experiment=experiment, preset=preset, seed=seed, spec=spec,
            workdir=workdir, serial_rows=serial_rows, strict=strict,
            **soak_kwargs,
        )
        if echo is not None:
            echo(report.summary())
        reports.append(report)
    return reports


__all__ = [
    "DEFAULT",
    "HEAVY",
    "LIGHT",
    "PROFILES",
    "ChaosClock",
    "ChaosPolicy",
    "ChaosSoakReport",
    "ChaosSpec",
    "MultiSoakReport",
    "StreamSoakReport",
    "WorkerCrash",
    "run_chaos_soak",
    "run_chaos_suite",
    "run_multi_soak",
    "run_stream_soak",
]
