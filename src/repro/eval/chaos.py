"""Seeded fault injection for the evaluation fleet and streaming layers.

The fleet's robustness claims - crashed workers don't lose units, late
completions never double-count, corrupted payloads never fold, lock
contention never kills a worker - are only claims until something
hostile exercises them on purpose.  This module is that something: a
deterministic chaos harness that drives a real broker + real workers
(real :func:`~repro.eval.spec.run_spec` executions) under a schedule of
injected faults, on a virtual clock, and asserts the end state.

The pieces:

* :class:`ChaosSpec` - per-fault probabilities (crash at claim, crash
  mid-unit, pre-completion stalls past the lease, ``database is
  locked`` on broker operations, corrupted result payloads, per-worker
  clock skew, chunk-arrival bursts for the stream monitor).
* :class:`ChaosPolicy` - the deterministic per-seed schedule, exposed
  as the exact hook shapes :func:`repro.eval.fleet.work` and
  :class:`repro.eval.broker.Broker` accept (``on_claim`` /
  ``on_executed`` / ``transform_wire`` / ``fault_hook``).  Every
  decision comes from one seeded RNG consumed in execution order, so a
  soak replays bit-identically for the same seed.
* :class:`ChaosClock` - the shared virtual clock.  Workers see skewed
  views of it; stalls and backoff sleeps advance it; lease expiry is
  therefore deterministic too.
* :func:`run_chaos_soak` - submit, run virtual workers under chaos
  until the broker drains (healing attempt-exhausted units via
  ``retry_failed`` and corrupted results via ``verify_results`` along
  the way), then ``collect`` and compare bit-for-bit against a serial
  run of the same experiment.

A simulated worker crash is :class:`WorkerCrash` - deliberately *not*
a :class:`~repro.errors.ReproError`, and raised only from hooks outside
the worker's unit-failure handling, so it escapes ``fleet.work`` with
the lease still held: exactly the wreckage a SIGKILL leaves.
"""

from __future__ import annotations

import sqlite3
import random
import time
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..errors import ChaosError
from ..retry import RetryPolicy
from . import fleet
from .broker import Broker, LeasedUnit
from .spec import run_experiment


class WorkerCrash(Exception):
    """A chaos-simulated worker death (process gone, lease left held)."""


@dataclass(frozen=True)
class ChaosSpec:
    """Per-fault probabilities and magnitudes of one chaos schedule.

    Probabilities are per *opportunity*: ``crash_at_claim`` per claimed
    unit, ``crash_mid_unit``/``stall`` per executed unit, ``db_locked``
    per broker operation, ``corrupt`` per completion payload, ``burst``
    per stream cycle.  ``max_clock_skew`` bounds each virtual worker's
    fixed offset from the shared clock.
    """

    crash_at_claim: float = 0.10
    crash_mid_unit: float = 0.10
    stall: float = 0.10
    db_locked: float = 0.12
    corrupt: float = 0.10
    max_clock_skew: float = 2.0
    burst: float = 0.25
    max_burst: int = 3

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "max_burst":
                if value < 1:
                    raise ChaosError(f"max_burst must be >= 1, got {value}")
            elif value < 0:
                raise ChaosError(f"{f.name} must be >= 0, got {value}")
            elif f.name not in ("max_clock_skew",) and value > 1:
                raise ChaosError(
                    f"{f.name} is a probability and must be <= 1, got {value}"
                )


#: A gentler schedule (smoke tests: a fault or two per soak).
LIGHT = ChaosSpec(
    crash_at_claim=0.05, crash_mid_unit=0.05, stall=0.05,
    db_locked=0.05, corrupt=0.05, max_clock_skew=1.0,
)
#: The default schedule: every fault class fires in a short soak.
DEFAULT = ChaosSpec()
#: A hostile schedule: most units hit at least one fault.
HEAVY = ChaosSpec(
    crash_at_claim=0.25, crash_mid_unit=0.25, stall=0.2,
    db_locked=0.25, corrupt=0.2, max_clock_skew=5.0,
)

PROFILES: Dict[str, ChaosSpec] = {
    "light": LIGHT, "default": DEFAULT, "heavy": HEAVY,
}


class ChaosClock:
    """The soak's shared virtual clock.

    ``sleep`` is handed to workers and the retry policy, so backoff
    delays advance simulated time instead of blocking the test.
    """

    def __init__(self, start: float = 1_000.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ChaosError(f"cannot advance the clock by {seconds}")
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))


class ChaosPolicy:
    """Deterministic per-seed fault schedule, shaped as worker hooks.

    One ``random.Random(seed)`` drives every decision; the soak calls
    hooks in a deterministic order (single-threaded virtual workers),
    so the whole fault schedule - and therefore the whole soak - is a
    pure function of ``(experiment, preset, spec, seed)``.

    ``events`` tallies every injected fault for reporting.
    """

    #: Broker operations eligible for injected lock contention.  Reads
    #: used by the soak driver itself (verify/status) stay clean so the
    #: harness never trips over its own faults.
    FAULTABLE_OPS = ("claim", "complete", "fail", "renew", "counts")

    def __init__(
        self,
        seed: int,
        spec: ChaosSpec = DEFAULT,
        clock: Optional[ChaosClock] = None,
    ) -> None:
        self.seed = seed
        self.spec = spec
        self.clock = clock if clock is not None else ChaosClock()
        self._rng = random.Random(seed)
        self._skews: Dict[str, float] = {}
        #: Set by the soak once the broker exists; stalls scale off it.
        self.lease_seconds: float = 60.0
        self.events: Dict[str, int] = {}
        #: Deterministic backoff jitter, fast virtual delays.
        self.retry = RetryPolicy(
            attempts=8, base_delay=0.05, max_delay=1.0, seed=seed,
        )

    def _hit(self, probability: float, event: str) -> bool:
        roll = self._rng.random() < probability
        if roll:
            self.events[event] = self.events.get(event, 0) + 1
        return roll

    # -- clock ----------------------------------------------------------

    def worker_clock(self, worker: str) -> Callable[[], float]:
        """The shared clock through ``worker``'s fixed skew."""
        if worker not in self._skews:
            skew = self._rng.uniform(
                -self.spec.max_clock_skew, self.spec.max_clock_skew
            )
            self._skews[worker] = skew
            if skew:
                self.events["clock_skew"] = self.events.get("clock_skew", 0) + 1
        skew = self._skews[worker]
        return lambda: self.clock.now() + skew

    # -- broker hook ----------------------------------------------------

    def broker_fault(self, op: str) -> None:
        """``Broker.fault_hook``: transient lock contention."""
        if op in self.FAULTABLE_OPS and self._hit(
            self.spec.db_locked, "db_locked"
        ):
            raise sqlite3.OperationalError("database is locked (chaos)")

    # -- worker hooks ----------------------------------------------------

    def on_claim(self, leased: LeasedUnit) -> None:
        """Crash-at-unit: die right after claiming, before executing."""
        if self._hit(self.spec.crash_at_claim, "crash_at_claim"):
            raise WorkerCrash(f"chaos: crashed at claim of unit {leased.unit_id}")

    def on_executed(self, leased: LeasedUnit) -> None:
        """Post-execution faults: mid-unit crash, or a stall that holds
        the completion until after the lease expired."""
        if self._hit(self.spec.crash_mid_unit, "crash_mid_unit"):
            raise WorkerCrash(
                f"chaos: crashed mid-unit holding unit {leased.unit_id}"
            )
        if self._hit(self.spec.stall, "stall"):
            # Past any lease + skew: the late completion must be
            # discarded as stale, never double-counted.
            self.clock.advance(
                self.lease_seconds * 1.5 + 2.0 * self.spec.max_clock_skew
            )

    def corrupt_wire(self, leased: LeasedUnit, wire: str) -> str:
        """``transform_wire``: damage the payload after checksumming."""
        if not self._hit(self.spec.corrupt, "corrupt"):
            return wire
        index = self._rng.randrange(len(wire))
        flipped = "X" if wire[index] != "X" else "Y"
        return wire[:index] + flipped + wire[index + 1:]

    # -- stream hook -----------------------------------------------------

    def arrival_bursts(self, n_chunks: int) -> List[int]:
        """Chunk arrivals per monitor cycle (stream-layer chaos).

        Mostly one chunk per cycle; with probability ``burst`` a cycle
        delivers up to ``max_burst`` chunks at once (its successors
        deliver none), simulating an ingest pipeline that hiccuped and
        dumped its backlog.  Sums to ``n_chunks``.
        """
        arrivals: List[int] = []
        remaining = n_chunks
        while remaining > 0:
            if remaining > 1 and self._hit(self.spec.burst, "burst"):
                size = min(remaining, self._rng.randint(2, self.spec.max_burst))
            else:
                size = 1
            arrivals.append(size)
            remaining -= size
        return arrivals

    def step_seconds(self) -> float:
        """Virtual time between worker passes (keeps leases expiring)."""
        return self._rng.uniform(1.0, 5.0)


@dataclass(frozen=True)
class ChaosSoakReport:
    """Outcome of one seeded soak."""

    experiment: str
    preset: str
    seed: int
    drained: bool
    identical: bool
    rounds: int
    crashes: int
    completed: int
    stale: int
    io_retries: int
    healed_failed: int  #: attempt-exhausted units re-queued mid-soak
    corrupt_requeued: int  #: checksum-failed results re-queued mid-soak
    events: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.drained and self.identical

    def summary(self) -> str:
        events = ", ".join(
            f"{name}={count}" for name, count in sorted(self.events.items())
        ) or "no faults fired"
        verdict = "OK" if self.ok else (
            "DIVERGED" if self.drained else "DID NOT DRAIN"
        )
        return (
            f"seed {self.seed}: {verdict} after {self.rounds} round(s) - "
            f"{self.completed} completion(s), {self.stale} stale, "
            f"{self.crashes} crash(es), {self.io_retries} I/O retr(ies), "
            f"{self.healed_failed} healed, {self.corrupt_requeued} corrupt "
            f"re-queue(s) [{events}]"
        )


def run_chaos_soak(
    experiment: str = "fig2",
    preset: str = "tiny",
    seed: int = 0,
    spec: ChaosSpec = DEFAULT,
    workdir=None,
    unit_traces: int = 2,
    n_workers: int = 3,
    lease_seconds: float = 30.0,
    max_attempts: int = 10,
    max_rounds: int = 300,
    serial_rows=None,
    strict: bool = True,
) -> ChaosSoakReport:
    """One seeded chaos soak: fleet under fault injection vs. serial.

    Submits ``experiment`` to a fresh broker under ``workdir``, then
    round-robins ``n_workers`` virtual workers (each a real
    :func:`fleet.work` pass on a skewed view of one virtual clock)
    under ``spec``'s fault schedule until the fleet drains.  Two heal
    steps run along the way, both part of the contract being tested:
    attempt-exhausted units (chaos can legitimately burn a bounded
    attempt budget) go back through ``retry_failed``, and
    checksum-failed results are re-queued by ``verify_results``.

    Finally ``collect`` folds the fleet's results and the report says
    whether they are bit-identical to ``serial_rows`` (computed here
    when not supplied).  With ``strict`` (default) a non-draining or
    diverging soak raises :class:`ChaosError`; tests pass
    ``strict=False`` to inspect the report.
    """
    if workdir is None:
        raise ChaosError("run_chaos_soak needs a workdir for the broker file")
    if n_workers < 1:
        raise ChaosError(f"n_workers must be >= 1, got {n_workers}")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    # A fresh broker per soak, even when one workdir hosts the same
    # seed under several specs (brokers refuse to be resubmitted).
    stem = f"chaos-{experiment}-{preset}-{seed}"
    broker_path = workdir / f"{stem}.db"
    attempt = 0
    while broker_path.exists():
        attempt += 1
        broker_path = workdir / f"{stem}-{attempt}.db"

    clock = ChaosClock()
    policy = ChaosPolicy(seed, spec, clock)
    policy.lease_seconds = lease_seconds

    fleet.submit(
        broker_path, experiment, preset=preset, unit_traces=unit_traces,
        lease_seconds=lease_seconds, max_attempts=max_attempts,
    )

    crashes = completed = stale = io_retries = 0
    healed_failed = corrupt_requeued = 0
    rounds = 0
    drained = False
    while rounds < max_rounds:
        rounds += 1
        for index in range(n_workers):
            worker_id = f"chaos-w{index}"
            try:
                report = fleet.work(
                    broker_path,
                    worker_id=worker_id,
                    max_units=1,
                    wait=False,
                    sleep=clock.sleep,
                    clock=policy.worker_clock(worker_id),
                    heartbeat_seconds=0,  # virtual clock: no ticker thread
                    retry=policy.retry,
                    fault_hook=policy.broker_fault,
                    on_claim=policy.on_claim,
                    on_executed=policy.on_executed,
                    transform_wire=policy.corrupt_wire,
                )
            except WorkerCrash:
                crashes += 1
            except sqlite3.OperationalError:
                # Backoff budget exhausted under injected contention:
                # the worker dies, the fleet survives (that's the test).
                crashes += 1
            else:
                completed += report.completed
                stale += report.stale
                io_retries += report.io_retries
            clock.advance(policy.step_seconds())
        with Broker.open(broker_path) as broker:
            counts = broker.counts()
            if counts.pending == 0 and counts.leased == 0:
                if counts.failed:
                    healed_failed += broker.retry_failed()
                    continue
                requeued = broker.verify_results()
                if requeued:
                    corrupt_requeued += len(requeued)
                    continue
                drained = True
        if drained:
            break
        # Let outstanding (crashed workers') leases expire.
        clock.advance(policy.step_seconds())

    identical = False
    if drained:
        if serial_rows is None:
            serial_rows = run_experiment(experiment, preset=preset).rows
        collected = fleet.collect(broker_path)
        identical = collected.rows == serial_rows

    report = ChaosSoakReport(
        experiment=experiment, preset=preset, seed=seed,
        drained=drained, identical=identical, rounds=rounds,
        crashes=crashes, completed=completed, stale=stale,
        io_retries=io_retries, healed_failed=healed_failed,
        corrupt_requeued=corrupt_requeued, events=dict(policy.events),
    )
    if strict and not report.ok:
        raise ChaosError(f"chaos soak failed: {report.summary()}")
    return report


def run_chaos_suite(
    experiment: str = "fig2",
    preset: str = "tiny",
    seeds=range(3),
    spec: ChaosSpec = DEFAULT,
    workdir=None,
    strict: bool = True,
    echo: Optional[Callable[[str], None]] = None,
    **soak_kwargs,
) -> List[ChaosSoakReport]:
    """Run :func:`run_chaos_soak` across seeds with one shared serial
    baseline; returns the per-seed reports (``echo`` streams summaries,
    e.g. ``print`` from the CLI)."""
    serial_rows = run_experiment(experiment, preset=preset).rows
    reports = []
    for seed in seeds:
        report = run_chaos_soak(
            experiment=experiment, preset=preset, seed=seed, spec=spec,
            workdir=workdir, serial_rows=serial_rows, strict=strict,
            **soak_kwargs,
        )
        if echo is not None:
            echo(report.summary())
        reports.append(report)
    return reports


__all__ = [
    "DEFAULT",
    "HEAVY",
    "LIGHT",
    "PROFILES",
    "ChaosClock",
    "ChaosPolicy",
    "ChaosSoakReport",
    "ChaosSpec",
    "WorkerCrash",
    "run_chaos_soak",
    "run_chaos_suite",
]
