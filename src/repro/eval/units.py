"""Work-unit model for distributed evaluation.

A registered experiment's evaluation is a pure function of its spec:
:func:`~repro.eval.spec.run_spec` issues one grid call per scheme
point, in spec order.  That determinism lets the grid decompose into
self-describing **work units** - contiguous trace-index ranges of one
grid call - that any process, on any machine, can execute independently
and whose recorded wire results fold back into the exact
:class:`~repro.eval.spec.ExperimentResult` a serial run produces.

Three consumers share this layer:

* **Static shards** (:mod:`repro.eval.shard`): ``--shards N
  --shard-index I`` + ``merge``.  A shard is the adapter case - one
  unit per grid call, its range computed from the shard's position.
* **The in-process sharded driver** (:func:`~repro.eval.shard.run_sharded`):
  contiguous-range units executed locally, merged without a broker.
* **The fleet** (:mod:`repro.eval.broker` + :mod:`repro.eval.fleet`):
  units live as rows in a SQLite broker with a pending/leased/done/
  failed lifecycle; workers pull one unit at a time through
  :class:`SingleUnitRecorder` and write wire results back.

The pieces:

* :class:`CallPlan` / :func:`plan_calls` - the shape (setup labels +
  trace count) of every grid call a spec will issue, computed without
  executing anything.  The plan is the schema the broker stores and
  every worker validates against, so a worker on a stale checkout
  whose spec builder produces a different grid fails loudly.
* :class:`WorkUnit` / :func:`plan_units` - the decomposition of a plan
  into schedulable ``(call_index, [start, stop))`` slices.
* :class:`UnitRecorder` - the record-side grid hook base: subclasses
  define :meth:`~UnitRecorder.call_range` (which contiguous range of
  each call to execute) and the base handles call bookkeeping, wire
  serialization, and the :meth:`~repro.eval.runner.GridHook.plan_call`
  peek that lets :func:`~repro.eval.spec.run_spec` skip trace
  generation for untouched points.
* :class:`SingleUnitRecorder` - executes exactly one unit, validating
  the live call sequence against the submitted plan.
* :class:`UnitReplayer` - the replay-side hook: folds recorded units
  back through the runner's streaming accumulators (the same
  ``_SummaryAccumulator`` fold a serial run streams into), validating
  every call's shape.
* :func:`assemble_calls` - reassembles completed units into the
  replayable per-call structure, enforcing exact trace coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ExperimentError
from .runner import GridHook
from .serialize import (
    SCHEMA_VERSION,
    check_schema_version,
    trace_result_from_wire,
    trace_result_to_wire,
)


@dataclass(frozen=True)
class CallPlan:
    """Shape of one grid call: the setup labels and trace count."""

    labels: Tuple[str, ...]
    n_traces: int

    def __post_init__(self) -> None:
        if self.n_traces < 0:
            raise ExperimentError(
                f"call plan n_traces must be >= 0, got {self.n_traces}"
            )


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable slice of an experiment: trace indices
    ``[start, stop)`` of grid call ``call_index``.

    ``seeds`` records the covered traces' seeds - informational
    provenance (``fleet status`` displays them), not an input to
    execution, which derives everything from the experiment spec.
    """

    call_index: int
    start: int
    stop: int
    seeds: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.call_index < 0:
            raise ExperimentError(
                f"work unit call_index must be >= 0, got {self.call_index}"
            )
        if not 0 <= self.start < self.stop:
            raise ExperimentError(
                f"work unit range must satisfy 0 <= start < stop, got "
                f"[{self.start}, {self.stop})"
            )

    @property
    def n_traces(self) -> int:
        return self.stop - self.start


def plan_calls(spec) -> List[CallPlan]:
    """The grid-call sequence ``run_spec(spec)`` will issue.

    Mirrors :func:`~repro.eval.spec.run_spec`: one call per scheme
    point, in spec order; probe points issue none.  Nothing is
    executed - setups are built only for their labels.
    """
    plans = []
    for point in spec.points:
        if point.probe is not None:
            continue
        labels = tuple(ref.setup().labeled() for ref in point.schemes)
        plans.append(CallPlan(labels=labels, n_traces=len(point.trace.seeds)))
    return plans


def plan_units(
    spec, unit_traces: int = 1
) -> Tuple[List[CallPlan], List[WorkUnit]]:
    """Decompose a spec's grid calls into contiguous-range work units.

    Each call's trace range splits into units of at most ``unit_traces``
    traces (the scheduling granularity: smaller units mean more
    parallelism and cheaper retries, at more per-unit spec/trace
    overhead).  Returns ``(plan, units)``.
    """
    if unit_traces < 1:
        raise ExperimentError(
            f"unit_traces must be >= 1, got {unit_traces}"
        )
    plans = plan_calls(spec)
    scheme_points = [point for point in spec.points if point.probe is None]
    units: List[WorkUnit] = []
    for call_index, (plan, point) in enumerate(zip(plans, scheme_points)):
        seeds = tuple(point.trace.seeds)
        for start in range(0, plan.n_traces, unit_traces):
            stop = min(start + unit_traces, plan.n_traces)
            units.append(
                WorkUnit(call_index, start, stop, seeds=seeds[start:stop])
            )
    return plans, units


# ----------------------------------------------------------------------
# Wire codecs (broker meta storage)
# ----------------------------------------------------------------------


def call_plans_to_wire(plans: Sequence[CallPlan]) -> List[Dict]:
    """``[CallPlan] -> [{"labels": [...], "n": int}]``."""
    return [{"labels": list(p.labels), "n": int(p.n_traces)} for p in plans]


def call_plans_from_wire(payload) -> List[CallPlan]:
    if not isinstance(payload, list):
        raise ExperimentError(f"malformed call-plan payload: {payload!r}")
    plans = []
    for entry in payload:
        if not (
            isinstance(entry, dict)
            and isinstance(entry.get("labels"), list)
            and all(isinstance(l, str) for l in entry["labels"])
            and isinstance(entry.get("n"), int)
        ):
            raise ExperimentError(f"malformed call-plan entry: {entry!r}")
        plans.append(CallPlan(labels=tuple(entry["labels"]), n_traces=entry["n"]))
    return plans


# ----------------------------------------------------------------------
# Grid hooks
# ----------------------------------------------------------------------


class UnitRecorder(GridHook):
    """Record-side grid hook base (see :class:`~repro.eval.runner.GridHook`).

    Subclasses define :meth:`call_range` - the contiguous trace range of
    each grid call they execute.  The base keeps the per-call records
    (``self.calls``, the same ``{labels, n_traces, units}`` structure
    shard files and the broker's collector consume) and serializes each
    executed trace unit's results through the wire codec.
    """

    is_replay = False

    def __init__(self) -> None:
        self.calls: List[Dict] = []

    def call_range(
        self, call_index: int, labels: Sequence[str], n_traces: int
    ) -> Tuple[int, int]:
        """The ``[start, stop)`` range this hook executes of one call."""
        raise NotImplementedError

    def plan_call(self, labels: Sequence[str], n_traces: int) -> range:
        """Peek the next call's executed range without opening it."""
        start, stop = self.call_range(len(self.calls), labels, n_traces)
        return range(start, stop)

    def select_call(self, labels: Sequence[str], n_traces: int) -> range:
        """Open a new grid-call record; return the indices to execute."""
        start, stop = self.call_range(len(self.calls), labels, n_traces)
        self.calls.append(
            {"labels": list(labels), "n_traces": n_traces, "units": []}
        )
        return range(start, stop)

    def record(self, trace_idx: int, results: Sequence) -> None:
        """Serialize one executed unit into the open call record."""
        self.calls[-1]["units"].append(
            [trace_idx, [trace_result_to_wire(r) for r in results]]
        )


class SingleUnitRecorder(UnitRecorder):
    """Executes exactly one :class:`WorkUnit` of an experiment.

    Every grid call the live spec issues is validated against the
    submitted :class:`CallPlan` sequence, so a worker whose checkout
    builds a different grid (more calls, different labels or trace
    counts) fails loudly before any of its results reach the broker.
    """

    def __init__(self, unit: WorkUnit, plan: Sequence[CallPlan]):
        super().__init__()
        self.unit = unit
        self._plan = list(plan)
        if not 0 <= unit.call_index < len(self._plan):
            raise ExperimentError(
                f"work unit names call {unit.call_index} but the plan has "
                f"{len(self._plan)} grid call(s)"
            )
        expected = self._plan[unit.call_index]
        if unit.stop > expected.n_traces:
            raise ExperimentError(
                f"work unit range [{unit.start}, {unit.stop}) exceeds call "
                f"{unit.call_index}'s {expected.n_traces} trace(s)"
            )

    def call_range(
        self, call_index: int, labels: Sequence[str], n_traces: int
    ) -> Tuple[int, int]:
        if call_index >= len(self._plan):
            raise ExperimentError(
                f"experiment issued more grid calls than the submitted "
                f"plan's {len(self._plan)}; this worker's checkout no "
                "longer matches the broker's submitter"
            )
        expected = self._plan[call_index]
        if tuple(labels) != expected.labels or n_traces != expected.n_traces:
            raise ExperimentError(
                f"grid call {call_index} shape mismatch: the broker plan "
                f"recorded ({list(expected.labels)}, {expected.n_traces} "
                f"traces) but this checkout produced ({list(labels)}, "
                f"{n_traces} traces); worker and submitter must run "
                "matching checkouts"
            )
        if call_index != self.unit.call_index:
            return (0, 0)
        return (self.unit.start, self.unit.stop)

    def unit_payload(self) -> Dict:
        """The executed unit's results as a broker-storable document.

        Raises unless the experiment issued exactly the planned call
        sequence and the unit's full trace range was executed - a
        partially executed unit must never be marked done.
        """
        if len(self.calls) != len(self._plan):
            raise ExperimentError(
                f"experiment issued {len(self.calls)} grid call(s) but the "
                f"submitted plan recorded {len(self._plan)}; this worker's "
                "checkout no longer matches the broker's submitter"
            )
        units = self.calls[self.unit.call_index]["units"]
        covered = [entry[0] for entry in units]
        if covered != list(range(self.unit.start, self.unit.stop)):
            raise ExperimentError(
                f"unit execution incomplete: expected traces "
                f"{self.unit.start}..{self.unit.stop - 1} of call "
                f"{self.unit.call_index}, got {covered}"
            )
        return {"v": SCHEMA_VERSION, "u": units}


def unit_payload_entries(payload, what: str = "unit result") -> List:
    """Validate and unpack a :meth:`SingleUnitRecorder.unit_payload` doc."""
    check_schema_version(payload, what)
    if not isinstance(payload, dict) or not isinstance(payload.get("u"), list):
        raise ExperimentError(f"malformed {what} payload: {payload!r}")
    for entry in payload["u"]:
        if not (
            isinstance(entry, (list, tuple)) and len(entry) == 2
            and isinstance(entry[0], int) and isinstance(entry[1], list)
        ):
            raise ExperimentError(
                f"malformed {what} entry (expected [trace_idx, results]): "
                f"{entry!r}"
            )
    return payload["u"]


class UnitReplayer(GridHook):
    """Replay-side grid hook: fold recorded units, execute nothing.

    Feeds merged recorded units back into ``run_grid`` call by call.
    Each replayed call is validated against the live grid's shape
    (setup labels and trace count) so recorded results from a different
    experiment, preset, or seed cannot be folded silently.
    """

    is_replay = True

    def __init__(self, calls: Sequence[Dict]):
        self._calls = list(calls)
        self._cursor = 0

    def plan_call(self, labels: Sequence[str], n_traces: int) -> range:
        """Replay executes nothing, so no call needs traces generated."""
        return range(0)

    def replay_call(self, labels: Sequence[str], n_traces: int):
        """Results for the next grid call: ``[(trace_idx, [TraceResult])]``."""
        if self._cursor >= len(self._calls):
            raise ExperimentError(
                "shard replay exhausted: the experiment issued more grid "
                "calls than the recorded units cover"
            )
        call = self._calls[self._cursor]
        self._cursor += 1
        if call["labels"] != list(labels) or call["n_traces"] != n_traces:
            raise ExperimentError(
                f"shard replay mismatch at call {self._cursor - 1}: recorded "
                f"({call['labels']}, {call['n_traces']} traces) vs live "
                f"({list(labels)}, {n_traces} traces)"
            )
        return [
            (idx, [trace_result_from_wire(w) for w in wires])
            for idx, wires in call["units"]
        ]

    def assert_exhausted(self) -> None:
        """Require that every recorded grid call was replayed.

        A driver that issues fewer grid calls than were recorded (e.g.
        the experiment was edited between recording and merging) would
        otherwise silently drop the tail calls and report a
        complete-looking but partial result.
        """
        if self._cursor != len(self._calls):
            raise ExperimentError(
                f"shard replay incomplete: {len(self._calls)} grid call(s) "
                f"were recorded but only {self._cursor} were replayed; the "
                "experiment driver no longer matches the one that ran"
            )


# ----------------------------------------------------------------------
# Reassembly
# ----------------------------------------------------------------------


def check_call_coverage(
    call_index: int, n_traces: int, units: Sequence, what: str
) -> None:
    """Require sorted units to cover ``0..n_traces-1`` exactly once."""
    covered = [entry[0] for entry in units]
    if covered != list(range(n_traces)):
        raise ExperimentError(
            f"grid call {call_index} has incomplete {what} coverage: "
            f"expected traces 0..{n_traces - 1}, got {covered}"
        )


def assemble_calls(
    plan: Sequence[CallPlan],
    unit_results: Sequence[Tuple[WorkUnit, Sequence]],
) -> List[Dict]:
    """Reassemble completed units into replayable per-call records.

    ``unit_results`` pairs each unit with its recorded
    ``[[trace_idx, [wire results]], ...]`` entries.  Units may arrive
    in any order; every call's trace range must end up covered exactly
    once, and the whole experiment must have evaluated at least one
    trace (an all-empty reassembly must fail loudly, not report a
    vacuous score).
    """
    calls = [
        {"labels": list(p.labels), "n_traces": p.n_traces, "units": []}
        for p in plan
    ]
    for unit, entries in unit_results:
        if not 0 <= unit.call_index < len(calls):
            raise ExperimentError(
                f"completed unit names call {unit.call_index} but the plan "
                f"has {len(calls)} grid call(s)"
            )
        calls[unit.call_index]["units"].extend(entries)
    total_units = 0
    for call_index, (p, call) in enumerate(zip(plan, calls)):
        call["units"].sort(key=lambda entry: entry[0])
        check_call_coverage(call_index, p.n_traces, call["units"], "unit")
        total_units += len(call["units"])
    if calls and total_units == 0:
        raise ExperimentError(
            "completed units contain no evaluated traces; refusing to "
            "report metrics computed from zero traces"
        )
    return calls
