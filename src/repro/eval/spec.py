"""Declarative experiment specs and the generic grid driver.

The paper's evaluation is one big matrix - scenario x topology x
telemetry spec x scheme x seeds - but the repo used to encode it as 13
bespoke ~80-line driver functions, each hand-wiring topologies, traces,
and scheme suites.  This module replaces the drivers with data:

* An :class:`ExperimentSpec` is a list of :class:`GridPoint` records.
  Each point declares its topology (:class:`TopologySpec`, resolved
  through the topology registry), its failure workload
  (:class:`ScenarioSpec`, resolved through the scenario registry in
  :mod:`repro.simulation.failures`), its trace knobs
  (:class:`TraceSpec`: per-trace seeds, flow/probe counts, traffic
  patterns), and either a scheme suite (:class:`SchemeRef` entries
  resolved through the scheme registry in :mod:`repro.eval.schemes`)
  or a registered *probe* (:class:`ProbeRef`) for timing-style
  measurements that are not a scheme x trace grid.
* :func:`run_spec` is the single generic driver: for every point it
  builds the topology, generates the traces, evaluates the scheme
  suite through :func:`~repro.eval.harness.evaluate_many` (one
  :func:`~repro.eval.runner.run_grid` call per point, in spec order),
  and emits rows.  Because the grid-call sequence is a pure function
  of the spec, every spec-based experiment is automatically shardable
  through :mod:`repro.eval.shard` - the recorder and replayer hook the
  same call sequence on the worker and merge sides.
* The *experiment registry* maps names (``fig2``, ``table1-eval``,
  ...) to builder functions that produce a spec from ``(preset, seed,
  overrides)``.  :func:`run_experiment` is the front door used by the
  CLI, benchmarks, and tests.

Determinism: all randomness in a spec lives in explicit seeds (trace
seeds, scenario sample seeds, topology omission seeds), so two runs of
the same spec - serial, parallel, or shard-merged - produce
bit-identical metrics.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..errors import ExperimentError
from ..routing.ecmp import EcmpRouting
from ..simulation.failures import FailureScenario, make_scenario
from .harness import EvalSummary, SchemeSetup, evaluate_many
from .runner import RunnerConfig
from .scenarios import SKEWED, UNIFORM, Trace, make_trace
from .schemes import make_setup

PRESETS = ("tiny", "ci", "paper")


def check_preset(preset: str) -> None:
    if preset not in PRESETS:
        raise ExperimentError(f"preset must be one of {PRESETS}, got {preset!r}")


# ----------------------------------------------------------------------
# Result container
# ----------------------------------------------------------------------


@dataclass
class ExperimentResult:
    """Rows plus provenance for one experiment."""

    experiment: str
    description: str
    rows: List[Dict] = field(default_factory=list)
    notes: str = ""

    def series(self, **filters) -> List[Dict]:
        """Rows matching all the given column=value filters."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in filters.items()):
                out.append(row)
        return out


# ----------------------------------------------------------------------
# Spec records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SchemeRef:
    """A scheme-registry reference plus its per-experiment knobs.

    ``scheme`` names a registry entry; ``spec`` overrides its default
    telemetry spec; ``overrides`` are factory kwargs (calibrated
    settings already merge underneath); ``telemetry`` passes extra
    :class:`~repro.telemetry.inputs.TelemetryConfig` kwargs; ``label``
    overrides the setup's display name.  ``key`` is the row columns
    this scheme contributes - ``None`` means the default
    ``{"scheme": <label>}`` column.
    """

    scheme: str
    spec: Optional[str] = None
    overrides: Mapping[str, object] = field(default_factory=dict)
    telemetry: Mapping[str, object] = field(default_factory=dict)
    label: Optional[str] = None
    key: Optional[Mapping[str, object]] = None

    def setup(self) -> SchemeSetup:
        return make_setup(
            self.scheme,
            spec=self.spec,
            overrides=self.overrides,
            telemetry=self.telemetry,
            label=self.label,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A scenario-registry reference producing one batch of scenarios.

    ``params`` are fixed constructor kwargs.  ``sampled`` draws integer
    constructor kwargs per trace - ``{name: (lo, hi)}`` maps to one
    ``rng.integers(lo, hi)`` call per trace, in trace order, from a
    generator seeded with ``sample_seed`` (the section 7.1 workload
    draws 1..8 failed links per trace this way).
    """

    name: str
    params: Mapping[str, object] = field(default_factory=dict)
    sampled: Mapping[str, Tuple[int, int]] = field(default_factory=dict)
    sample_seed: Optional[int] = None

    def build(self, count: int) -> List[FailureScenario]:
        if not self.sampled:
            return [make_scenario(self.name, **dict(self.params)) for _ in range(count)]
        if self.sample_seed is None:
            raise ExperimentError(
                f"scenario spec {self.name!r} samples parameters but has "
                "no sample_seed"
            )
        rng = np.random.default_rng(self.sample_seed)
        out = []
        for _ in range(count):
            params = dict(self.params)
            for name in self.sampled:
                lo, hi = self.sampled[name]
                params[name] = int(rng.integers(lo, hi))
            out.append(make_scenario(self.name, **params))
        return out


@dataclass(frozen=True)
class TopologySpec:
    """A topology-registry reference: ``name`` plus resolver kwargs."""

    name: str
    params: Mapping[str, object] = field(default_factory=dict)

    def build(self):
        return resolve_topology(self.name, **dict(self.params))


@dataclass(frozen=True)
class TraceSpec:
    """Per-point trace knobs: one trace per entry of ``seeds``.

    ``traffic`` fixes each trace's traffic pattern; ``None`` alternates
    uniform/skewed in trace order, mirroring section 6.3 ("half the
    traces used uniform random traffic and the other half ... skewed").
    """

    seeds: Tuple[int, ...]
    n_passive: int = 2000
    n_probes: int = 500
    traffic: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.traffic is not None and len(self.traffic) != len(self.seeds):
            raise ExperimentError(
                f"traffic list ({len(self.traffic)}) does not match trace "
                f"seeds ({len(self.seeds)})"
            )


@dataclass(frozen=True)
class ProbeRef:
    """A probe-registry reference for non-grid measurements.

    Probes cover what a scheme x trace grid cannot: runtime ablations
    (fig4c), scan-rate measurements, and the fig6 worked example.  A
    probe receives the point's built topology/routing/traces and
    returns its own rows.
    """

    name: str
    params: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class GridPoint:
    """One cell of an experiment: workload + either schemes or a probe.

    ``key`` columns prefix every row the point emits.  ``extras`` names
    a registered per-point column hook (e.g. the theoretical max
    precision of fig5c) appended to every scheme row.
    """

    topology: TopologySpec
    key: Mapping[str, object] = field(default_factory=dict)
    scenario: Optional[ScenarioSpec] = None
    trace: Optional[TraceSpec] = None
    schemes: Tuple[SchemeRef, ...] = ()
    probe: Optional[ProbeRef] = None
    extras: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.probe is None) == (not self.schemes):
            raise ExperimentError(
                "a grid point needs either a scheme suite or a probe"
            )
        if self.schemes and self.trace is None:
            raise ExperimentError("a scheme grid point needs a trace spec")


@dataclass
class ExperimentSpec:
    """A fully declarative experiment: points plus an aggregation recipe.

    ``metrics`` names the :data:`METRIC_FIELDS` columns emitted per
    scheme row, in column order.  ``cache`` mirrors
    :attr:`~repro.eval.runner.RunnerConfig.cache` - runtime experiments
    (fig4d) disable the problem cache so build times stay cold.
    """

    name: str
    description: str
    points: List[GridPoint] = field(default_factory=list)
    metrics: Tuple[str, ...] = ("precision", "recall", "fscore")
    notes: str = ""
    cache: bool = True

    def __post_init__(self) -> None:
        for metric in self.metrics:
            if metric not in METRIC_FIELDS:
                raise ExperimentError(
                    f"unknown metric {metric!r}; known metrics: "
                    f"{', '.join(sorted(METRIC_FIELDS))}"
                )


#: Columns a spec may request per scheme row, read off the scheme's
#: :class:`~repro.eval.harness.EvalSummary`.
METRIC_FIELDS: Dict[str, Callable[[EvalSummary], float]] = {
    "precision": lambda s: s.accuracy.precision,
    "recall": lambda s: s.accuracy.recall,
    "fscore": lambda s: s.accuracy.fscore,
    "seconds": lambda s: s.mean_inference_seconds,
    "build_seconds": lambda s: s.mean_build_seconds,
}


# ----------------------------------------------------------------------
# Topology / probe / extras registries
# ----------------------------------------------------------------------

_TOPOLOGIES: Dict[str, Callable] = {}
_PROBES: Dict[str, Callable] = {}
_EXTRAS: Dict[str, Callable] = {}


def register_topology(name: str, resolver: Callable) -> None:
    """Register ``resolver(**params) -> Topology`` under ``name``."""
    _TOPOLOGIES[name] = resolver


def resolve_topology(name: str, **params):
    _ensure_builtin_experiments()
    try:
        resolver = _TOPOLOGIES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown topology {name!r}; registered topologies: "
            f"{', '.join(sorted(_TOPOLOGIES))}"
        ) from None
    return resolver(**params)


def register_probe(name: str) -> Callable:
    """Decorator registering ``fn(context) -> rows`` under ``name``."""

    def deco(fn: Callable) -> Callable:
        _PROBES[name] = fn
        return fn

    return deco


def register_extras(name: str) -> Callable:
    """Decorator registering a per-point extra-columns hook.

    The hook receives ``(topology, routing, traces)`` and returns a
    dict of columns appended to every scheme row of the point.
    """

    def deco(fn: Callable) -> Callable:
        _EXTRAS[name] = fn
        return fn

    return deco


@dataclass
class ProbeContext:
    """Everything a probe measurement gets from the generic driver."""

    topology: object
    routing: Optional[EcmpRouting]
    traces: List[Trace]
    params: Dict[str, object]


# ----------------------------------------------------------------------
# Generic driver
# ----------------------------------------------------------------------


def build_point_traces(topology, routing, point: GridPoint) -> List[Trace]:
    """Generate one grid point's trace batch from its declarative spec."""
    if point.trace is None:
        return []
    if point.scenario is None:
        raise ExperimentError(
            f"grid point {dict(point.key)!r} has traces but no scenario"
        )
    ts = point.trace
    scenarios = point.scenario.build(len(ts.seeds))
    traces = []
    for i, (scenario, seed) in enumerate(zip(scenarios, ts.seeds)):
        if ts.traffic is not None:
            pattern = ts.traffic[i]
        else:
            pattern = SKEWED if i % 2 == 1 else UNIFORM
        traces.append(
            make_trace(
                topology,
                routing,
                scenario,
                seed=seed,
                n_passive=ts.n_passive,
                n_probes=ts.n_probes,
                traffic=pattern,
            )
        )
    return traces


def run_spec(
    spec: ExperimentSpec,
    runner: Optional[RunnerConfig] = None,
    point_cache: Optional[Dict[int, Tuple]] = None,
) -> ExperimentResult:
    """Evaluate a declarative spec point by point.

    Scheme points issue exactly one :func:`~repro.eval.runner.run_grid`
    call each, in spec order, so a grid hook
    (:class:`~repro.eval.runner.GridHook`) installed on ``runner`` sees
    a call sequence that is a pure function of the spec.  Probe points
    execute locally and never touch the runner.

    The unit boundary: when a record-side hook is installed, each
    scheme point's trace generation is gated on the hook's
    ``plan_call`` peek - a point none of whose traces will execute
    (e.g. a fleet worker's unit lives in a different grid call) skips
    topology build and trace generation entirely, and probe points are
    skipped outright (their rows are recomputed by the merge/collect
    side, which replays recorded units and *does* run probes).  Both
    sides keep the grid-call sequence identical to a local run, so
    recorded units always line up.

    ``point_cache`` (mutable, keyed by point index) carries built
    ``(topology, routing, traces)`` triples across repeated
    ``run_spec`` invocations of the *same spec object* - fleet workers
    executing many units of one experiment pay trace generation once
    per point instead of once per unit.  Trace construction is a pure
    function of the spec, so reuse cannot change results.
    """
    config = runner
    if not spec.cache:
        config = replace(runner if runner is not None else RunnerConfig(), cache=False)
    hook = config.shard if config is not None else None
    recording = hook is not None and not hook.is_replay
    result = ExperimentResult(
        experiment=spec.name, description=spec.description, notes=spec.notes
    )

    def built_point(index: int, point: GridPoint) -> Tuple:
        if point_cache is not None and index in point_cache:
            return point_cache[index]
        topology = point.topology.build()
        routing = EcmpRouting(topology)
        traces = build_point_traces(topology, routing, point)
        if point_cache is not None:
            point_cache[index] = (topology, routing, traces)
        return topology, routing, traces

    for index, point in enumerate(spec.points):
        if point.probe is not None:
            if recording:
                # A record-side worker only contributes grid-call
                # results; probe rows would be discarded with the rest
                # of its partial ExperimentResult.
                continue
            probe = _PROBES.get(point.probe.name)
            if probe is None:
                raise ExperimentError(
                    f"unknown probe {point.probe.name!r}; registered probes: "
                    f"{', '.join(sorted(_PROBES))}"
                )
            topology, routing, traces = built_point(index, point)
            context = ProbeContext(
                topology=topology,
                routing=routing,
                traces=traces,
                params=dict(point.probe.params),
            )
            for row in probe(context):
                result.rows.append({**point.key, **row})
            continue
        setups = [ref.setup() for ref in point.schemes]
        labels = [setup.labeled() for setup in setups]
        n_traces = len(point.trace.seeds)
        planned = None
        plan_call = getattr(hook, "plan_call", None)
        if plan_call is not None:
            planned = plan_call(labels, n_traces)
        if planned is not None and len(planned) == 0 and point.extras is None:
            # Unit boundary: nothing of this call executes here and no
            # extras hook needs the traces - run_grid still sees the
            # call (with placeholder slots) so the hook's call sequence
            # stays aligned, but the workload is never generated.
            topology = routing = None
            traces: List = [None] * n_traces
        else:
            topology, routing, traces = built_point(index, point)
        summaries = evaluate_many(setups, traces, config)
        extras: Dict[str, object] = {}
        if point.extras is not None:
            hook_fn = _EXTRAS.get(point.extras)
            if hook_fn is None:
                raise ExperimentError(
                    f"unknown extras hook {point.extras!r}; registered: "
                    f"{', '.join(sorted(_EXTRAS))}"
                )
            extras = hook_fn(topology, routing, traces)
        for ref, setup in zip(point.schemes, setups):
            summary = summaries[setup.labeled()]
            row: Dict[str, object] = dict(point.key)
            if ref.key is not None:
                row.update(ref.key)
            else:
                row["scheme"] = setup.labeled()
            for metric in spec.metrics:
                row[metric] = METRIC_FIELDS[metric](summary)
            row.update(extras)
            result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# Experiment registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: a spec builder plus its metadata.

    ``builder(preset, seed, overrides)`` returns an
    :class:`ExperimentSpec`; builders that declare a ``runner``
    parameter additionally receive a shard-free runner for build-time
    evaluation work (the table1 calibrate phase).  ``shardable`` is an
    explicit flag: probe-only and self-calibrating experiments must
    opt out of ``--shards``.
    """

    name: str
    builder: Callable[..., ExperimentSpec]
    description: str
    default_seed: Optional[int] = None
    shardable: bool = True
    include_in_all: bool = True

    @property
    def takes_runner(self) -> bool:
        return "runner" in inspect.signature(self.builder).parameters


_EXPERIMENTS: Dict[str, Experiment] = {}
_builtins_loaded = False


def register_experiment(
    name: str,
    description: str,
    default_seed: Optional[int] = None,
    shardable: bool = True,
    include_in_all: bool = True,
) -> Callable:
    """Decorator registering a spec builder in the experiment registry.

    ``include_in_all=False`` keeps an experiment out of ``run all`` /
    :func:`default_experiment_names` - used by the table1 phase
    experiments, whose work the combined ``table1`` already covers.
    """

    def deco(builder: Callable) -> Callable:
        _EXPERIMENTS[name] = Experiment(
            name=name,
            builder=builder,
            description=description,
            default_seed=default_seed,
            shardable=shardable,
            include_in_all=include_in_all,
        )
        return builder

    return deco


def _ensure_builtin_experiments() -> None:
    """Load the built-in registrations on first registry access.

    The per-figure builders live in :mod:`repro.eval.experiments` (which
    imports this module); importing it lazily here lets callers use the
    registry without knowing where entries come from.  A dedicated flag
    (not dict emptiness) guards the import, so user registrations made
    before the first access cannot mask the built-ins.
    """
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        from . import experiments  # noqa: F401  (imported for registration)


def get_experiment(name: str) -> Experiment:
    _ensure_builtin_experiments()
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; registered experiments: "
            f"{', '.join(experiment_names())}"
        ) from None


def experiment_names() -> List[str]:
    _ensure_builtin_experiments()
    return sorted(_EXPERIMENTS)


def shardable_experiment_names() -> List[str]:
    return [n for n in experiment_names() if _EXPERIMENTS[n].shardable]


def default_experiment_names() -> List[str]:
    """The ``run all`` set: every experiment not flagged out of it."""
    return [n for n in experiment_names() if _EXPERIMENTS[n].include_in_all]


class Overrides:
    """Tracks which ``--set key=val`` overrides a builder consumed.

    Builders call :meth:`take` for every knob they support;
    :meth:`finish` raises on leftovers so an unknown key fails loudly
    instead of silently running the unmodified experiment.
    """

    def __init__(self, mapping: Optional[Mapping[str, object]] = None):
        self._data = dict(mapping or {})
        self._taken: set = set()

    def take(self, key: str, default=None):
        self._taken.add(key)
        return self._data.get(key, default)

    def finish(self, experiment: str) -> None:
        leftover = sorted(set(self._data) - self._taken)
        if leftover:
            raise ExperimentError(
                f"experiment {experiment!r} does not support overrides "
                f"{leftover}; supported keys: {sorted(self._taken)}"
            )


def restrict_to_scheme(spec: ExperimentSpec, scheme: str) -> ExperimentSpec:
    """Filter a spec's scheme suites down to one registry scheme.

    Points whose suite contains no reference to ``scheme`` are dropped
    (their traces are never generated); probe points are kept.  If no
    point references the scheme at all, every scheme point instead runs
    the scheme at its registry defaults, so ``run fig2 --scheme
    sherlock`` evaluates Sherlock on fig2's workload even though the
    paper's fig2 grid does not include it.
    """
    from .schemes import get_scheme

    get_scheme(scheme)  # fail fast on unknown names
    any_match = any(
        ref.scheme == scheme for point in spec.points for ref in point.schemes
    )
    points: List[GridPoint] = []
    for point in spec.points:
        if point.probe is not None:
            points.append(point)
            continue
        if any_match:
            kept = tuple(ref for ref in point.schemes if ref.scheme == scheme)
            if kept:
                points.append(replace(point, schemes=kept))
        else:
            points.append(replace(point, schemes=(SchemeRef(scheme=scheme),)))
    if not any(point.schemes for point in points):
        raise ExperimentError(
            f"experiment {spec.name!r} has no scheme grid to restrict "
            f"to --scheme {scheme}"
        )
    return replace(spec, points=points)


def build_experiment_spec(
    name: str,
    preset: str = "ci",
    seed: Optional[int] = None,
    scheme: Optional[str] = None,
    overrides: Optional[Mapping[str, object]] = None,
    build_runner: Optional[RunnerConfig] = None,
) -> ExperimentSpec:
    """Resolve an experiment name into a concrete spec.

    ``build_runner`` parallelizes build-*time* evaluation work for
    builders that accept it (table1's calibrate phase); it must never
    carry a shard hook - sharding applies to the spec's own grid calls,
    not to spec construction.
    """
    check_preset(preset)
    entry = get_experiment(name)
    ov = Overrides(overrides)
    kwargs = {}
    if entry.takes_runner:
        if build_runner is not None and build_runner.shard is not None:
            build_runner = replace(build_runner, shard=None)
        kwargs["runner"] = build_runner
    spec = entry.builder(
        preset,
        seed if seed is not None else entry.default_seed,
        ov,
        **kwargs,
    )
    ov.finish(name)
    if scheme is not None:
        spec = restrict_to_scheme(spec, scheme)
    return spec


def run_experiment(
    name: str,
    preset: str = "ci",
    seed: Optional[int] = None,
    runner: Optional[RunnerConfig] = None,
    scheme: Optional[str] = None,
    overrides: Optional[Mapping[str, object]] = None,
) -> ExperimentResult:
    """Build and evaluate one registered experiment (the CLI front door)."""
    spec = build_experiment_spec(
        name,
        preset=preset,
        seed=seed,
        scheme=scheme,
        overrides=overrides,
        build_runner=runner,
    )
    return run_spec(spec, runner)
