"""Shared value types used across the Flock reproduction.

The types here are the "wire" vocabulary of the system: what the simulator
emits, what the telemetry agents report, and what the inference schemes
predict.  Algorithm-internal structures (e.g. the interned path tables used
by inference) live next to the algorithms that own them.

Component identifiers
---------------------
All fault-localization schemes operate over *components*: links and devices.
A component id is a plain ``int`` in a unified id space defined by the
topology: ids ``[0, n_links)`` are links, and id ``n_links + node`` is the
device component of node ``node``.  See
:meth:`repro.topology.base.Topology.device_component`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .routing.paths import PathSpace


class ComponentKind(enum.Enum):
    """Kind of a failable network component."""

    LINK = "link"
    DEVICE = "device"


class TelemetryKind(enum.Enum):
    """The four input-telemetry types from the paper (section 6.2).

    * ``A1`` - active probes between hosts and core switches, exact paths
      known (NetBouncer-style probing plan).
    * ``A2`` - reports about flows with at least one retransmission, with
      actively-traced exact paths (007-style).
    * ``PASSIVE`` - passive reports for all application flows; only the set
      of possible ECMP paths is known.
    * ``INT`` - in-band network telemetry: passive coverage with exact
      paths for every reported flow.
    """

    A1 = "A1"
    A2 = "A2"
    PASSIVE = "P"
    INT = "INT"


@dataclass(frozen=True)
class FlowRecord:
    """A single simulated flow, as produced by the flow-level simulator.

    This is the "ground truth" record: it knows the exact path the flow
    took (``path`` is a tuple of node ids, endpoints included).  Telemetry
    construction (:mod:`repro.telemetry.inputs`) decides how much of this
    is revealed to each scheme.

    Attributes
    ----------
    src, dst:
        Host node ids of the flow endpoints.
    packets_sent:
        Total packets the flow transmitted (``t`` in the paper's Eq. 1).
    bad_packets:
        Packets that experienced a problem - retransmissions for the
        per-packet analysis (``r`` in Eq. 1).
    path:
        The exact node sequence the flow traversed.
    rtt_ms:
        Mean observed round-trip time in milliseconds (used by the
        per-flow latency analysis, section 3.2).
    is_probe:
        True for active probe flows (A1-style), which always know their
        path.
    """

    src: int
    dst: int
    packets_sent: int
    bad_packets: int
    path: Tuple[int, ...]
    rtt_ms: float = 0.0
    is_probe: bool = False

    def __post_init__(self) -> None:
        if self.packets_sent < 0:
            raise ValueError("packets_sent must be non-negative")
        if not 0 <= self.bad_packets <= self.packets_sent:
            raise ValueError(
                "bad_packets must be within [0, packets_sent], got "
                f"{self.bad_packets}/{self.packets_sent}"
            )

    @property
    def loss_rate(self) -> float:
        """Fraction of packets that were bad (0.0 for an empty flow)."""
        if self.packets_sent == 0:
            return 0.0
        return self.bad_packets / self.packets_sent


@dataclass
class FlowBatch:
    """Struct-of-arrays trace: every :class:`FlowRecord` field as an
    aligned numpy column.

    This is the columnar twin of a ``List[FlowRecord]`` and the unit the
    vectorized trace pipeline passes from the simulator to telemetry
    construction.  Paths are interned: ``path_set`` holds each flow's
    ECMP candidate-set id and ``chosen_path`` the node-path id the
    simulator picked, both resolved against ``space``
    (:class:`~repro.routing.paths.PathSpace`).  ``records()`` is the
    object-pipeline adapter - it materializes the exact per-flow
    records the legacy API produced, so baselines, the agent/collector
    path, and the dataset serializer keep working unchanged.

    Streaming chunks carry an optional ``t_start`` column (per-flow
    arrival time in seconds); batch producers leave it ``None``.
    Chunks over the same :class:`PathSpace` concatenate with
    :meth:`concat` and split with :meth:`slice` - interned ids stay
    valid because the space is shared, never copied.
    """

    space: "PathSpace"
    src: np.ndarray
    dst: np.ndarray
    packets: np.ndarray
    bad: np.ndarray
    rtt_ms: np.ndarray
    is_probe: np.ndarray
    path_set: np.ndarray
    chosen_path: np.ndarray
    t_start: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = len(self.src)
        for name in ("dst", "packets", "bad", "rtt_ms", "is_probe",
                     "path_set", "chosen_path"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name!r} is not aligned ({n} flows)")
        if self.t_start is not None and len(self.t_start) != n:
            raise ValueError(f"column 't_start' is not aligned ({n} flows)")

    def __len__(self) -> int:
        return len(self.src)

    @property
    def n_flows(self) -> int:
        return len(self.src)

    @staticmethod
    def concat(batches: Sequence["FlowBatch"]) -> "FlowBatch":
        """Concatenate chunks over one shared :class:`PathSpace`.

        Either every chunk carries ``t_start`` or none does - a mixed
        concatenation would silently fabricate or drop arrival times.
        """
        if not batches:
            raise ValueError("cannot concatenate zero flow batches")
        space = batches[0].space
        for other in batches[1:]:
            if other.space is not space:
                raise ValueError(
                    "flow batches must share one PathSpace to concatenate"
                )
        timed = [b.t_start is not None for b in batches]
        if any(timed) and not all(timed):
            raise ValueError(
                "cannot concatenate timestamped and untimestamped batches"
            )
        return FlowBatch(
            space=space,
            src=np.concatenate([b.src for b in batches]),
            dst=np.concatenate([b.dst for b in batches]),
            packets=np.concatenate([b.packets for b in batches]),
            bad=np.concatenate([b.bad for b in batches]),
            rtt_ms=np.concatenate([b.rtt_ms for b in batches]),
            is_probe=np.concatenate([b.is_probe for b in batches]),
            path_set=np.concatenate([b.path_set for b in batches]),
            chosen_path=np.concatenate([b.chosen_path for b in batches]),
            t_start=(
                np.concatenate([b.t_start for b in batches])
                if all(timed) else None
            ),
        )

    def slice(self, start: int, stop: int) -> "FlowBatch":
        """A contiguous sub-chunk ``[start:stop)`` sharing this batch's
        space (columns are numpy views, not copies)."""
        return FlowBatch(
            space=self.space,
            src=self.src[start:stop],
            dst=self.dst[start:stop],
            packets=self.packets[start:stop],
            bad=self.bad[start:stop],
            rtt_ms=self.rtt_ms[start:stop],
            is_probe=self.is_probe[start:stop],
            path_set=self.path_set[start:stop],
            chosen_path=self.chosen_path[start:stop],
            t_start=(
                None if self.t_start is None else self.t_start[start:stop]
            ),
        )

    def with_t_start(self, t_start: np.ndarray) -> "FlowBatch":
        """A copy of this batch with the arrival-time column attached."""
        return FlowBatch(
            space=self.space, src=self.src, dst=self.dst,
            packets=self.packets, bad=self.bad, rtt_ms=self.rtt_ms,
            is_probe=self.is_probe, path_set=self.path_set,
            chosen_path=self.chosen_path,
            t_start=np.asarray(t_start, dtype=np.float64),
        )

    def record(self, i: int) -> "FlowRecord":
        """Materialize one flow as an object-pipeline record."""
        return FlowRecord(
            src=int(self.src[i]),
            dst=int(self.dst[i]),
            packets_sent=int(self.packets[i]),
            bad_packets=int(self.bad[i]),
            path=self.space.path_nodes(int(self.chosen_path[i])),
            rtt_ms=float(self.rtt_ms[i]),
            is_probe=bool(self.is_probe[i]),
        )

    def records(self) -> List["FlowRecord"]:
        """Materialize the whole batch as object-pipeline records."""
        path_nodes = self.space.path_nodes
        return [
            FlowRecord(
                src=src, dst=dst, packets_sent=sent, bad_packets=bad,
                path=path_nodes(pid), rtt_ms=rtt, is_probe=bool(probe),
            )
            for src, dst, sent, bad, rtt, probe, pid in zip(
                self.src.tolist(), self.dst.tolist(), self.packets.tolist(),
                self.bad.tolist(), self.rtt_ms.tolist(), self.is_probe.tolist(),
                self.chosen_path.tolist(),
            )
        ]

    @staticmethod
    def from_records(
        records: Sequence["FlowRecord"], space: "PathSpace"
    ) -> "FlowBatch":
        """Columnarize object records (each record's exact path becomes
        a singleton path set - the candidate sets are not recoverable)."""
        n = len(records)
        chosen = np.fromiter(
            (space.intern_path(r.path) for r in records), dtype=np.int64, count=n
        )
        path_set = np.fromiter(
            (space.intern_set((space.path_nodes(int(pid)),)) for pid in chosen),
            dtype=np.int64,
            count=n,
        )
        return FlowBatch(
            space=space,
            src=np.fromiter((r.src for r in records), dtype=np.int64, count=n),
            dst=np.fromiter((r.dst for r in records), dtype=np.int64, count=n),
            packets=np.fromiter(
                (r.packets_sent for r in records), dtype=np.int64, count=n
            ),
            bad=np.fromiter(
                (r.bad_packets for r in records), dtype=np.int64, count=n
            ),
            rtt_ms=np.fromiter(
                (r.rtt_ms for r in records), dtype=np.float64, count=n
            ),
            is_probe=np.fromiter(
                (r.is_probe for r in records), dtype=bool, count=n
            ),
            path_set=path_set,
            chosen_path=chosen,
        )


@dataclass(frozen=True)
class FlowObservation:
    """One flow as seen by an inference scheme.

    ``path_set`` contains one or more candidate paths, each expressed as a
    tuple of *component ids* (links, and devices when device modeling is
    enabled).  An exact-path observation has ``len(path_set) == 1``.

    This is deliberately scheme-agnostic: Flock consumes the full path
    set, while 007 and NetBouncer only accept observations whose path is
    exact (their published algorithms cannot model path uncertainty).
    """

    path_set: Tuple[Tuple[int, ...], ...]
    packets_sent: int
    bad_packets: int
    kind: TelemetryKind = TelemetryKind.PASSIVE

    def __post_init__(self) -> None:
        if not self.path_set:
            raise ValueError("a flow observation needs at least one path")
        if not 0 <= self.bad_packets <= self.packets_sent:
            raise ValueError("bad_packets must be within [0, packets_sent]")

    @property
    def exact_path(self) -> bool:
        """Whether the flow's path is known exactly."""
        return len(self.path_set) == 1


@dataclass(frozen=True)
class Prediction:
    """The output of a localization scheme: the inferred failed set.

    Attributes
    ----------
    components:
        Predicted failed component ids (hypothesis ``H`` in the paper).
    scores:
        Optional per-component diagnostic scores (votes for 007, estimated
        drop rates for NetBouncer, likelihood gains for Flock).
    log_likelihood:
        For PGM schemes, the normalized log likelihood of the returned
        hypothesis.
    hypotheses_scanned:
        Number of hypotheses whose likelihood was (conceptually) evaluated;
        used by the scan-rate experiment of section 7.8.
    """

    components: FrozenSet[int]
    scores: Optional[dict] = None
    log_likelihood: float = 0.0
    hypotheses_scanned: int = 0

    @staticmethod
    def empty() -> "Prediction":
        """The no-failure prediction."""
        return Prediction(components=frozenset())


@dataclass(frozen=True)
class GroundTruth:
    """The actual failed components and their drop rates for one trace."""

    failed_links: FrozenSet[int] = frozenset()
    failed_devices: FrozenSet[int] = frozenset()
    drop_rates: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def failed_components(self) -> FrozenSet[int]:
        """Union of failed link components and failed device components."""
        return self.failed_links | self.failed_devices

    @property
    def has_failures(self) -> bool:
        return bool(self.failed_links or self.failed_devices)


def validate_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1] and return it."""
    if not (isinstance(value, (int, float)) and math.isfinite(value)):
        raise ValueError(f"{name} must be a finite number, got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def path_links_and_devices(
    nodes: Sequence[int],
    n_links: int,
    link_lookup,
    switch_mask: Sequence[bool],
    include_devices: bool,
) -> Tuple[int, ...]:
    """Convert a node-sequence path into a sorted component-id tuple.

    ``link_lookup(u, v)`` must return the link id for an adjacent node
    pair.  Device components are included only for nodes flagged True in
    ``switch_mask`` (hosts are never failable components in this model).
    Repeated traversals (e.g. probe bounce paths) collapse into a set.
    """
    comps = set()
    for u, v in zip(nodes, nodes[1:]):
        comps.add(link_lookup(u, v))
    if include_devices:
        for node in nodes:
            if switch_mask[node]:
                comps.add(n_links + node)
    return tuple(sorted(comps))
