"""Telemetry subsystem: wire records, codec, agent, collector, inputs."""

from .agent import InMemoryTransport, TelemetryAgent, Transport, UdpTransport
from .codec import (
    MAX_RECORDS_PER_MESSAGE,
    decode_message,
    decode_record,
    encode_message,
    encode_record,
)
from .collector import Collector, UdpCollectorServer
from .inputs import (
    ObservationBatch,
    TelemetryConfig,
    build_observation_batch,
    build_observations,
    build_observations_from_reports,
)
from .records import MAX_PATH_NODES, FlowReport

__all__ = [
    "FlowReport",
    "MAX_PATH_NODES",
    "encode_record",
    "decode_record",
    "encode_message",
    "decode_message",
    "MAX_RECORDS_PER_MESSAGE",
    "TelemetryAgent",
    "Transport",
    "InMemoryTransport",
    "UdpTransport",
    "Collector",
    "UdpCollectorServer",
    "TelemetryConfig",
    "ObservationBatch",
    "build_observation_batch",
    "build_observations",
    "build_observations_from_reports",
]
