"""Wire-level flow reports.

The paper's agent "periodically encapsulates the collected flow
statistics (52 bytes per flow) into export IPFIX messages, and sends it
to the collector" (section 5.1).  :class:`FlowReport` is that 52-byte
record: fixed counters plus an optional traced path of up to
:data:`MAX_PATH_NODES` hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import TelemetryError
from ..types import FlowRecord

#: Longest encodable traced path (a 3-tier Clos host-to-host path has 7
#: nodes; 52 = 24-byte fixed part + 7 * 4-byte node ids).
MAX_PATH_NODES = 7

#: Flag bits.
FLAG_PROBE = 0x1
FLAG_HAS_PATH = 0x2


@dataclass(frozen=True)
class FlowReport:
    """One flow's statistics as exported by an agent.

    ``path`` is present when the flow's route is known (active probe or
    INT); otherwise the collector's inference input falls back to the
    ECMP path set for (src, dst).
    """

    src: int
    dst: int
    packets_sent: int
    retransmissions: int
    rtt_us: int
    is_probe: bool = False
    path: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        for name in ("src", "dst", "packets_sent", "retransmissions", "rtt_us"):
            value = getattr(self, name)
            if not 0 <= value < 2 ** 32:
                raise TelemetryError(f"{name} must fit in 32 bits, got {value}")
        if self.retransmissions > self.packets_sent:
            raise TelemetryError("retransmissions cannot exceed packets sent")
        if self.path is not None:
            if len(self.path) > MAX_PATH_NODES:
                raise TelemetryError(
                    f"path longer than {MAX_PATH_NODES} nodes cannot be encoded"
                )
            for node in self.path:
                if not 0 <= node < 2 ** 32:
                    raise TelemetryError("path node ids must fit in 32 bits")

    @property
    def flags(self) -> int:
        value = 0
        if self.is_probe:
            value |= FLAG_PROBE
        if self.path is not None:
            value |= FLAG_HAS_PATH
        return value

    @staticmethod
    def from_flow_record(record: FlowRecord, reveal_path: bool = True) -> "FlowReport":
        """Convert a simulator record into a wire report.

        ``reveal_path=False`` models plain passive monitoring, where the
        agent knows the endpoints but not the route.
        """
        return FlowReport(
            src=record.src,
            dst=record.dst,
            packets_sent=record.packets_sent,
            retransmissions=record.bad_packets,
            rtt_us=min(2 ** 32 - 1, int(round(record.rtt_ms * 1000.0))),
            is_probe=record.is_probe,
            path=tuple(record.path) if reveal_path else None,
        )
