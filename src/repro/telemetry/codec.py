"""Binary codec for telemetry export messages.

An export message (IPFIX-flavoured, simplified) is:

====== ======= ==========================================
offset size    field
====== ======= ==========================================
0      2       magic ``b"FK"``
2      1       version (currently 1)
3      1       reserved (0)
4      2       record count (big-endian u16)
6      2       payload length in bytes (big-endian u16)
8      n       records
8+n    4       checksum: sum of payload bytes mod 2^32
====== ======= ==========================================

Each record is a 24-byte fixed part - src, dst, packets_sent,
retransmissions, rtt_us (u32 each), flags (u16), path length (u16) -
followed by ``4 * path_len`` bytes of node ids.  A pathless record is
24 bytes; a full 7-hop traced record is 52 bytes, the paper's figure.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from ..errors import CodecError
from .records import MAX_PATH_NODES, FLAG_HAS_PATH, FLAG_PROBE, FlowReport

MAGIC = b"FK"
VERSION = 1

_HEADER = struct.Struct(">2sBBHH")
_RECORD_FIXED = struct.Struct(">IIIIIHH")
_CHECKSUM = struct.Struct(">I")

#: Maximum records per message such that a message with full paths stays
#: under a conservative 1400-byte UDP payload budget.
MAX_RECORDS_PER_MESSAGE = (1400 - _HEADER.size - _CHECKSUM.size) // (
    _RECORD_FIXED.size + 4 * MAX_PATH_NODES
)


def encode_record(report: FlowReport) -> bytes:
    """Encode one report to its wire form."""
    path = report.path or ()
    fixed = _RECORD_FIXED.pack(
        report.src,
        report.dst,
        report.packets_sent,
        report.retransmissions,
        report.rtt_us,
        report.flags,
        len(path),
    )
    if path:
        fixed += struct.pack(f">{len(path)}I", *path)
    return fixed


def decode_record(payload: bytes, offset: int) -> Tuple[FlowReport, int]:
    """Decode one record at ``offset``; returns (report, next offset)."""
    end = offset + _RECORD_FIXED.size
    if end > len(payload):
        raise CodecError("truncated record header")
    src, dst, sent, retx, rtt_us, flags, path_len = _RECORD_FIXED.unpack_from(
        payload, offset
    )
    if path_len > MAX_PATH_NODES:
        raise CodecError(f"record declares path of {path_len} nodes")
    path = None
    if flags & FLAG_HAS_PATH:
        path_end = end + 4 * path_len
        if path_end > len(payload):
            raise CodecError("truncated record path")
        path = struct.unpack_from(f">{path_len}I", payload, end)
        end = path_end
    elif path_len:
        raise CodecError("pathless record declares a path length")
    report = FlowReport(
        src=src,
        dst=dst,
        packets_sent=sent,
        retransmissions=retx,
        rtt_us=rtt_us,
        is_probe=bool(flags & FLAG_PROBE),
        path=path,
    )
    return report, end


def encode_message(reports: Sequence[FlowReport]) -> bytes:
    """Encode a batch of reports into one export message."""
    if len(reports) > 0xFFFF:
        raise CodecError("too many records for one message")
    payload = b"".join(encode_record(r) for r in reports)
    if len(payload) > 0xFFFF:
        raise CodecError("payload exceeds 64 KiB message limit")
    header = _HEADER.pack(MAGIC, VERSION, 0, len(reports), len(payload))
    checksum = _CHECKSUM.pack(sum(payload) & 0xFFFFFFFF)
    return header + payload + checksum


def decode_message(message: bytes) -> List[FlowReport]:
    """Decode an export message, validating framing and checksum."""
    if len(message) < _HEADER.size + _CHECKSUM.size:
        raise CodecError("message shorter than header + checksum")
    magic, version, _, count, payload_len = _HEADER.unpack_from(message, 0)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version != VERSION:
        raise CodecError(f"unsupported version {version}")
    expected_len = _HEADER.size + payload_len + _CHECKSUM.size
    if len(message) != expected_len:
        raise CodecError(
            f"message length {len(message)} != declared {expected_len}"
        )
    payload = message[_HEADER.size:_HEADER.size + payload_len]
    (declared_sum,) = _CHECKSUM.unpack_from(message, _HEADER.size + payload_len)
    if declared_sum != (sum(payload) & 0xFFFFFFFF):
        raise CodecError("checksum mismatch")
    reports: List[FlowReport] = []
    offset = 0
    for _ in range(count):
        report, offset = decode_record(payload, offset)
        reports.append(report)
    if offset != len(payload):
        raise CodecError("trailing bytes after final record")
    return reports
