"""Construction of inference inputs from telemetry (paper section 6.2).

The four input types:

* **A1** - active host<->core probes with known paths (NetBouncer-style).
* **A2** - flows with >= 1 retransmission, with actively-traced exact
  paths (007-style).  Only flagged flows are reported.
* **P** - passive reports for all application flows; the path is
  unknown, only the ECMP path set is ("vendor-specific ECMP hashing
  obscures flows' exact paths").
* **INT** - passive coverage *with* exact paths for every flow.

Combinations compose by union with flagged-flow de-duplication: with
``A2+P`` a flagged flow appears once, with its exact path; its
unflagged peers appear with path sets.  ``INT`` supersedes ``P``/``A2``
for passive flows.

Per-flow vs per-packet analysis (paper section 3.2): the per-packet
analysis reports (retransmissions, packets sent); the per-flow analysis
reports a single bit - RTT above threshold - per flow, used for the
link-flap scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TelemetryError
from ..routing.ecmp import EcmpRouting
from ..routing.paths import PathSpace
from ..simulation.failures import PER_FLOW, PER_PACKET
from ..simulation.latency import RTT_BAD_THRESHOLD_MS
from ..topology.base import Topology
from ..types import FlowBatch, FlowObservation, FlowRecord, TelemetryKind
from .records import FlowReport

_KIND_BY_NAME = {kind.value: kind for kind in TelemetryKind}

#: Integer codes for the columnar pipeline's ``kind`` column.
KIND_ORDER: Tuple[TelemetryKind, ...] = (
    TelemetryKind.A1, TelemetryKind.A2, TelemetryKind.PASSIVE, TelemetryKind.INT,
)
KIND_CODE: Dict[TelemetryKind, int] = {k: i for i, k in enumerate(KIND_ORDER)}


@dataclass(frozen=True)
class TelemetryConfig:
    """Which telemetry the inference input should contain, and how."""

    kinds: FrozenSet[TelemetryKind]
    include_devices: bool = True
    analysis: str = PER_PACKET
    rtt_threshold_ms: float = RTT_BAD_THRESHOLD_MS
    passive_sampling: float = 1.0

    def __post_init__(self) -> None:
        if not self.kinds:
            raise TelemetryError("telemetry config needs at least one input kind")
        if self.analysis not in (PER_PACKET, PER_FLOW):
            raise TelemetryError(f"unknown analysis mode {self.analysis!r}")
        if not 0.0 < self.passive_sampling <= 1.0:
            raise TelemetryError("passive_sampling must be in (0, 1]")

    @staticmethod
    def from_spec(spec: str, **kwargs) -> "TelemetryConfig":
        """Parse a paper-style spec like ``"A1+A2+P"`` or ``"INT"``."""
        kinds = set()
        for token in spec.split("+"):
            token = token.strip()
            if token not in _KIND_BY_NAME:
                raise TelemetryError(
                    f"unknown telemetry kind {token!r}; expected "
                    f"{sorted(_KIND_BY_NAME)}"
                )
            kinds.add(_KIND_BY_NAME[token])
        return TelemetryConfig(kinds=frozenset(kinds), **kwargs)

    @property
    def spec(self) -> str:
        order = [TelemetryKind.A1, TelemetryKind.A2, TelemetryKind.INT,
                 TelemetryKind.PASSIVE]
        return "+".join(k.value for k in order if k in self.kinds)


class PathMemo:
    """Memoizes component lookups for one (topology, routing) pair.

    Both lookup kinds are pure functions of the topology, so a memo can
    be shared across every telemetry build of the same trace: the INT
    build resolves exact-path components for all records once, and the
    A1/A2/P builds then find their (overlapping) paths already cached.
    The runner's problem cache passes one memo per trace work unit for
    exactly this reason; a fresh memo per build is the uncached
    fallback.
    """

    def __init__(self, topology: Topology, routing: EcmpRouting):
        self._topo = topology
        self._routing = routing
        self._exact: Dict[Tuple, Tuple[int, ...]] = {}
        self._ecmp: Dict[Tuple, Tuple[Tuple[int, ...], ...]] = {}

    def exact(self, path, include_devices: bool) -> Tuple[int, ...]:
        """Components of one known node path."""
        key = (path, include_devices)
        cached = self._exact.get(key)
        if cached is None:
            cached = self._topo.path_components(path, include_devices)
            self._exact[key] = cached
        return cached

    def ecmp(
        self, src: int, dst: int, include_devices: bool
    ) -> Tuple[Tuple[int, ...], ...]:
        """Component path *set* for a passive flow's (src, dst)."""
        key = (src, dst, include_devices)
        cached = self._ecmp.get(key)
        if cached is None:
            node_paths = self._routing.host_paths(src, dst)
            cached = tuple(
                self.exact(p, include_devices) for p in node_paths
            )
            self._ecmp[key] = cached
        return cached


def _record_counts(
    record, analysis: str, rtt_threshold_ms: float, rtt_ms: float
) -> Tuple[int, int]:
    """(bad, sent) under the configured analysis mode."""
    if analysis == PER_PACKET:
        return record_bad(record), record_sent(record)
    return (1 if rtt_ms > rtt_threshold_ms else 0), 1


def record_bad(record) -> int:
    if isinstance(record, FlowReport):
        return record.retransmissions
    return record.bad_packets


def record_sent(record) -> int:
    return record.packets_sent


def build_observations(
    records: Sequence[FlowRecord],
    topology: Topology,
    routing: EcmpRouting,
    config: TelemetryConfig,
    rng: Optional[np.random.Generator] = None,
    memo: Optional[PathMemo] = None,
) -> List[FlowObservation]:
    """Build inference observations from ground-truth simulator records.

    The simulator knows each flow's exact path; this function decides
    what each telemetry kind may reveal.  ``memo`` shares path lookups
    across builds of the same trace (see :class:`PathMemo`).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    kinds = config.kinds
    want_a1 = TelemetryKind.A1 in kinds
    want_a2 = TelemetryKind.A2 in kinds
    want_p = TelemetryKind.PASSIVE in kinds
    want_int = TelemetryKind.INT in kinds
    if memo is None:
        memo = PathMemo(topology, routing)
    include_devices = config.include_devices

    observations: List[FlowObservation] = []
    for record in records:
        bad, sent = _record_counts(
            record, config.analysis, config.rtt_threshold_ms, record.rtt_ms
        )
        if record.is_probe:
            if not (want_a1 or want_int):
                continue
            comps = memo.exact(record.path, include_devices)
            observations.append(
                FlowObservation(
                    path_set=(comps,),
                    packets_sent=sent,
                    bad_packets=bad,
                    kind=TelemetryKind.A1,
                )
            )
            continue

        flagged = bad >= 1
        if want_int:
            if config.passive_sampling < 1.0 and rng.random() >= config.passive_sampling:
                continue
            comps = memo.exact(record.path, include_devices)
            observations.append(
                FlowObservation(
                    path_set=(comps,),
                    packets_sent=sent,
                    bad_packets=bad,
                    kind=TelemetryKind.INT,
                )
            )
        elif want_a2 and flagged:
            comps = memo.exact(record.path, include_devices)
            observations.append(
                FlowObservation(
                    path_set=(comps,),
                    packets_sent=sent,
                    bad_packets=bad,
                    kind=TelemetryKind.A2,
                )
            )
        elif want_p:
            if config.passive_sampling < 1.0 and rng.random() >= config.passive_sampling:
                continue
            path_set = memo.ecmp(record.src, record.dst, include_devices)
            observations.append(
                FlowObservation(
                    path_set=path_set,
                    packets_sent=sent,
                    bad_packets=bad,
                    kind=TelemetryKind.PASSIVE,
                )
            )
    return observations


def build_observations_from_reports(
    reports: Sequence[FlowReport],
    topology: Topology,
    routing: EcmpRouting,
    config: TelemetryConfig,
    rng: Optional[np.random.Generator] = None,
    memo: Optional[PathMemo] = None,
) -> List[FlowObservation]:
    """Build inference observations from collector-side wire reports.

    Reports only carry a path when the agent traced one; a kind that
    needs exact paths (A1/A2/INT) skips pathless reports, and passive
    handling falls back to the ECMP path set for (src, dst).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    kinds = config.kinds
    want_a1 = TelemetryKind.A1 in kinds
    want_a2 = TelemetryKind.A2 in kinds
    want_p = TelemetryKind.PASSIVE in kinds
    want_int = TelemetryKind.INT in kinds
    if memo is None:
        memo = PathMemo(topology, routing)
    include_devices = config.include_devices

    observations: List[FlowObservation] = []
    for report in reports:
        rtt_ms = report.rtt_us / 1000.0
        bad, sent = _record_counts(
            report, config.analysis, config.rtt_threshold_ms, rtt_ms
        )
        has_path = report.path is not None
        if report.is_probe:
            if not (want_a1 or want_int) or not has_path:
                continue
            comps = memo.exact(report.path, include_devices)
            observations.append(
                FlowObservation(
                    path_set=(comps,), packets_sent=sent, bad_packets=bad,
                    kind=TelemetryKind.A1,
                )
            )
            continue
        flagged = bad >= 1
        if want_int and has_path:
            if config.passive_sampling < 1.0 and rng.random() >= config.passive_sampling:
                continue
            comps = memo.exact(report.path, include_devices)
            observations.append(
                FlowObservation(
                    path_set=(comps,), packets_sent=sent, bad_packets=bad,
                    kind=TelemetryKind.INT,
                )
            )
        elif want_a2 and flagged and has_path:
            comps = memo.exact(report.path, include_devices)
            observations.append(
                FlowObservation(
                    path_set=(comps,), packets_sent=sent, bad_packets=bad,
                    kind=TelemetryKind.A2,
                )
            )
        elif want_p:
            if config.passive_sampling < 1.0 and rng.random() >= config.passive_sampling:
                continue
            path_set = memo.ecmp(report.src, report.dst, include_devices)
            observations.append(
                FlowObservation(
                    path_set=path_set, packets_sent=sent, bad_packets=bad,
                    kind=TelemetryKind.PASSIVE,
                )
            )
    return observations


# ----------------------------------------------------------------------
# Columnar pipeline
# ----------------------------------------------------------------------


@dataclass
class ObservationBatch:
    """Struct-of-arrays inference input: the columnar twin of a
    ``List[FlowObservation]``.

    ``path_set`` holds each observation's *component* path-set id
    (``gsid``) in ``space``; ``bad``/``sent`` the counts under the
    configured analysis mode; ``kind`` the :data:`KIND_ORDER` code.
    Rows preserve simulator record order, exactly like the object
    pipeline's observation list.
    """

    space: PathSpace
    path_set: np.ndarray
    bad: np.ndarray
    sent: np.ndarray
    kind: np.ndarray

    def __len__(self) -> int:
        return len(self.path_set)

    def observations(self) -> List[FlowObservation]:
        """Materialize object observations (adapter for diagnostics)."""
        space = self.space
        out: List[FlowObservation] = []
        for gsid, bad, sent, code in zip(
            self.path_set.tolist(), self.bad.tolist(), self.sent.tolist(),
            self.kind.tolist(),
        ):
            gids = space.comp_set(gsid)
            out.append(
                FlowObservation(
                    path_set=tuple(space.comp_path(int(g)) for g in gids),
                    packets_sent=sent,
                    bad_packets=bad,
                    kind=KIND_ORDER[code],
                )
            )
        return out


def build_observation_batch(
    batch: FlowBatch,
    config: TelemetryConfig,
    rng: Optional[np.random.Generator] = None,
) -> ObservationBatch:
    """Columnar :func:`build_observations` over a simulated flow batch.

    The A1/A2/P/INT composition and flagged-flow de-duplication are
    boolean-mask algebra over the batch columns; path-component
    resolution is one memoized gather per distinct path (set) id.  Row
    order, retained rows, and the sampling RNG stream are identical to
    the object pipeline's, which is what keeps the resulting
    :class:`~repro.core.problem.InferenceProblem` bit-identical.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    space = batch.space
    kinds = config.kinds
    want_a1 = TelemetryKind.A1 in kinds
    want_a2 = TelemetryKind.A2 in kinds
    want_p = TelemetryKind.PASSIVE in kinds
    want_int = TelemetryKind.INT in kinds
    include_devices = config.include_devices
    n = len(batch)

    if config.analysis == PER_PACKET:
        bad = batch.bad
        sent = batch.packets
    else:
        bad = (batch.rtt_ms > config.rtt_threshold_ms).astype(np.int64)
        sent = np.ones(n, dtype=np.int64)

    probe = batch.is_probe
    passive = ~probe
    flagged = bad >= 1

    keep = np.zeros(n, dtype=bool)
    kind_code = np.zeros(n, dtype=np.int64)
    exact = np.zeros(n, dtype=bool)

    if want_a1 or want_int:
        keep |= probe
        exact |= probe
        kind_code[probe] = KIND_CODE[TelemetryKind.A1]

    if want_int:
        keep |= passive
        exact |= passive
        kind_code[passive] = KIND_CODE[TelemetryKind.INT]
        sampled = passive
    else:
        a2_rows = passive & flagged if want_a2 else np.zeros(n, dtype=bool)
        p_rows = passive & ~a2_rows if want_p else np.zeros(n, dtype=bool)
        keep |= a2_rows | p_rows
        exact |= a2_rows
        kind_code[a2_rows] = KIND_CODE[TelemetryKind.A2]
        kind_code[p_rows] = KIND_CODE[TelemetryKind.PASSIVE]
        sampled = p_rows

    if config.passive_sampling < 1.0 and np.any(sampled):
        # One uniform per row that reaches a sampling decision, in row
        # order - the same stream the object pipeline's per-record
        # ``rng.random()`` calls consume.
        draws = rng.random(int(sampled.sum()))
        keep[sampled] &= draws < config.passive_sampling

    rows = np.nonzero(keep)[0]
    gsid = np.empty(len(rows), dtype=np.int64)
    exact_rows = exact[rows]
    if np.any(exact_rows):
        gsid[exact_rows] = space.exact_gsids(
            batch.chosen_path[rows[exact_rows]], include_devices
        )
    if not np.all(exact_rows):
        inexact = ~exact_rows
        gsid[inexact] = space.set_gsids(
            batch.path_set[rows[inexact]], include_devices
        )

    return ObservationBatch(
        space=space,
        path_set=gsid,
        bad=bad[rows],
        sent=sent[rows],
        kind=kind_code[rows],
    )
