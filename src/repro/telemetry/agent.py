"""End-host telemetry agent (paper section 5.1).

The agent "periodically actively probes the network and may optionally
passively observe performance of ongoing flows.  Metrics from both
active and passive monitoring are aggregated by flow, and optionally
randomly sampled to reduce volume.  Periodically, the agent sends these
reports to the collector."

Transport is pluggable: an in-memory queue for simulations and tests,
or a UDP socket for the loopback integration path exercised by the
Fig. 7 benchmarks.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Deque, Iterable, List, Optional

import numpy as np

from ..errors import TelemetryError
from ..types import FlowRecord
from .codec import MAX_RECORDS_PER_MESSAGE, encode_message
from .records import FlowReport


class Transport:
    """Abstract one-way message transport from agent to collector."""

    def send(self, message: bytes) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""


class InMemoryTransport(Transport):
    """Collects messages in a local deque (simulation / unit tests)."""

    def __init__(self) -> None:
        self.messages: Deque[bytes] = deque()

    def send(self, message: bytes) -> None:
        self.messages.append(message)

    def drain(self) -> List[bytes]:
        out = list(self.messages)
        self.messages.clear()
        return out


class UdpTransport(Transport):
    """Sends export messages as UDP datagrams."""

    def __init__(self, host: str, port: int) -> None:
        self._addr = (host, port)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)

    def send(self, message: bytes) -> None:
        self._sock.sendto(message, self._addr)

    def close(self) -> None:
        self._sock.close()


class TelemetryAgent:
    """Aggregates flow records into reports and exports them in batches.

    Parameters
    ----------
    transport:
        Where encoded export messages go.
    reveal_paths:
        Whether passive flows' paths are included in reports (True models
        INT-style monitoring; active probes always know their path).
    sampling_rate:
        Probability of keeping each passive flow ("optionally randomly
        sampled to reduce volume"); probes are never sampled out.
    batch_size:
        Reports per export message; defaults to the UDP-safe maximum.
    """

    def __init__(
        self,
        transport: Transport,
        reveal_paths: bool = False,
        sampling_rate: float = 1.0,
        batch_size: int = MAX_RECORDS_PER_MESSAGE,
        seed: int = 0,
    ) -> None:
        if not 0.0 < sampling_rate <= 1.0:
            raise TelemetryError("sampling_rate must be in (0, 1]")
        if batch_size < 1:
            raise TelemetryError("batch_size must be >= 1")
        self._transport = transport
        self._reveal_paths = reveal_paths
        self._sampling_rate = sampling_rate
        self._batch_size = batch_size
        self._rng = np.random.default_rng(seed)
        self._pending: List[FlowReport] = []
        self.exported_reports = 0
        self.exported_messages = 0
        self.sampled_out = 0

    def observe(self, records: Iterable[FlowRecord]) -> None:
        """Ingest simulator/monitor flow records into the pending batch."""
        for record in records:
            if not record.is_probe and self._sampling_rate < 1.0:
                if self._rng.random() >= self._sampling_rate:
                    self.sampled_out += 1
                    continue
            reveal = record.is_probe or self._reveal_paths
            self._pending.append(
                FlowReport.from_flow_record(record, reveal_path=reveal)
            )
            if len(self._pending) >= self._batch_size:
                self._export(self._pending[: self._batch_size])
                del self._pending[: self._batch_size]

    def flush(self) -> None:
        """Export any partially-filled batch."""
        while self._pending:
            batch = self._pending[: self._batch_size]
            del self._pending[: self._batch_size]
            self._export(batch)

    def _export(self, batch: List[FlowReport]) -> None:
        self._transport.send(encode_message(batch))
        self.exported_reports += len(batch)
        self.exported_messages += 1
