"""Central telemetry collector (paper section 5.1).

"Flock's inference engine ... (i) collects IPFIX flow reports from
agents and (ii) periodically runs inference on the collected input."

:class:`Collector` is the decode-and-buffer half; a
:class:`UdpCollectorServer` wraps it in a background thread receiving
datagrams on loopback, which is how the Fig. 7 scaling benchmark drives
it.  Inference-input construction from the buffered reports lives in
:mod:`repro.telemetry.inputs`.
"""

from __future__ import annotations

import socket
import threading
from typing import List, Optional

from ..errors import CodecError, TelemetryError
from .codec import decode_message
from .records import FlowReport


class Collector:
    """Decodes export messages and buffers the contained reports."""

    def __init__(self) -> None:
        self._reports: List[FlowReport] = []
        self._lock = threading.Lock()
        self.messages_ingested = 0
        self.messages_rejected = 0

    def ingest(self, message: bytes) -> int:
        """Decode one export message; returns the number of reports added.

        Malformed messages are counted and dropped rather than raised -
        a collector must survive a misbehaving agent.
        """
        try:
            reports = decode_message(message)
        except CodecError:
            with self._lock:
                self.messages_rejected += 1
            return 0
        with self._lock:
            self._reports.extend(reports)
            self.messages_ingested += 1
        return len(reports)

    def drain(self) -> List[FlowReport]:
        """Take all buffered reports (the periodic inference pull)."""
        with self._lock:
            out = self._reports
            self._reports = []
        return out

    @property
    def pending_reports(self) -> int:
        with self._lock:
            return len(self._reports)


class UdpCollectorServer:
    """Background UDP receive loop feeding a :class:`Collector`.

    Binds to an ephemeral loopback port by default; ``address`` exposes
    the bound (host, port) for agents to target.
    """

    def __init__(self, collector: Collector, host: str = "127.0.0.1", port: int = 0):
        self._collector = collector
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((host, port))
        self._sock.settimeout(0.1)
        self._running = False
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self):
        return self._sock.getsockname()

    def start(self) -> None:
        if self._running:
            raise TelemetryError("collector server already running")
        self._running = True
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while self._running:
            try:
                message, _ = self._sock.recvfrom(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            self._collector.ingest(message)

    def stop(self) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._sock.close()

    def __enter__(self) -> "UdpCollectorServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
