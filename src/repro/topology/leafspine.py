"""2-tier leaf-spine topology, matching the paper's hardware testbed.

Section 6.3: "We use a standard 2-tier Clos topology with 2 spines, 8
leaf racks and 6 hosts per rack" (47 traffic hosts + 1 collector host).
:func:`testbed` reproduces exactly that shape; :func:`leaf_spine` is the
general generator.
"""

from __future__ import annotations

from ..errors import TopologyError
from .base import Topology, TopologyBuilder


def leaf_spine(n_spines: int, n_leaves: int, hosts_per_leaf: int) -> Topology:
    """Build a full-mesh leaf-spine fabric.

    Every leaf connects to every spine; ``hosts_per_leaf`` hosts hang off
    each leaf.
    """
    if n_spines < 1 or n_leaves < 1 or hosts_per_leaf < 1:
        raise TopologyError("n_spines, n_leaves and hosts_per_leaf must be >= 1")
    builder = TopologyBuilder()
    spines = [builder.add_node(f"spine{s}", "spine") for s in range(n_spines)]
    for leaf_idx in range(n_leaves):
        leaf = builder.add_node(f"leaf{leaf_idx}", "leaf")
        for spine in spines:
            builder.add_link(leaf, spine)
        for h in range(hosts_per_leaf):
            host = builder.add_node(f"leaf{leaf_idx}_h{h}", "host")
            builder.add_link(host, leaf)
    return builder.build()


def testbed() -> Topology:
    """The paper's hardware testbed: 2 spines, 8 leaves, 6 hosts per leaf."""
    return leaf_spine(n_spines=2, n_leaves=8, hosts_per_leaf=6)
