"""Topology substrate: graph model and datacenter fabric generators."""

from .base import Topology, TopologyBuilder
from .clos import fat_tree, paper_simulation_clos, three_tier_clos
from .equivalence import (
    link_coverage_signatures,
    link_equivalence_classes,
    theoretical_max_precision,
)
from .irregular import omit_random_links
from .leafspine import leaf_spine, testbed

__all__ = [
    "Topology",
    "TopologyBuilder",
    "fat_tree",
    "three_tier_clos",
    "paper_simulation_clos",
    "leaf_spine",
    "testbed",
    "omit_random_links",
    "link_equivalence_classes",
    "link_coverage_signatures",
    "theoretical_max_precision",
]
