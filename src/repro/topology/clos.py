"""Clos / fat-tree topology generators.

The paper's simulations use a "standard 3-tiered Clos topology [7] with
2500 40Gbps links, ECMP routing and 3x oversubscription at ToRs"
(section 6.3).  Two generators cover that space:

* :func:`fat_tree` - the classic k-ary fat-tree of Al-Fares et al. [7],
  used for the runtime-scaling sweeps (Fig. 4c/4d) because it has a
  single size knob.
* :func:`three_tier_clos` - a generic pod-based 3-tier Clos with
  independent pod/switch/host counts, used to dial in oversubscription
  and link counts to match the paper's simulation setup.
"""

from __future__ import annotations

from ..errors import TopologyError
from .base import Topology, TopologyBuilder


def fat_tree(k: int, hosts_per_edge: int = 0) -> Topology:
    """Build a k-ary fat-tree.

    ``k`` must be even.  The tree has ``k`` pods, each with ``k/2`` edge
    (ToR) and ``k/2`` aggregation switches, ``(k/2)^2`` core switches,
    and ``k/2`` hosts per edge switch (overridable via
    ``hosts_per_edge`` to change oversubscription).
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    if hosts_per_edge <= 0:
        hosts_per_edge = half

    builder = TopologyBuilder()
    cores = [
        [builder.add_node(f"core{g}_{i}", "core") for i in range(half)]
        for g in range(half)
    ]
    for pod in range(k):
        agg_nodes = [builder.add_node(f"p{pod}_agg{a}", "agg") for a in range(half)]
        tor_nodes = [builder.add_node(f"p{pod}_tor{t}", "tor") for t in range(half)]
        for agg in agg_nodes:
            for tor in tor_nodes:
                builder.add_link(tor, agg)
        # Aggregation switch a of every pod connects to core group a.
        for a, agg in enumerate(agg_nodes):
            for core in cores[a]:
                builder.add_link(agg, core)
        for t, tor in enumerate(tor_nodes):
            for h in range(hosts_per_edge):
                host = builder.add_node(f"p{pod}_tor{t}_h{h}", "host")
                builder.add_link(host, tor)
    return builder.build()


def three_tier_clos(
    pods: int,
    tors_per_pod: int,
    aggs_per_pod: int,
    core_groups: int = 0,
    cores_per_group: int = 1,
    hosts_per_tor: int = 0,
) -> Topology:
    """Build a generic pod-based 3-tier Clos.

    Every ToR connects to every aggregation switch in its pod.  Cores are
    arranged in ``core_groups`` groups (default: one group per agg
    position); aggregation switch ``a`` of every pod connects to all
    cores of group ``a % core_groups``.

    ``hosts_per_tor`` defaults to ``3 * aggs_per_pod`` which yields the
    paper's 3x oversubscription at ToRs (3 hosts of downlink capacity per
    uplink).
    """
    if pods < 1 or tors_per_pod < 1 or aggs_per_pod < 1:
        raise TopologyError("pods, tors_per_pod and aggs_per_pod must be >= 1")
    if core_groups <= 0:
        core_groups = aggs_per_pod
    if cores_per_group < 1:
        raise TopologyError("cores_per_group must be >= 1")
    if hosts_per_tor <= 0:
        hosts_per_tor = 3 * aggs_per_pod

    builder = TopologyBuilder()
    core_nodes = [
        [builder.add_node(f"core{g}_{i}", "core") for i in range(cores_per_group)]
        for g in range(core_groups)
    ]
    for pod in range(pods):
        aggs = [builder.add_node(f"p{pod}_agg{a}", "agg") for a in range(aggs_per_pod)]
        tors = [builder.add_node(f"p{pod}_tor{t}", "tor") for t in range(tors_per_pod)]
        for tor in tors:
            for agg in aggs:
                builder.add_link(tor, agg)
        for a, agg in enumerate(aggs):
            for core in core_nodes[a % core_groups]:
                builder.add_link(agg, core)
        for t, tor in enumerate(tors):
            for h in range(hosts_per_tor):
                host = builder.add_node(f"p{pod}_tor{t}_h{h}", "host")
                builder.add_link(host, tor)
    return builder.build()


def paper_simulation_clos(scale: int = 1) -> Topology:
    """The 3-tier Clos shaped like the paper's NS3 simulation topology.

    At ``scale=1`` this produces a Clos in the same regime as the paper's
    2500-link topology: 16 pods x 8 ToRs x 4 aggs, 28 cores, 12 hosts
    per ToR for 3x oversubscription => 2496 links.  Larger scales
    multiply the pod count.
    """
    if scale < 1:
        raise TopologyError("scale must be >= 1")
    return three_tier_clos(
        pods=16 * scale,
        tors_per_pod=8,
        aggs_per_pod=4,
        core_groups=4,
        cores_per_group=7,
        hosts_per_tor=12,
    )
