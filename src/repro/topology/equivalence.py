"""Link equivalence classes under ECMP (sections 7.6 and Fig. 5c).

In a symmetric Clos, some links "participate in the same ECMP paths" and
can never be told apart by passive-only telemetry: every flow whose path
set touches one also touches the other in exactly the same way.  For
example, all uplinks of one leaf switch form one class.  When links are
omitted, symmetry breaks and classes shrink - which is why Flock (P)'s
accuracy *improves* with irregularity (Fig. 5a/5b).

Two links are equivalent here iff they have identical *coverage
signatures*: for every ECMP path set in the routing universe (one per
rack pair), the number of paths of that set containing link ``a`` equals
the number containing link ``b``.  This is exactly the observational
indistinguishability of the paper's passive model, where a flow's
likelihood depends only on how many of its candidate paths a hypothesis
fails (section 3.3, memoization note).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Mapping, Tuple

from .base import Topology


def link_coverage_signatures(
    topology: Topology, routing
) -> Dict[int, Tuple[Tuple[int, int], ...]]:
    """Map each switch-switch link to its ECMP coverage signature.

    ``routing`` must provide ``switch_paths(src_rack, dst_rack)``
    returning the ECMP node-paths between two rack switches (see
    :class:`repro.routing.ecmp.EcmpRouting`).
    """
    per_link: Dict[int, List[Tuple[int, int]]] = {
        lid: [] for lid in topology.switch_switch_links()
    }
    for set_id, (a, b) in enumerate(combinations(topology.racks, 2)):
        counts: Dict[int, int] = {}
        for path in routing.switch_paths(a, b):
            for u, v in zip(path, path[1:]):
                lid = topology.link_id(u, v)
                counts[lid] = counts.get(lid, 0) + 1
        for lid, count in counts.items():
            if lid in per_link:
                per_link[lid].append((set_id, count))
    return {lid: tuple(sig) for lid, sig in per_link.items()}


def link_equivalence_classes(topology: Topology, routing) -> List[Tuple[int, ...]]:
    """Group switch-switch links into ECMP-indistinguishability classes."""
    signatures = link_coverage_signatures(topology, routing)
    groups: Dict[Tuple[Tuple[int, int], ...], List[int]] = {}
    for lid, signature in signatures.items():
        groups.setdefault(signature, []).append(lid)
    return sorted(tuple(sorted(g)) for g in groups.values())


def class_of(classes: Iterable[Tuple[int, ...]], link: int) -> Tuple[int, ...]:
    """The equivalence class containing ``link`` (singleton if absent)."""
    for group in classes:
        if link in group:
            return group
    return (link,)


def theoretical_max_precision(
    classes: Iterable[Tuple[int, ...]], failed_links: Iterable[int]
) -> float:
    """Best achievable precision for a passive-only scheme (Fig. 5c).

    A passive scheme cannot distinguish links within a class, so to reach
    full recall it must report the entire class of every failed link; the
    resulting precision is ``|failed| / |union of their classes|``.
    Returns 1.0 when nothing failed.
    """
    failed = set(failed_links)
    if not failed:
        return 1.0
    blamed = set()
    for link in failed:
        blamed.update(class_of(classes, link))
    return len(failed) / len(blamed)


def mean_class_size(classes: Iterable[Tuple[int, ...]]) -> float:
    """Average class size weighted by links (a symmetry summary metric)."""
    sizes = [len(group) for group in classes]
    total_links = sum(sizes)
    if total_links == 0:
        return 0.0
    return sum(size * size for size in sizes) / total_links
