"""Core topology model.

A :class:`Topology` is an undirected multigraph-free graph of *nodes*
(hosts and switches) connected by *links*.  Nodes carry a *role* string
that drives routing and probing decisions:

``host``
    An endpoint that sources/sinks flows and runs a telemetry agent.
``tor`` / ``leaf``
    Rack-level switches.  Every host attaches to exactly one of these.
``agg``
    Pod-level aggregation switches (3-tier Clos only).
``core`` / ``spine``
    Top-tier switches.  Active A1 probes are bounced off these.

Component id space
------------------
Fault localization treats links *and* devices as failable components in a
single integer id space (section 3.2 "Model extensions" of the paper):

* ids ``[0, n_links)`` are links;
* id ``n_links + node`` is the device component of ``node``.

Host devices get ids too (the arithmetic is simpler that way) but hosts
are never placed on a path's component list, so they can never be blamed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import TopologyError
from ..types import ComponentKind

HOST_ROLE = "host"
RACK_ROLES = frozenset({"tor", "leaf"})
AGG_ROLES = frozenset({"agg"})
CORE_ROLES = frozenset({"core", "spine"})
SWITCH_ROLES = RACK_ROLES | AGG_ROLES | CORE_ROLES

#: Tier used for up/down (valley-free) routing. Hosts are tier 0.
ROLE_TIERS = {
    "host": 0,
    "tor": 1,
    "leaf": 1,
    "agg": 2,
    "core": 3,
    "spine": 3,
}


class Topology:
    """An immutable datacenter topology.

    Parameters
    ----------
    names:
        Human-readable node names, indexed by node id.
    roles:
        Role string per node (see module docstring).
    links:
        Iterable of ``(u, v)`` node-id pairs.  Links are undirected and
        stored with ``u < v``; duplicates and self-loops are rejected.
    """

    def __init__(
        self,
        names: Sequence[str],
        roles: Sequence[str],
        links: Iterable[Tuple[int, int]],
    ) -> None:
        if len(names) != len(roles):
            raise TopologyError("names and roles must have the same length")
        for role in roles:
            if role != HOST_ROLE and role not in SWITCH_ROLES:
                raise TopologyError(f"unknown node role {role!r}")
        self._names: Tuple[str, ...] = tuple(names)
        self._roles: Tuple[str, ...] = tuple(roles)
        n = len(self._names)

        canonical: List[Tuple[int, int]] = []
        index: Dict[Tuple[int, int], int] = {}
        for u, v in links:
            if not (0 <= u < n and 0 <= v < n):
                raise TopologyError(f"link ({u}, {v}) references a missing node")
            if u == v:
                raise TopologyError(f"self-loop on node {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in index:
                raise TopologyError(f"duplicate link {key}")
            index[key] = len(canonical)
            canonical.append(key)
        self._links: Tuple[Tuple[int, int], ...] = tuple(canonical)
        self._link_index = index

        adj: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for lid, (u, v) in enumerate(self._links):
            adj[u].append((v, lid))
            adj[v].append((u, lid))
        self._adj: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple(sorted(entries)) for entries in adj
        )

        self._hosts = tuple(i for i, r in enumerate(self._roles) if r == HOST_ROLE)
        self._switches = tuple(
            i for i, r in enumerate(self._roles) if r in SWITCH_ROLES
        )
        self._racks = tuple(i for i, r in enumerate(self._roles) if r in RACK_ROLES)
        self._aggs = tuple(i for i, r in enumerate(self._roles) if r in AGG_ROLES)
        self._cores = tuple(i for i, r in enumerate(self._roles) if r in CORE_ROLES)
        self._switch_mask = tuple(r in SWITCH_ROLES for r in self._roles)

        rack_of: Dict[int, int] = {}
        for host in self._hosts:
            rack_neighbors = [
                nbr for nbr, _ in self._adj[host] if self._roles[nbr] in RACK_ROLES
            ]
            if len(rack_neighbors) != 1:
                raise TopologyError(
                    f"host {self._names[host]} must attach to exactly one "
                    f"rack switch, found {len(rack_neighbors)}"
                )
            rack_of[host] = rack_neighbors[0]
        self._rack_of = rack_of

        hosts_in_rack: Dict[int, List[int]] = {rack: [] for rack in self._racks}
        for host, rack in rack_of.items():
            hosts_in_rack[rack].append(host)
        self._hosts_in_rack = {
            rack: tuple(sorted(members)) for rack, members in hosts_in_rack.items()
        }

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._names)

    @property
    def n_links(self) -> int:
        return len(self._links)

    @property
    def n_components(self) -> int:
        """Size of the unified component id space (links + devices)."""
        return self.n_links + self.n_nodes

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    @property
    def roles(self) -> Tuple[str, ...]:
        return self._roles

    @property
    def links(self) -> Tuple[Tuple[int, int], ...]:
        return self._links

    @property
    def hosts(self) -> Tuple[int, ...]:
        return self._hosts

    @property
    def switches(self) -> Tuple[int, ...]:
        return self._switches

    @property
    def racks(self) -> Tuple[int, ...]:
        """Rack-level switches (tor/leaf nodes)."""
        return self._racks

    @property
    def aggs(self) -> Tuple[int, ...]:
        return self._aggs

    @property
    def cores(self) -> Tuple[int, ...]:
        """Top-tier switches (core/spine nodes)."""
        return self._cores

    @property
    def switch_mask(self) -> Tuple[bool, ...]:
        """Per-node flag: True when the node is a switch."""
        return self._switch_mask

    def role(self, node: int) -> str:
        return self._roles[node]

    def tier(self, node: int) -> int:
        return ROLE_TIERS[self._roles[node]]

    def name(self, node: int) -> str:
        return self._names[node]

    def neighbors(self, node: int) -> Tuple[Tuple[int, int], ...]:
        """Return ``(neighbor, link_id)`` pairs of ``node``."""
        return self._adj[node]

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    def rack_of(self, host: int) -> int:
        """The rack switch a host attaches to."""
        try:
            return self._rack_of[host]
        except KeyError:
            raise TopologyError(f"node {host} is not a host") from None

    def hosts_in_rack(self, rack: int) -> Tuple[int, ...]:
        try:
            return self._hosts_in_rack[rack]
        except KeyError:
            raise TopologyError(f"node {rack} is not a rack switch") from None

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def link_id(self, u: int, v: int) -> int:
        """Link id for the (unordered) node pair ``(u, v)``."""
        key = (u, v) if u < v else (v, u)
        try:
            return self._link_index[key]
        except KeyError:
            raise TopologyError(f"no link between {u} and {v}") from None

    def has_link(self, u: int, v: int) -> bool:
        key = (u, v) if u < v else (v, u)
        return key in self._link_index

    def endpoints(self, link: int) -> Tuple[int, int]:
        try:
            return self._links[link]
        except IndexError:
            raise TopologyError(f"no link with id {link}") from None

    def device_links(self, node: int) -> Tuple[int, ...]:
        """Ids of all links incident to ``node``."""
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"no node with id {node}")
        return tuple(lid for _, lid in self._adj[node])

    def switch_switch_links(self) -> Tuple[int, ...]:
        """Ids of links whose endpoints are both switches."""
        return tuple(
            lid
            for lid, (u, v) in enumerate(self._links)
            if self._switch_mask[u] and self._switch_mask[v]
        )

    # ------------------------------------------------------------------
    # Component id space
    # ------------------------------------------------------------------
    def device_component(self, node: int) -> int:
        """Component id of the device at ``node``."""
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"no node with id {node}")
        return self.n_links + node

    def is_link_component(self, comp: int) -> bool:
        return 0 <= comp < self.n_links

    def is_device_component(self, comp: int) -> bool:
        return self.n_links <= comp < self.n_components

    def component_kind(self, comp: int) -> ComponentKind:
        if self.is_link_component(comp):
            return ComponentKind.LINK
        if self.is_device_component(comp):
            return ComponentKind.DEVICE
        raise TopologyError(f"component id {comp} is out of range")

    def component_name(self, comp: int) -> str:
        """Readable name: ``linkname`` for links, node name for devices."""
        if self.is_link_component(comp):
            u, v = self._links[comp]
            return f"{self._names[u]}<->{self._names[v]}"
        if self.is_device_component(comp):
            return self._names[comp - self.n_links]
        raise TopologyError(f"component id {comp} is out of range")

    def component_device(self, comp: int) -> int:
        """Node id of a device component."""
        if not self.is_device_component(comp):
            raise TopologyError(f"component id {comp} is not a device")
        return comp - self.n_links

    def path_components(
        self, nodes: Sequence[int], include_devices: bool = True
    ) -> Tuple[int, ...]:
        """Component ids (sorted, de-duplicated) along a node-sequence path.

        Devices are included only for switch nodes; hosts never appear as
        components.  Repeated traversals (probe bounce paths) collapse.
        """
        comps = set()
        for u, v in zip(nodes, nodes[1:]):
            comps.add(self.link_id(u, v))
        if include_devices:
            offset = self.n_links
            for node in nodes:
                if self._switch_mask[node]:
                    comps.add(offset + node)
        return tuple(sorted(comps))

    # ------------------------------------------------------------------
    # Derived topologies and exports
    # ------------------------------------------------------------------
    def without_links(self, link_ids: Iterable[int]) -> "Topology":
        """A copy of this topology with the given links removed.

        Link ids are *not* stable across this operation (the survivors are
        renumbered densely); translate via node pairs when comparing.
        """
        doomed = set(link_ids)
        for lid in doomed:
            if not 0 <= lid < self.n_links:
                raise TopologyError(f"no link with id {lid}")
        surviving = [
            pair for lid, pair in enumerate(self._links) if lid not in doomed
        ]
        return Topology(self._names, self._roles, surviving)

    def is_connected(self) -> bool:
        """True when every node is reachable from node 0."""
        if self.n_nodes == 0:
            return True
        seen = [False] * self.n_nodes
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            node = stack.pop()
            for nbr, _ in self._adj[node]:
                if not seen[nbr]:
                    seen[nbr] = True
                    count += 1
                    stack.append(nbr)
        return count == self.n_nodes

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (for analysis and plotting)."""
        import networkx as nx

        graph = nx.Graph()
        for node in range(self.n_nodes):
            graph.add_node(node, name=self._names[node], role=self._roles[node])
        for lid, (u, v) in enumerate(self._links):
            graph.add_edge(u, v, link_id=lid)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(nodes={self.n_nodes}, links={self.n_links}, "
            f"hosts={len(self._hosts)}, racks={len(self._racks)}, "
            f"cores={len(self._cores)})"
        )


class TopologyBuilder:
    """Incremental construction helper used by the generators."""

    def __init__(self) -> None:
        self._names: List[str] = []
        self._roles: List[str] = []
        self._links: List[Tuple[int, int]] = []
        self._by_name: Dict[str, int] = {}

    def add_node(self, name: str, role: str) -> int:
        if name in self._by_name:
            raise TopologyError(f"duplicate node name {name!r}")
        node = len(self._names)
        self._names.append(name)
        self._roles.append(role)
        self._by_name[name] = node
        return node

    def add_link(self, u: int, v: int) -> None:
        self._links.append((u, v))

    def node(self, name: str) -> int:
        return self._by_name[name]

    def build(self) -> Topology:
        return Topology(self._names, self._roles, self._links)
