"""Irregular Clos topologies (section 7.6).

"Real world datacenters are rarely perfectly symmetric like a Clos
topology and typically have asymmetries due to failures, policies,
piecemeal upgrades, etc.  To see the effect of topology irregularity,
we omit links from the fat tree."

:func:`omit_random_links` removes a fraction of the switch-to-switch
links while preserving connectivity and every ToR's ability to reach the
rest of the fabric.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import TopologyError
from .base import RACK_ROLES, Topology


def omit_random_links(
    topology: Topology,
    fraction: float,
    rng: np.random.Generator,
    max_attempts: int = 50,
) -> Tuple[Topology, Tuple[Tuple[int, int], ...]]:
    """Remove ``fraction`` of the switch-switch links at random.

    Host-facing links are never removed (a host with no link is not an
    "irregular datacenter", it is a dead server).  A removal set is
    rejected and re-drawn if it would disconnect the network or leave a
    rack switch without an uplink; after ``max_attempts`` rejections the
    most recent connected candidate with the largest feasible removal set
    is returned.

    Returns the degraded topology and the removed links as node pairs
    (link ids are renumbered by the removal, node pairs are stable).
    """
    if not 0.0 <= fraction < 1.0:
        raise TopologyError(f"fraction must be in [0, 1), got {fraction}")
    candidates = list(topology.switch_switch_links())
    n_remove = int(round(fraction * len(candidates)))
    if n_remove == 0:
        return topology, ()
    if n_remove >= len(candidates):
        raise TopologyError("cannot remove every switch-switch link")

    for _ in range(max_attempts):
        chosen = rng.choice(len(candidates), size=n_remove, replace=False)
        doomed = [candidates[i] for i in chosen]
        if not _keeps_rack_uplinks(topology, doomed):
            continue
        degraded = topology.without_links(doomed)
        if degraded.is_connected():
            pairs = tuple(topology.endpoints(lid) for lid in doomed)
            return degraded, pairs

    # Fall back to a greedy safe removal: drop links one at a time,
    # skipping any link whose removal would break the invariants.
    doomed_greedy: List[int] = []
    order = rng.permutation(len(candidates))
    for i in order:
        trial = doomed_greedy + [candidates[i]]
        if not _keeps_rack_uplinks(topology, trial):
            continue
        if topology.without_links(trial).is_connected():
            doomed_greedy = trial
        if len(doomed_greedy) == n_remove:
            break
    degraded = topology.without_links(doomed_greedy)
    pairs = tuple(topology.endpoints(lid) for lid in doomed_greedy)
    return degraded, pairs


def _keeps_rack_uplinks(topology: Topology, doomed: List[int]) -> bool:
    """Check every rack switch keeps at least one switch-facing link."""
    doomed_set = set(doomed)
    for rack in topology.racks:
        uplinks = [
            lid
            for nbr, lid in topology.neighbors(rack)
            if topology.role(nbr) not in ("host",)
        ]
        if all(lid in doomed_set for lid in uplinks):
            return False
        # Aggs reachable from this rack must retain one path upward too;
        # global connectivity is validated by the caller.
    for node in topology.switches:
        if topology.role(node) in RACK_ROLES:
            continue
        remaining = [
            lid for _, lid in topology.neighbors(node) if lid not in doomed_set
        ]
        if not remaining:
            return False
    return True
