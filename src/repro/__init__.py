"""Flock: accurate network fault localization at scale - reproduction.

A from-scratch Python implementation of the Flock system (Harsh, Meng,
Agrawal, Godfrey - Proceedings of the ACM on Networking (PACMNET),
2023): a probabilistic-graphical-model fault
localizer with greedy + JLE (joint likelihood exploration) inference,
alongside the baselines it is evaluated against (007, NetBouncer,
Sherlock), the simulation and telemetry substrates, and the full
evaluation suite.

Quickstart::

    import numpy as np
    from repro import (
        EcmpRouting, FlockInference, SilentLinkDrops, TelemetryConfig,
        build_observations, fat_tree, make_trace, InferenceProblem,
    )

    topo = fat_tree(4)
    routing = EcmpRouting(topo)
    trace = make_trace(topo, routing, SilentLinkDrops(n_failures=2), seed=1)
    obs = build_observations(
        trace.records, topo, routing, TelemetryConfig.from_spec("A1+A2+P")
    )
    problem = InferenceProblem.from_observations(
        obs, topo.n_components, topo.n_links
    )
    prediction = FlockInference().localize(problem)
    print({topo.component_name(c) for c in prediction.components})
"""

from .baselines import NetBouncer, SherlockFerret, Vote007
from .core import (
    DEFAULT_PER_FLOW,
    DEFAULT_PER_PACKET,
    FlockInference,
    FlockParams,
    GibbsInference,
    GreedyWithoutJle,
    InferenceProblem,
    LikelihoodModel,
)
from .errors import ReproError
from .eval import (
    ExperimentResult,
    ExperimentSpec,
    RunnerConfig,
    SchemeSetup,
    ShardSpec,
    Trace,
    build_localizer,
    evaluate,
    evaluate_many,
    evaluate_prediction,
    experiment_names,
    fscore,
    make_setup,
    make_trace,
    run_experiment,
    run_on_trace,
    run_sharded,
    run_spec,
    scheme_names,
)
from .routing import EcmpRouting
from .simulation import (
    FlowLevelSimulator,
    LinkFlap,
    NoFailure,
    QueueMisconfig,
    SilentDeviceFailure,
    SilentLinkDrops,
)
from .telemetry import (
    Collector,
    TelemetryAgent,
    TelemetryConfig,
    build_observations,
)
from .topology import (
    Topology,
    fat_tree,
    leaf_spine,
    paper_simulation_clos,
    testbed,
    three_tier_clos,
)
from .types import (
    FlowBatch,
    FlowObservation,
    FlowRecord,
    GroundTruth,
    Prediction,
    TelemetryKind,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # topology
    "Topology",
    "fat_tree",
    "three_tier_clos",
    "paper_simulation_clos",
    "leaf_spine",
    "testbed",
    # routing
    "EcmpRouting",
    # simulation
    "FlowLevelSimulator",
    "SilentLinkDrops",
    "SilentDeviceFailure",
    "QueueMisconfig",
    "LinkFlap",
    "NoFailure",
    # telemetry
    "TelemetryAgent",
    "Collector",
    "TelemetryConfig",
    "build_observations",
    # core
    "FlockParams",
    "DEFAULT_PER_PACKET",
    "DEFAULT_PER_FLOW",
    "FlockInference",
    "GreedyWithoutJle",
    "GibbsInference",
    "InferenceProblem",
    "LikelihoodModel",
    # baselines
    "Vote007",
    "NetBouncer",
    "SherlockFerret",
    # eval
    "RunnerConfig",
    "SchemeSetup",
    "ShardSpec",
    "run_sharded",
    "Trace",
    "make_trace",
    "run_on_trace",
    "evaluate",
    "evaluate_many",
    "evaluate_prediction",
    "fscore",
    # registries + specs
    "ExperimentResult",
    "ExperimentSpec",
    "run_experiment",
    "run_spec",
    "experiment_names",
    "scheme_names",
    "build_localizer",
    "make_setup",
    # types
    "FlowRecord",
    "FlowBatch",
    "FlowObservation",
    "Prediction",
    "GroundTruth",
    "TelemetryKind",
]
