"""Kernel backend registry + collapsed-row equivalence.

The raw-speed tier (``repro.core.kernels``) must change *where* the
likelihood arithmetic runs, never *what* it computes: every registered
backend has to reproduce the reference numpy engine's localization on
every registered scenario.  ``numpy`` keeps the uncollapsed code paths
(bit-identical to everything ``test_columnar_equivalence`` pins);
``collapsed`` and ``numba`` re-order float accumulation, so state
floats are compared to tight tolerances while predictions and the
structural per-set failed-member counts (``_set_b``) are compared
exactly.  Backends that are registered but not constructible here
(numba without the package) skip rather than fail.

Prediction-identity holds up to exact ties: a problem with two
hypotheses at bitwise-equal likelihood (ECMP sibling links the
telemetry cannot distinguish) breaks the tie on rounding noise, so a
reordered backend may pick the symmetric twin.  The registered
scenario x seed grid below contains no such tie.
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.flock_fast import (
    VectorArrays,
    VectorGreedyWithoutJle,
    VectorJleState,
)
from repro.core.flock import FlockInference
from repro.core.params import DEFAULT_PER_PACKET
from repro.core.problem import InferenceProblem
from repro.errors import InferenceError
from repro.eval.experiments import standard_topology
from repro.eval.harness import build_problem, effective_telemetry
from repro.eval.scenarios import make_trace
from repro.eval.schemes import build_localizer, make_setup
from repro.routing import EcmpRouting, PathSpace
from repro.simulation import FlowLevelSimulator, SilentLinkDrops
from repro.simulation.failures import make_scenario, scenario_names
from repro.telemetry import TelemetryConfig
from repro.telemetry.inputs import build_observation_batch
from repro.traffic import SpecBatch, UniformTraffic, generate_passive_flows

#: Backends whose layouts differ from the reference and therefore need
#: the equivalence sweep (numpy *is* the reference).
FAST_BACKENDS = [n for n in kernels.backend_names() if n != "numpy"]

#: Registered schemes that run on the vectorized kernel tier.
KERNEL_SCHEMES = ["flock", "flock-greedy", "sherlock", "sherlock-jle"]


def _require(backend: str) -> None:
    if not kernels.backend_available(backend):
        pytest.skip(f"kernel backend {backend!r} not available here")


@pytest.fixture(scope="module")
def tiny_world():
    topo = standard_topology("tiny")
    return topo, EcmpRouting(topo)


def _make_problem(tiny_world, scenario_name, seed=7, compressed=True):
    topo, routing = tiny_world
    trace = make_trace(
        topo, routing, make_scenario(scenario_name), seed=seed,
        n_passive=1_200, n_probes=200,
    )
    telemetry = TelemetryConfig.from_spec("A1+A2+P")
    if compressed:
        return build_problem(trace, telemetry)
    obs_batch = build_observation_batch(
        trace.batch, effective_telemetry(trace, telemetry),
        np.random.default_rng(trace.seed + 0x5EED),
    )
    return InferenceProblem.from_batch(
        obs_batch, topo.n_components, topo.n_links, compressed=False
    )


# --- registry ---------------------------------------------------------

def test_registry_contents():
    names = kernels.backend_names()
    assert {"numpy", "collapsed", "numba"} <= set(names)
    assert kernels.backend_available("numpy")
    assert kernels.backend_available("collapsed")
    available = kernels.available_backend_names()
    assert "numpy" in available and "collapsed" in available


def test_unknown_backend_rejected(tiny_world):
    with pytest.raises(InferenceError, match="registered"):
        kernels.resolve_backend("warp-drive")
    # Engines validate at construction, not first localize.
    with pytest.raises(InferenceError, match="registered"):
        FlockInference(DEFAULT_PER_PACKET, kernel_backend="warp-drive")
    with pytest.raises(InferenceError, match="registered"):
        build_localizer("flock", kernel_backend="warp-drive")


def test_env_var_selects_backend(tiny_world, monkeypatch):
    problem = _make_problem(tiny_world, "no-failure")
    monkeypatch.setenv(kernels.ENV_VAR, "collapsed")
    arrays = VectorArrays(problem, DEFAULT_PER_PACKET)
    assert arrays.kernels.name == "collapsed"
    # The explicit argument outranks the environment.
    arrays = VectorArrays(problem, DEFAULT_PER_PACKET, kernel_backend="numpy")
    assert arrays.kernels.name == "numpy"
    monkeypatch.delenv(kernels.ENV_VAR)
    arrays = VectorArrays(problem, DEFAULT_PER_PACKET)
    assert arrays.kernels.name == kernels.DEFAULT_BACKEND == "numpy"


def test_numba_missing_raises_install_hint():
    if kernels.backend_available("numba"):
        pytest.skip("numba installed here; the miss path is not reachable")
    assert "numba" in kernels.backend_names()
    assert "numba" not in kernels.available_backend_names()
    with pytest.raises(InferenceError, match=r"repro-flock\[numba\]"):
        kernels.resolve_backend("numba")


# --- collapsed-row structure ------------------------------------------

@pytest.mark.parametrize("scenario_name", scenario_names())
def test_collapsed_row_invariants(tiny_world, scenario_name):
    """Every flow must match its row header *bitwise*: (w, s, es) are
    pure functions of the (interior set, observation bucket) key, so a
    singleton row and a thousand-flow row obey the same check."""
    problem = _make_problem(tiny_world, scenario_name)
    va = VectorArrays(problem, DEFAULT_PER_PACKET, kernel_backend="collapsed")
    assert va.n_rows <= problem.n_flows
    rof = va._row_of_flow
    iset_of_flow = va.iset_of_set[va.set_of_flow]
    assert np.array_equal(va._row_iset[rof], iset_of_flow)
    # Rows are iset-major sorted (the pair expansion relies on it).
    assert np.all(np.diff(va._row_iset) >= 0)
    # Bitwise header agreement for every member flow, not just the first.
    assert np.array_equal(va._row_w[rof], va.w)
    assert np.array_equal(va._row_s[rof], va.s)
    assert np.array_equal(va._row_es[rof], va._es)
    # Two flows in one row share the observation bucket exactly.
    bad = problem.bad_packets
    sent = problem.packets_sent
    order = np.argsort(rof, kind="stable")
    same_row = np.diff(rof[order]) == 0
    assert np.array_equal(bad[order][1:][same_row], bad[order][:-1][same_row])
    assert np.array_equal(sent[order][1:][same_row], sent[order][:-1][same_row])


def test_collapse_shrinks_identical_buckets(tiny_world):
    """A no-failure trace (every observation lands in the zero-bad
    bucket family) collapses below one row per flow: the compressed
    build is already weight-deduped per (set, observation), and
    collapsing still merges rows across sets that share an interior
    set and a bucket."""
    com = _make_problem(tiny_world, "no-failure")
    va_c = VectorArrays(com, DEFAULT_PER_PACKET, kernel_backend="collapsed")
    assert va_c.n_rows < com.n_flows
    # The uncompressed build factors every set trivially (one interior
    # set per set), so every row is a singleton there: the collapse
    # degenerates to the identity and must still price correctly
    # (test_compressed_and_uncompressed_collapse_agree).
    unc = _make_problem(tiny_world, "no-failure", compressed=False)
    va_u = VectorArrays(unc, DEFAULT_PER_PACKET, kernel_backend="collapsed")
    assert va_u.n_rows == unc.n_flows
    assert va_c.n_rows < va_u.n_rows


def test_collapsed_rows_tiny_trace(tiny_world):
    """A near-degenerate trace (few flows, mostly singleton rows) runs
    the same equivalence the big sweep checks."""
    topo, routing = tiny_world
    trace = make_trace(
        topo, routing, make_scenario("silent-link-drops"), seed=5,
        n_passive=50, n_probes=10,
    )
    problem = build_problem(trace, TelemetryConfig.from_spec("A1+A2+P"))
    ref = VectorJleState(problem, DEFAULT_PER_PACKET)
    col = VectorJleState(problem, DEFAULT_PER_PACKET, kernel_backend="collapsed")
    np.testing.assert_allclose(col.delta, ref.delta, rtol=1e-9, atol=1e-9)
    comp = int(np.argmax(ref.delta))
    ref.flip(comp)
    col.flip(comp)
    assert np.array_equal(ref._set_b, col._set_b)
    np.testing.assert_allclose(col.delta, ref.delta, rtol=1e-8, atol=1e-8)


# --- backend equivalence against the numpy reference ------------------

@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("scenario_name", scenario_names())
def test_state_equivalence(tiny_world, scenario_name, backend):
    """Initial Δ, greedy flips, removal gains and hypothesis_ll agree
    with the reference engine; structural state (_set_b) is exact."""
    _require(backend)
    problem = _make_problem(tiny_world, scenario_name)
    ref = VectorJleState(problem, DEFAULT_PER_PACKET)
    alt = VectorJleState(problem, DEFAULT_PER_PACKET, kernel_backend=backend)
    np.testing.assert_allclose(alt.delta, ref.delta, rtol=1e-9, atol=1e-9)

    for _ in range(4):
        comp = int(np.argmax(ref.delta))
        ref.flip(comp)
        alt.flip(comp)
        assert alt.hypothesis == ref.hypothesis
        assert np.array_equal(alt._set_b, ref._set_b)
        np.testing.assert_allclose(alt.delta, ref.delta, rtol=1e-8, atol=1e-8)
        assert alt.ll == pytest.approx(ref.ll, rel=1e-9, abs=1e-9)

    for comp in sorted(ref.hypothesis):
        assert alt.removal_gain(comp) == pytest.approx(
            ref.removal_gain(comp), rel=1e-7, abs=1e-7
        )
    hyp = sorted(ref.hypothesis)
    assert alt.hypothesis_ll(hyp) == pytest.approx(
        ref.hypothesis_ll(hyp), rel=1e-7, abs=1e-7
    )


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("scenario_name", scenario_names())
def test_greedy_without_jle_equivalence(tiny_world, scenario_name, backend):
    """The non-JLE greedy (candidate_gain path) localizes identically."""
    _require(backend)
    problem = _make_problem(tiny_world, scenario_name)
    ref = VectorGreedyWithoutJle(problem, DEFAULT_PER_PACKET).run()
    alt = VectorGreedyWithoutJle(
        problem, DEFAULT_PER_PACKET, kernel_backend=backend
    ).run()
    assert alt.components == ref.components
    assert alt.log_likelihood == pytest.approx(
        ref.log_likelihood, rel=1e-9, abs=1e-9
    )


@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
@pytest.mark.parametrize("scenario_name", scenario_names())
def test_scheme_predictions_match_across_backends(
    tiny_world, scenario_name, scheme
):
    """Every kernel scheme predicts the same components on every
    registered backend (scores and log-likelihood to float tolerance,
    since collapsed/compiled accumulation order differs)."""
    topo, routing = tiny_world
    trace = make_trace(
        topo, routing, make_scenario(scenario_name), seed=7,
        n_passive=1_200, n_probes=200,
    )
    setup = make_setup(scheme)
    problem = build_problem(trace, setup.telemetry)
    reference = build_localizer(scheme, kernel_backend="numpy").localize(
        problem
    )
    for backend in FAST_BACKENDS:
        if not kernels.backend_available(backend):
            continue
        pred = build_localizer(scheme, kernel_backend=backend).localize(
            problem
        )
        assert pred.components == reference.components
        assert pred.log_likelihood == pytest.approx(
            reference.log_likelihood, rel=1e-7, abs=1e-7
        )
        if reference.scores is None:
            assert pred.scores is None
        else:
            assert set(pred.scores) == set(reference.scores)
            for comp, score in pred.scores.items():
                assert score == pytest.approx(
                    reference.scores[comp], rel=1e-7, abs=1e-7
                )


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_compressed_and_uncompressed_collapse_agree(tiny_world, backend):
    """Collapsed pricing is layout-independent: the compressed and
    uncompressed problem builds localize identically per backend."""
    _require(backend)
    compressed = _make_problem(tiny_world, "silent-link-drops")
    uncompressed = _make_problem(
        tiny_world, "silent-link-drops", compressed=False
    )
    assert compressed.compressed and not uncompressed.compressed
    localizer = build_localizer("flock", kernel_backend=backend)
    reference = build_localizer("flock").localize(compressed)
    for problem in (compressed, uncompressed):
        pred = localizer.localize(problem)
        assert pred.components == reference.components
        assert pred.log_likelihood == pytest.approx(
            reference.log_likelihood, rel=1e-7, abs=1e-7
        )


# --- vectorized simulator RNG -----------------------------------------

def _spec_batch(tiny_world, seed, n_flows=800):
    topo, routing = tiny_world
    rng = np.random.default_rng(seed)
    injection = SilentLinkDrops(n_failures=2, min_rate=4e-3).inject(topo, rng)
    specs = generate_passive_flows(
        routing, UniformTraffic(topo), n_flows, rng
    )
    space = PathSpace(topo, routing)
    return SpecBatch.from_specs(specs, space), injection


def test_rng_modes_deterministic(tiny_world):
    topo, _ = tiny_world
    batch, injection = _spec_batch(tiny_world, seed=11)
    sim = FlowLevelSimulator(topo)
    for mode in ("grouped", "vectorized"):
        a = sim.simulate_batch(
            batch, injection, np.random.default_rng(5), rng_mode=mode
        )
        b = sim.simulate_batch(
            batch, injection, np.random.default_rng(5), rng_mode=mode
        )
        assert np.array_equal(a.bad, b.bad)
        assert np.array_equal(a.chosen_path, b.chosen_path)
    # grouped is the default: omitting rng_mode is the historical stream.
    default = sim.simulate_batch(batch, injection, np.random.default_rng(5))
    grouped = sim.simulate_batch(
        batch, injection, np.random.default_rng(5), rng_mode="grouped"
    )
    assert np.array_equal(default.bad, grouped.bad)
    assert np.array_equal(default.chosen_path, grouped.chosen_path)


def test_vectorized_rng_is_versioned_but_valid(tiny_world):
    """The vectorized stream is explicitly different from grouped, but
    every chosen path must still be a real (src, dst) member path and
    loss mass must stay in the same regime."""
    topo, _ = tiny_world
    batch, injection = _spec_batch(tiny_world, seed=11)
    sim = FlowLevelSimulator(topo)
    grouped = sim.simulate_batch(
        batch, injection, np.random.default_rng(5), rng_mode="grouped"
    )
    vec = sim.simulate_batch(
        batch, injection, np.random.default_rng(5), rng_mode="vectorized"
    )
    assert not np.array_equal(grouped.bad, vec.bad)
    space = batch.space
    for i in range(0, len(batch), 37):
        nodes = space.path_nodes(int(vec.chosen_path[i]))
        assert nodes[0] == batch.src[i]
        assert nodes[-1] == batch.dst[i]
    g_rate = grouped.bad.sum() / grouped.packets.sum()
    v_rate = vec.bad.sum() / vec.packets.sum()
    assert v_rate > 0
    assert 0.2 < v_rate / g_rate < 5.0


def test_rng_mode_rejects_unknown(tiny_world):
    topo, _ = tiny_world
    batch, injection = _spec_batch(tiny_world, seed=11, n_flows=10)
    with pytest.raises(ValueError, match="rng_mode"):
        FlowLevelSimulator(topo).simulate_batch(
            batch, injection, np.random.default_rng(5), rng_mode="turbo"
        )
