"""Tests for the Appendix A.1 precision/recall definitions."""

import math

import pytest

from repro.eval.metrics import (
    aggregate,
    error_reduction,
    evaluate_prediction,
    fscore,
)
from repro.eval.metrics import TraceMetrics
from repro.topology import fat_tree
from repro.types import GroundTruth, Prediction


@pytest.fixture(scope="module")
def topo():
    return fat_tree(4)


def predict(*comps):
    return Prediction(components=frozenset(comps))


class TestLinkFailures:
    def test_exact_match(self, topo):
        truth = GroundTruth(failed_links=frozenset({0, 1}))
        m = evaluate_prediction(predict(0, 1), truth, topo)
        assert m.precision == 1.0 and m.recall == 1.0

    def test_false_positive(self, topo):
        truth = GroundTruth(failed_links=frozenset({0}))
        m = evaluate_prediction(predict(0, 5), truth, topo)
        assert m.precision == 0.5
        assert m.recall == 1.0

    def test_false_negative(self, topo):
        truth = GroundTruth(failed_links=frozenset({0, 1}))
        m = evaluate_prediction(predict(0), truth, topo)
        assert m.precision == 1.0
        assert m.recall == 0.5

    def test_empty_prediction_precision_one(self, topo):
        truth = GroundTruth(failed_links=frozenset({0}))
        m = evaluate_prediction(predict(), truth, topo)
        assert m.precision == 1.0
        assert m.recall == 0.0

    def test_predicted_device_covers_failed_link(self, topo):
        link = topo.switch_switch_links()[0]
        u, _ = topo.endpoints(link)
        truth = GroundTruth(failed_links=frozenset({link}))
        m = evaluate_prediction(
            predict(topo.device_component(u)), truth, topo
        )
        # Blaming an endpoint device of the failed link is credited in
        # both directions, mirroring the link-of-faulty-device rule.
        assert m.recall == 1.0
        assert m.precision == 1.0

    def test_predicted_unrelated_device_is_wrong(self, topo):
        host_link = topo.device_links(topo.hosts[0])[0]
        truth = GroundTruth(failed_links=frozenset({host_link}))
        # A core switch is not incident to a host's access link.
        far_device = topo.device_component(topo.cores[0])
        m = evaluate_prediction(predict(far_device), truth, topo)
        assert m.precision == 0.0
        assert m.recall == 0.0


class TestNoFailures:
    def test_empty_prediction_is_perfect(self, topo):
        m = evaluate_prediction(predict(), GroundTruth(), topo)
        assert m.precision == 1.0 and m.recall == 1.0

    def test_any_alert_is_wrong(self, topo):
        m = evaluate_prediction(predict(3), GroundTruth(), topo)
        assert m.precision == 0.0 and m.recall == 1.0


class TestDeviceFailures:
    def test_device_predicted_directly(self, topo):
        device = topo.device_component(topo.cores[0])
        truth = GroundTruth(failed_devices=frozenset({device}))
        m = evaluate_prediction(predict(device), truth, topo)
        assert m.precision == 1.0 and m.recall == 1.0

    def test_partial_link_credit(self, topo):
        node = topo.cores[0]
        device = topo.device_component(node)
        links = topo.device_links(node)
        truth = GroundTruth(failed_devices=frozenset({device}))
        half = links[: len(links) // 2]
        m = evaluate_prediction(predict(*half), truth, topo)
        # "including x% of the device links in H counts as x% recall"
        assert m.recall == pytest.approx(len(half) / len(links))
        # Links of a faulty device are correct for precision.
        assert m.precision == 1.0

    def test_mixed_link_and_device_truth(self, topo):
        node = topo.cores[0]
        device = topo.device_component(node)
        other_link = topo.switch_switch_links()[-1]
        truth = GroundTruth(
            failed_devices=frozenset({device}),
            failed_links=frozenset({other_link}),
        )
        m = evaluate_prediction(predict(device), truth, topo)
        assert m.recall == pytest.approx(0.5)


class TestDeviceLinkSymmetry:
    """Device/link adjacency credit must be the same in both directions
    and in both metrics (the old code credited a predicted link of a
    failed device, but not a predicted device of a failed link)."""

    def test_both_directions_score_identically(self, topo):
        link = topo.switch_switch_links()[0]
        u, _ = topo.endpoints(link)
        device = topo.device_component(u)

        link_failed = GroundTruth(failed_links=frozenset({link}))
        device_predicted = evaluate_prediction(
            predict(device), link_failed, topo
        )

        device_failed = GroundTruth(failed_devices=frozenset({device}))
        link_predicted = evaluate_prediction(
            predict(link), device_failed, topo
        )

        assert device_predicted.precision == 1.0
        assert link_predicted.precision == 1.0
        assert device_predicted.recall == 1.0

    def test_precision_and_recall_agree_on_adjacency(self, topo):
        """If the recall loop counts a predicted device as detecting a
        failed link, precision must not call the same device wrong."""
        link = topo.switch_switch_links()[0]
        u, _ = topo.endpoints(link)
        device = topo.device_component(u)
        truth = GroundTruth(failed_links=frozenset({link}))
        m = evaluate_prediction(predict(device), truth, topo)
        assert (m.recall > 0) == (m.precision > 0)


class TestAggregation:
    def test_fscore(self):
        assert fscore(1.0, 1.0) == 1.0
        assert fscore(0.0, 0.0) == 0.0
        assert fscore(1.0, 0.5) == pytest.approx(2 / 3)

    def test_aggregate_macro_average(self):
        ms = [
            TraceMetrics(precision=1.0, recall=0.5),
            TraceMetrics(precision=0.5, recall=1.0),
        ]
        agg = aggregate(ms)
        assert agg.precision == 0.75
        assert agg.recall == 0.75
        assert agg.n_traces == 2
        assert agg.fscore == pytest.approx(0.75)

    def test_aggregate_empty_is_nan_not_perfect(self):
        # Zero traces must not report a perfect score (a merge of empty
        # shards would otherwise claim precision = recall = 1.0).
        agg = aggregate([])
        assert agg.n_traces == 0
        assert math.isnan(agg.precision)
        assert math.isnan(agg.recall)
        assert math.isnan(agg.mean_fscore)
        assert math.isnan(agg.fscore)

    def test_error_reduction(self):
        # Baseline fscore 0.8 (error 0.2) vs Flock 0.95 (error 0.05): 4x.
        assert error_reduction(0.8, 0.95) == pytest.approx(4.0)
        assert error_reduction(0.8, 1.0) == float("inf")
        assert error_reduction(1.0, 1.0) == 1.0
