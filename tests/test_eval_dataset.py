"""Tests for trace serialization and the six-scenario dataset."""

import json

import pytest

from repro.core.flock import FlockInference
from repro.core.params import DEFAULT_PER_PACKET
from repro.errors import ExperimentError
from repro.eval.dataset import (
    FORMAT_TAG,
    generate_suite,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.eval.harness import build_problem
from repro.telemetry import TelemetryConfig


class TestRoundtrip:
    def test_dict_roundtrip_preserves_everything(self, drop_trace):
        rebuilt = trace_from_dict(trace_to_dict(drop_trace))
        assert rebuilt.ground_truth.failed_links == \
            drop_trace.ground_truth.failed_links
        assert rebuilt.topology.links == drop_trace.topology.links
        assert rebuilt.topology.names == drop_trace.topology.names
        assert len(rebuilt.records) == len(drop_trace.records)
        for a, b in zip(rebuilt.records, drop_trace.records):
            assert (a.src, a.dst, a.packets_sent, a.bad_packets, a.path) == \
                (b.src, b.dst, b.packets_sent, b.bad_packets, b.path)
            assert a.is_probe == b.is_probe
            assert a.rtt_ms == pytest.approx(b.rtt_ms, abs=1e-3)

    def test_file_roundtrip(self, drop_trace, tmp_path):
        path = save_trace(drop_trace, tmp_path / "trace.json")
        rebuilt = load_trace(path)
        assert rebuilt.ground_truth == drop_trace.ground_truth or (
            rebuilt.ground_truth.failed_links
            == drop_trace.ground_truth.failed_links
        )

    def test_rejects_wrong_format(self):
        with pytest.raises(ExperimentError):
            trace_from_dict({"format": "something-else"})

    def test_loaded_trace_drives_inference(self, drop_trace, tmp_path):
        # A consumer of the dataset must be able to localize from the
        # file alone.
        path = save_trace(drop_trace, tmp_path / "trace.json")
        rebuilt = load_trace(path)
        problem = build_problem(rebuilt, TelemetryConfig.from_spec("INT"))
        pred = FlockInference(DEFAULT_PER_PACKET).localize(problem)
        assert pred.components == drop_trace.ground_truth.failed_links


class TestSuiteGeneration:
    def test_generates_six_scenarios(self, tmp_path):
        paths = generate_suite(
            tmp_path / "suite", seed=5, n_passive=300, n_probes=60
        )
        assert len(paths) == 6
        names = sorted(p.stem for p in paths)
        assert names[0].startswith("01_silent_drops_uniform")
        assert names[-1].startswith("06_no_failure")
        for path in paths:
            payload = json.loads(path.read_text())
            assert payload["format"] == FORMAT_TAG
            assert payload["records"]

    def test_scenarios_have_expected_truths(self, tmp_path):
        paths = generate_suite(
            tmp_path / "suite", seed=5, n_passive=200, n_probes=40
        )
        by_name = {p.stem: load_trace(p) for p in paths}
        assert len(by_name["01_silent_drops_uniform"].ground_truth.failed_links) == 3
        assert by_name["03_device_failure"].ground_truth.failed_devices
        assert by_name["05_link_flap"].analysis == "per_flow"
        assert not by_name["06_no_failure"].ground_truth.has_failures
